"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
falls back to this setup script (setuptools' legacy develop mode) instead of
building an editable wheel.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
