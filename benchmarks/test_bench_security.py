"""E9 (Section V-2, security): tamper evidence of the recorded metadata.

"The blockchain's consensus algorithm and its distributed nature protect
the stored metadata (resource locations and usage policies) from
unauthorized modifications, making this information tamper-proof." —
measured as the cost of full-chain verification and the guarantee that any
retroactive modification is detected.

The availability half of E9 (node failures, recovery, partitions, and
Byzantine equivocation) lives in ``test_bench_robustness.py``, which runs
on the node-backed validator network and emits ``BENCH_robustness.json``.
"""

from __future__ import annotations

import pytest

from repro.common.errors import IntegrityError

from bench_helpers import deploy_consumer, deploy_owner_with_resource, fresh_architecture
from repro.core.processes import resource_access


@pytest.mark.slow
def test_e9_chain_verification_and_tamper_detection(benchmark, report):
    """Full-chain re-validation cost, and detection of a tampered policy record."""
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture)
    consumer = deploy_consumer(architecture, "consumer")
    resource_access(architecture, consumer, owner, resource_id)
    chain = architecture.node.chain

    verified = benchmark.pedantic(chain.verify_chain, rounds=3, iterations=1)
    report("E9 verify_chain", blocks=chain.height + 1, verified=verified)
    from bench_helpers import bench_row, emit_bench_json

    emit_bench_json("security", [
        bench_row("verify_chain_blocks", [chain.height + 1], [1 if verified else 0]),
    ])
    assert verified

    # Retroactively modify the recorded usage policy inside an old transaction:
    # Merkle-root verification catches it immediately.
    target_block = next(
        block for block in chain.blocks
        if any(tx.data.get("method") == "register_resource" for tx in block.transactions)
    )
    target_tx = next(tx for tx in target_block.transactions if tx.data.get("method") == "register_resource")
    target_tx.data["args"]["policy"]["permissions"] = []
    with pytest.raises(IntegrityError):
        chain.verify_chain()
    report("E9 tamper detection", detected=True, tampered_block=target_block.number)


