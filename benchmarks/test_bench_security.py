"""E9 (Section V-2, security): tamper evidence and availability under node failures.

Two claims are exercised:

* "The blockchain's consensus algorithm and its distributed nature protect
  the stored metadata (resource locations and usage policies) from
  unauthorized modifications, making this information tamper-proof." —
  measured as the cost of full-chain verification and the guarantee that any
  retroactive modification is detected.
* "If an attack succeeds in bringing down one of the nodes, the blockchain
  ecosystem can continue to operate by relying on the rest of the nodes." —
  measured as blocks produced (and replica consistency) while a growing
  number of validators is failed.
"""

from __future__ import annotations

import pytest

from repro.common.errors import IntegrityError
from repro.blockchain.crypto import KeyPair
from repro.blockchain.network import BlockchainNetwork
from repro.blockchain.transaction import Transaction

from bench_helpers import deploy_consumer, deploy_owner_with_resource, fresh_architecture
from repro.core.processes import resource_access


@pytest.mark.slow
def test_e9_chain_verification_and_tamper_detection(benchmark, report):
    """Full-chain re-validation cost, and detection of a tampered policy record."""
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture)
    consumer = deploy_consumer(architecture, "consumer")
    resource_access(architecture, consumer, owner, resource_id)
    chain = architecture.node.chain

    verified = benchmark.pedantic(chain.verify_chain, rounds=3, iterations=1)
    report("E9 verify_chain", blocks=chain.height + 1, verified=verified)
    from bench_helpers import bench_row, emit_bench_json

    emit_bench_json("security", [
        bench_row("verify_chain_blocks", [chain.height + 1], [1 if verified else 0]),
    ])
    assert verified

    # Retroactively modify the recorded usage policy inside an old transaction:
    # Merkle-root verification catches it immediately.
    target_block = next(
        block for block in chain.blocks
        if any(tx.data.get("method") == "register_resource" for tx in block.transactions)
    )
    target_tx = next(tx for tx in target_block.transactions if tx.data.get("method") == "register_resource")
    target_tx.data["args"]["policy"]["permissions"] = []
    with pytest.raises(IntegrityError):
        chain.verify_chain()
    report("E9 tamper detection", detected=True, tampered_block=target_block.number)


@pytest.mark.slow
@pytest.mark.parametrize("failed", [0, 1, 2])
def test_e9_availability_under_validator_failures(benchmark, report, failed):
    """Blocks produced over 12 slots with ``failed`` of 4 validators down."""
    sender = KeyPair.from_name("sec-sender")

    def run():
        network = BlockchainNetwork(num_validators=4, genesis_balances={sender.address: 10**9})
        for index in range(failed):
            network.fail_validator(index)
        for nonce in range(3):
            recipient = KeyPair.from_name("sec-recipient")
            tx = Transaction(sender=sender.address, to=recipient.address, data={}, value=1, nonce=nonce)
            network.broadcast_transaction(tx.sign(sender))
        produced = network.produce_blocks(12)
        return network, produced

    network, produced = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"E9 availability failed={failed}/4", slots=12, blocks_produced=len(produced),
           skipped_slots=network.skipped_slots, available=network.is_available,
           replicas_consistent=network.consistent())
    assert network.is_available
    assert network.consistent()
    assert len(produced) == 12 - network.skipped_slots
    # Throughput degrades proportionally to the failed fraction, never to zero.
    assert len(produced) >= 12 * (4 - failed) // 4
