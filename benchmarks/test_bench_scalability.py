"""E12 (Section VI): performance and scalability of the instantiated architecture.

Sweeps the deployment over the number of consumers retrieving the same
resource and over the number of resources per owner, reporting end-to-end
wall-clock time, chain growth, and gas.  The expected shape: both grow
linearly with the population (constant per-process cost), and the policy-
update fan-out stays a single transaction regardless of the holder count.
"""

from __future__ import annotations

import pytest

from repro.common.clock import WEEK
from repro.core.processes import pod_initiation, resource_access, resource_initiation
from repro.policy.templates import retention_policy

from bench_helpers import (
    RESOURCE_CONTENT,
    consumers_with_copies,
    deploy_owner_with_resource,
    fresh_architecture,
)


@pytest.mark.slow
@pytest.mark.parametrize("num_consumers", [1, 4, 8])
def test_e12_access_throughput_vs_consumers(benchmark, report, num_consumers):
    """Total cost of N consumers each retrieving the shared resource."""

    def run():
        architecture = fresh_architecture()
        owner, resource_id = deploy_owner_with_resource(architecture)
        consumers_with_copies(architecture, owner, resource_id, num_consumers)
        return architecture

    architecture = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"E12 consumers={num_consumers}", chain_height=architecture.node.chain.height,
           total_gas=architecture.total_gas_used(),
           gas_per_consumer=architecture.total_gas_used() // max(1, num_consumers))
    assert architecture.node.chain.verify_chain()


@pytest.mark.parametrize("num_resources", [1, 5, 10])
def test_e12_publication_cost_vs_resources(benchmark, report, num_resources):
    """Total cost of one owner publishing N resources."""

    def run():
        architecture = fresh_architecture()
        owner = architecture.register_owner("owner")
        pod_initiation(architecture, owner)
        for index in range(num_resources):
            path = f"/data/resource-{index}.bin"
            policy = retention_policy(owner.pod_manager.base_url + path, owner.webid.iri, WEEK)
            resource_initiation(architecture, owner, path, RESOURCE_CONTENT, policy)
        return architecture

    architecture = benchmark.pedantic(run, rounds=1, iterations=1)
    gas = architecture.total_gas_used()
    report(f"E12 resources={num_resources}", total_gas=gas,
           gas_per_resource=gas // num_resources,
           indexed=len(architecture.dist_exchange_read("list_resources")))
    from bench_helpers import bench_row, emit_bench_json

    emit_bench_json("scalability", [
        bench_row(f"publication_gas_per_resource[n={num_resources}]",
                  [num_resources], [gas // num_resources]),
    ])
    assert len(architecture.dist_exchange_read("list_resources")) == num_resources


@pytest.mark.slow
def test_e12_per_operation_cost_is_population_independent(benchmark, report):
    """Gas per access stays flat as the population grows (linear total cost)."""
    per_consumer_costs = []
    for num_consumers in (2, 6):
        architecture = fresh_architecture()
        owner, resource_id = deploy_owner_with_resource(architecture)
        baseline_gas = architecture.total_gas_used()
        consumers_with_copies(architecture, owner, resource_id, num_consumers)
        per_consumer_costs.append(
            (architecture.total_gas_used() - baseline_gas) / num_consumers
        )
    report("E12 per-access gas", two_consumers=round(per_consumer_costs[0]),
           six_consumers=round(per_consumer_costs[1]))
    # Within 25% of each other: the per-access cost does not grow with population.
    ratio = per_consumer_costs[1] / per_consumer_costs[0]
    assert 0.75 <= ratio <= 1.25
