"""State-scaling benchmark: per-transaction cost vs. world size.

The seed implementation deep-copied the entire ``WorldState`` before every
transaction (for rollback) and serialized + hashed the full state twice per
block (``build_block`` and ``append_block``), so the per-transaction cost of
block production grew linearly with the number of accounts — the scalability
sweep was measuring Python ``deepcopy``, not the protocol.

With the journaled state and the incrementally cached state root, executing
a transaction touches O(slots written) data and producing a block re-hashes
only the accounts dirtied since the previous block.  This sweep pre-funds
1k/10k/100k accounts and asserts that the measured per-transaction time is
flat (within the 2x noise envelope) across two orders of magnitude of world
size.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.crypto import KeyPair
from repro.blockchain.transaction import Transaction

RECIPIENT = "0x" + "ee" * 20
TXS_PER_BLOCK = 100


def _prefunded_chain(num_accounts: int) -> tuple[Blockchain, KeyPair]:
    key = KeyPair.from_name("state-scaling-validator")
    consensus = ProofOfAuthority(validators=[key.address], block_interval=1.0)
    genesis = {f"0x{index + 1:040x}": 10**9 for index in range(num_accounts)}
    chain = Blockchain(consensus, genesis_balances=genesis)
    return chain, key


def _produce(chain: Blockchain, key: KeyPair, transactions) -> None:
    block = chain.build_block(transactions, key.address)
    chain.consensus.seal(block, key)
    chain.append_block(block)


def _per_tx_seconds(num_accounts: int, blocks: int = 5) -> tuple[float, float]:
    """Best observed per-transaction wall time over *blocks* full blocks.

    Each block carries TXS_PER_BLOCK plain transfers from distinct pre-funded
    senders (nonce 0 each), so the measured work is execution + sealing +
    validation + state-root maintenance — the full block-production path.
    Returns ``(per_tx_seconds, root_hash_seconds_per_tx)``; the second term
    isolates the incremental state-root slice (counted after the warm-up, so
    the O(accounts) genesis flush is excluded).
    """
    chain, key = _prefunded_chain(num_accounts)
    _produce(chain, key, [])               # warm-up: flush the genesis dirty set
    chain.state.root_hash_seconds = 0.0
    sender_index = 0
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(blocks):
            transactions = []
            for _ in range(TXS_PER_BLOCK):
                sender = f"0x{sender_index + 1:040x}"
                sender_index += 1
                transactions.append(
                    Transaction(sender=sender, to=RECIPIENT, data={}, value=1, nonce=0)
                )
            started = time.perf_counter()
            _produce(chain, key, transactions)
            elapsed = time.perf_counter() - started
            best = min(best, elapsed / TXS_PER_BLOCK)
    finally:
        if gc_was_enabled:
            gc.enable()
    root_hash_per_tx = chain.state.root_hash_seconds / (blocks * TXS_PER_BLOCK)
    return best, root_hash_per_tx


def test_per_tx_cost_flat_from_1k_to_10k_accounts(report):
    """Fast guard: one order of magnitude of world size, same per-tx cost."""
    from bench_helpers import bench_row, emit_bench_json

    small, small_root = _per_tx_seconds(1_000)
    medium, medium_root = _per_tx_seconds(10_000)
    ratio = round(medium / small, 2)
    root_ratio = round(medium_root / max(small_root, 1e-9), 2)
    report("state scaling 1k->10k",
           us_per_tx_1k=round(small * 1e6, 1),
           us_per_tx_10k=round(medium * 1e6, 1),
           ratio=ratio, root_hash_ratio=root_ratio)
    emit_bench_json(
        "state",
        [bench_row("us_per_tx[1k->10k]", [1_000, 10_000],
                   [round(small * 1e6, 1), round(medium * 1e6, 1)],
                   pinned_ratio=ratio),
         bench_row("root_hash_time[1k->10k]", [1_000, 10_000],
                   [round(small_root * 1e6, 2), round(medium_root * 1e6, 2)],
                   pinned_ratio=root_ratio)],
    )
    assert medium <= 2.0 * small


@pytest.mark.slow
def test_per_tx_cost_flat_from_1k_to_100k_accounts(report):
    """Acceptance sweep: two orders of magnitude, per-tx time flat within 2x.

    The seed implementation degrades linearly here (the 100k case was ~100x
    the 1k case); the journaled state must stay inside the noise envelope.
    """
    from bench_helpers import bench_row, emit_bench_json

    results, root_results = {}, {}
    for num_accounts in (1_000, 10_000, 100_000):
        results[num_accounts], root_results[num_accounts] = _per_tx_seconds(num_accounts)
    ratio = round(results[100_000] / results[1_000], 2)
    root_ratio = round(root_results[100_000] / max(root_results[1_000], 1e-9), 2)
    report("state scaling 1k->100k",
           **{f"us_per_tx_{n}": round(t * 1e6, 1) for n, t in results.items()},
           ratio_100k_vs_1k=ratio, root_hash_ratio=root_ratio)
    emit_bench_json(
        "state",
        [bench_row("us_per_tx[1k->100k]", list(results),
                   [round(t * 1e6, 1) for t in results.values()],
                   pinned_ratio=ratio),
         bench_row("root_hash_time[1k->100k]", list(root_results),
                   [round(t * 1e6, 2) for t in root_results.values()],
                   pinned_ratio=root_ratio)],
    )
    assert results[100_000] <= 2.0 * results[1_000]
    assert results[10_000] <= 2.0 * results[1_000]
