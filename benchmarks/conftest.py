"""Shared fixtures for the benchmark harness.

Every benchmark prints the rows it measures (latency, transactions, gas) so a
run of ``pytest benchmarks/ --benchmark-only`` regenerates the figures
recorded in ``EXPERIMENTS.md``.  Deployment helpers live in
``bench_helpers.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make bench_helpers importable regardless of how pytest sets up sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent))


@pytest.fixture
def report(capsys):
    """Print a labelled result row that survives pytest's output capture."""

    def _report(label: str, **fields):
        rendered = "  ".join(f"{key}={value}" for key, value in fields.items())
        with capsys.disabled():
            print(f"\n[{label}] {rendered}")

    return _report
