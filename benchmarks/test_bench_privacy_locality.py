"""E8 (Section V-1, privacy/locality): TEE-cached access vs repeated remote pod reads.

"After the resource retrieval, Trusted Applications benefit from locally
stored data (as long as the Usage Policy permits it) without the need to
constantly communicate with Solid Pods, which leads to significant
improvements in latency and scalability."

The benchmark compares N reads served from the consumer's trusted data
storage against N reads that each go back to the owner's pod over the
network, and locates the crossover (which is immediate: the local path wins
from the second read on, since the single retrieval already paid the remote
cost once).
"""

from __future__ import annotations

import pytest

from repro.core.processes import resource_access

from bench_helpers import deploy_consumer, deploy_owner_with_resource, fresh_architecture

READS = 25


@pytest.fixture(scope="module")
def locality_setup():
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture)
    consumer = deploy_consumer(architecture, "local-reader")
    resource_access(architecture, consumer, owner, resource_id)
    remote_reader = deploy_consumer(architecture, "remote-reader")
    resource_access(architecture, remote_reader, owner, resource_id)
    return architecture, owner, resource_id, consumer, remote_reader


def test_e8_local_tee_reads(benchmark, locality_setup, report):
    """N policy-checked uses of the sealed local copy (no network)."""
    architecture, _, resource_id, consumer, _ = locality_setup

    def run():
        start = architecture.network.total_latency
        for _ in range(READS):
            consumer.use_resource(resource_id)
        return architecture.network.total_latency - start

    network_seconds = benchmark.pedantic(run, rounds=3, iterations=1)
    report("E8 local reads", reads=READS, simulated_network_seconds=round(network_seconds, 4))
    assert network_seconds == 0.0  # local usage never touches the network


def test_e8_remote_pod_reads(benchmark, locality_setup, report):
    """N reads that each go back to the owner's pod (the no-TEE alternative)."""
    architecture, owner, resource_id, _, remote_reader = locality_setup
    path = owner.pod_manager.require_pod().path_for(resource_id)
    certificate = remote_reader.certificates[resource_id]["certificate_id"]

    def run():
        start = architecture.network.total_latency
        for _ in range(READS):
            architecture.solid_client.get(
                resource_id,
                requester=remote_reader.webid.iri,
                certificate_id=certificate,
                requester_address=remote_reader.address,
            )
        return architecture.network.total_latency - start

    network_seconds = benchmark.pedantic(run, rounds=3, iterations=1)
    per_read_ms = network_seconds / READS * 1000
    report("E8 remote reads", reads=READS,
           simulated_network_seconds=round(network_seconds, 4),
           per_read_ms=round(per_read_ms, 2), path=path)
    from bench_helpers import bench_row, emit_bench_json

    emit_bench_json("privacy_locality", [
        bench_row("network_seconds_per_25_reads", ["local-tee", "remote-pod"],
                  [0.0, round(network_seconds, 4)]),
    ])
    # Every remote read pays a client<->pod round trip; the local path pays none.
    assert network_seconds > 0.0
    assert per_read_ms >= 50  # two ~40 ms hops per round trip in the default model
