"""E1-E6: latency, transaction count, and gas for the six Fig. 2 processes.

The paper presents the processes qualitatively; this harness quantifies each
one on the reproduction's substrate.  Absolute numbers depend on the host,
but the *shape* holds: transaction-bearing processes (1, 2, 5, 6) cost tens
of thousands of gas and one or more blocks, while the pull-based read of
process 3 is free, and process 4 is dominated by the pod transfer plus one
grant-recording transaction.
"""

from __future__ import annotations

import pytest

from repro.common.clock import DAY, WEEK, MONTH
from repro.core.monitoring import MonitoringCoordinator
from repro.core.processes import (
    pod_initiation,
    policy_modification,
    policy_monitoring,
    resource_access,
    resource_indexing,
    resource_initiation,
)
from repro.policy.templates import retention_policy

from bench_helpers import (
    RESOURCE_CONTENT,
    RESOURCE_PATH,
    consumers_with_copies,
    deploy_consumer,
    deploy_owner_with_resource,
    fresh_architecture,
)


def test_e1_pod_initiation(benchmark, report):
    """E1 (Fig. 2.1): pod initiation."""
    counter = {"n": 0}

    def run():
        architecture = fresh_architecture()
        owner = architecture.register_owner(f"owner-{counter['n']}")
        counter["n"] += 1
        return pod_initiation(architecture, owner)

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    report("E1 pod_initiation", transactions=trace.transactions, gas=trace.gas_used,
           network_ms=round(trace.simulated_network_seconds * 1000, 1))
    from bench_helpers import bench_row, emit_bench_json

    emit_bench_json("processes", [
        bench_row("pod_initiation", ["transactions", "gas"],
                  [trace.transactions, trace.gas_used]),
    ])
    assert trace.transactions == 1
    assert trace.gas_used > 0


def test_e2_resource_initiation(benchmark, report):
    """E2 (Fig. 2.2): resource initiation (upload + publish + index + market listing)."""
    architecture = fresh_architecture()
    owner = architecture.register_owner("owner")
    pod_initiation(architecture, owner)
    counter = {"n": 0}

    def run():
        path = f"/data/resource-{counter['n']}.bin"
        counter["n"] += 1
        policy = retention_policy(
            owner.pod_manager.base_url + path, owner.webid.iri, retention_seconds=WEEK
        )
        return resource_initiation(architecture, owner, path, RESOURCE_CONTENT, policy)

    trace = benchmark.pedantic(run, rounds=5, iterations=1)
    report("E2 resource_initiation", transactions=trace.transactions, gas=trace.gas_used,
           network_ms=round(trace.simulated_network_seconds * 1000, 1))
    from bench_helpers import bench_row, emit_bench_json

    emit_bench_json("processes", [
        bench_row("resource_initiation", ["transactions", "gas"],
                  [trace.transactions, trace.gas_used]),
    ])
    assert trace.transactions == 2  # register_resource + market listing
    assert trace.gas_used > 0


@pytest.mark.slow
def test_e3_resource_indexing_scales_with_registry_size(benchmark, report):
    """E3 (Fig. 2.3): pull-out lookup latency with a populated registry."""
    architecture = fresh_architecture()
    owner = architecture.register_owner("owner")
    pod_initiation(architecture, owner)
    resource_ids = []
    for index in range(20):
        path = f"/data/resource-{index}.bin"
        policy = retention_policy(owner.pod_manager.base_url + path, owner.webid.iri, WEEK)
        resource_initiation(architecture, owner, path, RESOURCE_CONTENT, policy)
        resource_ids.append(owner.pod_manager.require_pod().url_for(path))
    consumer = deploy_consumer(architecture, "reader")

    counter = {"n": 0}

    def run():
        resource_id = resource_ids[counter["n"] % len(resource_ids)]
        counter["n"] += 1
        return resource_indexing(architecture, consumer, resource_id)

    trace = benchmark.pedantic(run, rounds=10, iterations=1)
    report("E3 resource_indexing", registry_size=len(resource_ids),
           transactions=trace.transactions, gas=trace.gas_used)
    assert trace.transactions == 0
    assert trace.gas_used == 0


@pytest.mark.slow
def test_e4_resource_access(benchmark, report):
    """E4 (Fig. 2.4): ACL + certificate checks, transfer into the TEE, grant recording."""
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture)
    counter = {"n": 0}

    def run():
        consumer = deploy_consumer(architecture, f"consumer-{counter['n']}")
        counter["n"] += 1
        return resource_access(architecture, consumer, owner, resource_id)

    trace = benchmark.pedantic(run, rounds=5, iterations=1)
    report("E4 resource_access", transactions=trace.transactions, gas=trace.gas_used,
           stored_bytes=trace.details["stored_bytes"])
    assert trace.details["stored_bytes"] == len(RESOURCE_CONTENT)
    assert trace.transactions >= 2  # certificate purchase + access grant


@pytest.mark.slow
@pytest.mark.parametrize("holders", [1, 4, 8])
def test_e5_policy_modification_vs_holders(benchmark, report, holders):
    """E5 (Fig. 2.5): policy update propagation to N copy-holding devices."""
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture, retention=MONTH)
    consumers_with_copies(architecture, owner, resource_id, holders)
    architecture.advance_time(2 * DAY)
    version = {"n": 1}

    def run():
        version["n"] += 1
        new_policy = retention_policy(
            resource_id, owner.webid.iri, retention_seconds=WEEK,
            issued_at=architecture.clock.now(),
        )
        for _ in range(version["n"] - 1):
            new_policy = new_policy.revise()
        return policy_modification(architecture, owner, RESOURCE_PATH, new_policy)

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    report(f"E5 policy_modification holders={holders}", transactions=trace.transactions,
           gas=trace.gas_used, notified=len(trace.details["notified_devices"]))
    assert len(trace.details["notified_devices"]) == holders
    assert trace.transactions == 1  # one on-chain update reaches every holder


@pytest.mark.slow
@pytest.mark.parametrize("holders", [1, 4, 8])
def test_e6_policy_monitoring_vs_holders(benchmark, report, holders):
    """E6 (Fig. 2.6): a full monitoring round against N copy-holding devices."""
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture, retention=MONTH)
    consumers_with_copies(architecture, owner, resource_id, holders)
    coordinator = MonitoringCoordinator(architecture)

    def run():
        return policy_monitoring(architecture, owner, RESOURCE_PATH, coordinator)

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    report(f"E6 policy_monitoring holders={holders}", transactions=trace.transactions,
           gas=trace.gas_used, compliant=len(trace.details["compliant"]))
    # One start tx, one batched request fan-out, one fulfillment per holder,
    # and one batched evidence record (the seed flow cost 1 + 3*holders).
    assert trace.transactions == 3 + holders
    assert len(trace.details["compliant"]) == holders
