"""E7 (Section V-4, affordability): gas costs per operation and break-even analysis.

"Resorting to a public blockchain, users of our infrastructure would make a
payment to interact with the blockchain metadata through transactions.  The
market scenario can justify the costs involved ...  A subscription-based
business model could offer an incentive mechanism that allows users to
overcome the sharing costs and earn a remuneration upon access to their
data."

The benchmark produces (a) a gas-cost table for every on-chain operation an
owner or consumer performs and (b) the number of paid accesses after which an
owner's market earnings cover their own on-chain spending (the break-even the
subscription model relies on).
"""

from __future__ import annotations

import pytest

from repro.common.clock import WEEK
from repro.core.processes import (
    market_onboarding,
    pod_initiation,
    resource_access,
    resource_initiation,
)
from repro.policy.templates import retention_policy

from bench_helpers import RESOURCE_CONTENT, deploy_consumer, fresh_architecture


def gas_cost_table() -> dict:
    """Run each on-chain operation once and collect its gas cost."""
    architecture = fresh_architecture()
    owner = architecture.register_owner("owner")
    costs = {}

    trace = pod_initiation(architecture, owner)
    costs["register_pod (push-in)"] = trace.gas_used

    path = "/data/dataset.bin"
    policy = retention_policy(owner.pod_manager.base_url + path, owner.webid.iri, WEEK)
    trace = resource_initiation(architecture, owner, path, RESOURCE_CONTENT, policy)
    costs["register_resource + market listing (push-in)"] = trace.gas_used
    resource_id = owner.pod_manager.require_pod().url_for(path)

    consumer = architecture.register_consumer("consumer", purpose="web-analytics")
    trace = market_onboarding(architecture, consumer)
    costs["market subscription"] = trace.gas_used

    trace = resource_access(architecture, consumer, owner, resource_id)
    costs["resource access (certificate + grant)"] = trace.gas_used

    new_policy = retention_policy(resource_id, owner.webid.iri, WEEK / 2).revise()
    before = architecture.total_gas_used()
    owner.update_policy(path, new_policy)
    costs["update_policy (push-in)"] = architecture.total_gas_used() - before

    return costs


def test_e7_gas_cost_per_operation(benchmark, report):
    costs = benchmark.pedantic(gas_cost_table, rounds=1, iterations=1)
    for operation, gas in costs.items():
        report("E7 gas", operation=operation, gas=gas)
    # Shape assertions: every metadata write costs gas; the resource access
    # path (two small transactions) is cheaper than resource registration
    # (which stores the whole policy on-chain).
    assert all(gas > 0 for gas in costs.values())
    assert costs["register_resource + market listing (push-in)"] > costs["register_pod (push-in)"] * 0.5


@pytest.mark.slow
def test_e7_owner_break_even_accesses(benchmark, report):
    """How many paid accesses until owner earnings cover the owner's gas bill."""
    architecture = fresh_architecture(access_fee=10_000, owner_share_percent=80)
    owner = architecture.register_owner("owner")
    pod_initiation(architecture, owner)
    path = "/data/dataset.bin"
    policy = retention_policy(owner.pod_manager.base_url + path, owner.webid.iri, WEEK)
    resource_initiation(architecture, owner, path, RESOURCE_CONTENT, policy)
    resource_id = owner.pod_manager.require_pod().url_for(path)

    owner_gas_spent = owner.module.gas_spent  # gas the owner paid to set up pod + resource
    earnings = 0
    accesses = 0
    while earnings < owner_gas_spent and accesses < 200:
        consumer = deploy_consumer(architecture, f"consumer-{accesses:03d}")
        resource_access(architecture, consumer, owner, resource_id)
        earnings = owner.market_earnings()
        accesses += 1

    report("E7 break-even", owner_setup_gas=owner_gas_spent, access_fee=10_000,
           owner_share="80%", accesses_to_break_even=accesses, earnings=earnings)
    assert 0 < accesses < 200
    assert earnings >= owner_gas_spent
