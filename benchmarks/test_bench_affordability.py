"""E7 (Section V-4, affordability): gas costs per operation and break-even analysis.

"Resorting to a public blockchain, users of our infrastructure would make a
payment to interact with the blockchain metadata through transactions.  The
market scenario can justify the costs involved ...  A subscription-based
business model could offer an incentive mechanism that allows users to
overcome the sharing costs and earn a remuneration upon access to their
data."

Both measurements are ScenarioSpec-native: one declarative scenario is
executed by the :class:`~repro.core.runner.ScenarioRunner` and the per-phase
:class:`~repro.core.runner.StepStats` provide every row — the per-operation
gas table comes from the labelled setup/access/monitor phases, and the
break-even point falls out of the owner's measured on-chain spend versus
their per-access market earnings.  Rows are emitted to
``BENCH_affordability.json`` in the shared benchmark schema.
"""

from __future__ import annotations

from repro.common.clock import DAY, WEEK
from repro.core.runner import ScenarioRunner
from repro.core.spec import (
    ParticipantSpec,
    ResourceSpec,
    ScenarioSpec,
    access,
    advance,
    monitor,
    revise_policy,
    use,
)

from bench_helpers import bench_row, emit_bench_json

ACCESS_FEE = 10_000
OWNER_SHARE_PERCENT = 80  # the architecture default


def affordability_spec(consumers: int = 30) -> ScenarioSpec:
    """One owner, one priced resource, *consumers* paying readers."""
    res = "vera:/data/dataset.bin"
    names = [f"reader-{index:03d}" for index in range(consumers)]
    timeline = [access(name, res) for name in names]
    timeline += [use(name, res) for name in names]
    timeline += [
        revise_policy(res, retention_seconds=WEEK / 2),
        advance(DAY),
        monitor(res),
    ]
    return ScenarioSpec(
        name="affordability",
        description="gas per operation and owner break-even under paid access",
        participants=(
            ParticipantSpec("vera", "owner"),
            *(ParticipantSpec(name, "consumer", purpose="web-analytics") for name in names),
        ),
        resources=(ResourceSpec(owner="vera", path="/data/dataset.bin",
                                retention_seconds=WEEK),),
        timeline=tuple(timeline),
        access_fee=ACCESS_FEE,
    ).validate()


def test_e7_gas_cost_per_operation(report):
    """Per-operation gas, read straight off the scenario's phase accounting."""
    consumers = 12
    result = ScenarioRunner(affordability_spec(consumers)).run()
    by_label = {}
    for stats in result.steps:
        entry = by_label.setdefault(stats.label.split(":", 1)[0] if stats.phase != "setup"
                                    else stats.label, {"gas": 0, "count": 0})
        entry["gas"] += stats.gas_used
        entry["count"] += 1

    costs = {
        "pod registration (push-in)": by_label["setup:pods"]["gas"],
        "resource registration + market listing (push-in)": by_label["setup:resources"]["gas"],
        "market subscription (per consumer)": by_label["setup:onboarding"]["gas"] // consumers,
        "resource access (certificate + grant)": by_label["access"]["gas"] // consumers,
        "policy update (push-in)": by_label["revise_policy"]["gas"],
        "monitoring round (per holder)": (
            by_label["monitor"]["gas"] // max(1, len(result.monitoring_reports[-1].holders))
        ),
    }
    for operation, gas in costs.items():
        report("E7 gas", operation=operation, gas=gas)
    emit_bench_json(
        "affordability",
        [bench_row("gas_per_operation", list(costs), list(costs.values()))],
    )
    # Shape assertions: every metadata write costs gas; the per-consumer
    # access path (two small transactions) is cheaper than resource
    # registration (which stores the whole policy on-chain).
    assert all(gas > 0 for gas in costs.values())
    assert costs["resource access (certificate + grant)"] < costs[
        "resource registration + market listing (push-in)"
    ]
    # The run's phase accounting is complete: phases sum to the chain totals.
    assert sum(result.gas_by_phase().values()) == result.facts["total_gas_used"]


def test_e7_owner_break_even_accesses(report):
    """Paid accesses needed until market earnings cover the owner's gas bill."""
    consumers = 40
    result = ScenarioRunner(affordability_spec(consumers)).run()
    owner = result.architecture.owners["vera"]

    earnings = owner.market_earnings()
    per_access = ACCESS_FEE * OWNER_SHARE_PERCENT // 100
    assert earnings == consumers * per_access

    # The owner's up-front on-chain spend: pod + resource registration (the
    # setup phases are entirely owner-paid transactions).
    owner_setup_gas = sum(
        stats.gas_used for stats in result.steps
        if stats.label in ("setup:pods", "setup:resources")
    )
    break_even = -(-owner_setup_gas // per_access)  # ceil division
    report("E7 break-even", owner_setup_gas=owner_setup_gas, access_fee=ACCESS_FEE,
           owner_share=f"{OWNER_SHARE_PERCENT}%", accesses_to_break_even=break_even,
           earnings=earnings)
    emit_bench_json(
        "affordability",
        [bench_row("break_even_accesses", [consumers], [break_even])],
    )
    assert 0 < break_even <= consumers
    assert earnings >= owner_setup_gas
