"""Scenario-driven benchmarks: per-phase gas and block accounting.

Instead of a bespoke driver per experiment, these benchmarks reuse the
scenario engine: a spec is executed once and its :class:`StepStats` break
the run down into phases (setup, access, monitoring, ...), which is where
the affordability figures come from.  A workload-derived spec scales the
same measurement to a synthetic population from a single seed.
"""

from __future__ import annotations

import random

import pytest

from repro.core.runner import ScenarioRunner
from repro.core.scenario_library import SCENARIO_LIBRARY, market_rush_spec
from repro.core.spec import spec_from_workload
from repro.sim.workload import WorkloadConfig


def test_scenario_phase_accounting_replaces_bespoke_drivers(report):
    """One scenario run yields the per-phase gas/tx/block rows directly."""
    from bench_helpers import bench_row, emit_bench_json

    result = ScenarioRunner(market_rush_spec()).run()
    gas = result.gas_by_phase()
    blocks = result.blocks_by_phase()
    transactions = result.transactions_by_phase()
    for phase in sorted(gas):
        report(
            f"scenario-phase:{phase}",
            gas=gas[phase],
            transactions=transactions.get(phase, 0),
            blocks=blocks.get(phase, 0),
        )
    phases = sorted(gas)
    emit_bench_json(
        "scenarios",
        [
            bench_row("market_rush_gas_by_phase", phases, [gas[p] for p in phases]),
            bench_row("market_rush_blocks_by_phase", phases,
                      [blocks.get(p, 0) for p in phases]),
        ],
    )
    assert sum(gas.values()) == result.facts["total_gas_used"]
    assert sum(blocks.values()) == result.facts["chain_height"]
    # Monitoring stays batched: a constant number of blocks per round.
    monitor_steps = [s for s in result.steps if s.phase == "monitor"]
    assert monitor_steps and all(s.blocks <= 5 for s in monitor_steps)


@pytest.mark.parametrize("name", ["negligent-holder", "byzantine-oracle"])
def test_adversarial_scenarios_cost_no_extra_blocks(report, name):
    """Detecting a violation costs the same round shape as a clean round."""
    result = ScenarioRunner(SCENARIO_LIBRARY[name]()).run()
    monitor_steps = [s for s in result.steps if s.phase == "monitor"]
    for step in monitor_steps:
        report(f"{name}:monitor", gas=step.gas_used, blocks=step.blocks,
               flagged=len(step.details["observed"]))
    assert all(s.blocks <= 5 for s in monitor_steps)
    assert result.ledger.matches


def test_workload_scenario_scales_from_one_seed(report):
    """A population-scale scenario reproduces (and re-measures) from a seed."""
    config = WorkloadConfig(num_owners=2, num_consumers=6, resources_per_owner=2,
                            reads_per_consumer=2, seed=17)
    spec = spec_from_workload(config, random.Random(17), violator_fraction=0.3,
                              name="bench-workload")
    result = ScenarioRunner(spec).run()
    assert result.ledger.matches
    gas = result.gas_by_phase()
    report(
        "workload-scenario",
        consumers=len(spec.consumers()),
        resources=len(spec.resources),
        setup_gas=gas.get("setup", 0),
        access_gas=gas.get("access", 0),
        monitor_gas=gas.get("monitor", 0),
        violations=len(result.ledger.observed),
    )
    rerun = ScenarioRunner(spec).run()
    assert rerun.facts["chain_height"] == result.facts["chain_height"]
    assert [v.key for v in rerun.ledger.observed] == [v.key for v in result.ledger.observed]
