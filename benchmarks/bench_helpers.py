"""Deployment helpers shared by the benchmark files."""

from __future__ import annotations

from repro.common.clock import WEEK
from repro.core.architecture import ArchitectureConfig, UsageControlArchitecture
from repro.core.processes import (
    market_onboarding,
    pod_initiation,
    resource_access,
    resource_initiation,
)
from repro.policy.templates import retention_policy

RESOURCE_PATH = "/data/dataset.bin"
RESOURCE_CONTENT = b"row,value\n" * 128


def fresh_architecture(**config_kwargs) -> UsageControlArchitecture:
    """A new deployment with optional configuration overrides."""
    if config_kwargs:
        return UsageControlArchitecture(config=ArchitectureConfig(**config_kwargs))
    return UsageControlArchitecture()


def deploy_owner_with_resource(architecture: UsageControlArchitecture, name: str = "owner",
                               path: str = RESOURCE_PATH, retention: float = WEEK):
    """Register an owner, initialize their pod, and publish one resource."""
    owner = architecture.register_owner(name)
    pod_initiation(architecture, owner)
    policy = retention_policy(
        owner.pod_manager.base_url + path,
        owner.webid.iri,
        retention_seconds=retention,
        issued_at=architecture.clock.now(),
    )
    resource_initiation(architecture, owner, path, RESOURCE_CONTENT, policy)
    resource_id = owner.pod_manager.require_pod().url_for(path)
    return owner, resource_id


def deploy_consumer(architecture: UsageControlArchitecture, name: str, purpose: str = "web-analytics",
                    subscribe: bool = True):
    """Register a consumer and (optionally) subscribe them to the market."""
    consumer = architecture.register_consumer(name, purpose=purpose)
    if subscribe:
        market_onboarding(architecture, consumer)
    return consumer


def consumers_with_copies(architecture: UsageControlArchitecture, owner, resource_id: str, count: int):
    """Register *count* consumers, each holding a copy of *resource_id*."""
    consumers = []
    for index in range(count):
        consumer = deploy_consumer(architecture, f"consumer-{index:03d}")
        resource_access(architecture, consumer, owner, resource_id)
        consumers.append(consumer)
    return consumers
