"""Deployment helpers shared by the benchmark files."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Sequence

from repro.common.clock import WEEK
from repro.core.architecture import ArchitectureConfig, UsageControlArchitecture
from repro.core.processes import (
    market_onboarding,
    pod_initiation,
    resource_access,
    resource_initiation,
)
from repro.policy.templates import retention_policy

RESOURCE_PATH = "/data/dataset.bin"
RESOURCE_CONTENT = b"row,value\n" * 128

# -- machine-readable benchmark artifacts --------------------------------------
#
# Every benchmark file emits its measured rows as BENCH_<name>.json at the
# repo root (override the directory with BENCH_OUTPUT_DIR) in one shared
# schema, so the perf trajectory across PRs is diffable by tooling:
#
#   {"benchmark": <name>,
#    "results": [{"metric": ..., "populations": [...], "values": [...],
#                 "pinned_ratio": <asserted bound or null>}, ...]}

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_row(metric: str, populations: Sequence, values: Sequence,
              pinned_ratio: Optional[float] = None) -> dict:
    """One shared-schema result row: a metric swept across populations."""
    if len(populations) != len(values):
        raise ValueError(f"{metric}: populations and values must align")
    return {
        "metric": metric,
        "populations": list(populations),
        "values": list(values),
        "pinned_ratio": pinned_ratio,
    }


def emit_bench_json(name: str, rows: List[dict]) -> Path:
    """Write (or merge into) ``BENCH_<name>.json`` in the shared schema.

    Rows replace same-metric rows from earlier runs and are otherwise
    appended, so the fast and slow splits of one benchmark accumulate into
    a single artifact.
    """
    directory = Path(os.environ.get("BENCH_OUTPUT_DIR", REPO_ROOT))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload = {"benchmark": name, "results": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if existing.get("benchmark") == name:
                payload = existing
        except (ValueError, OSError):
            pass
    merged = {row["metric"]: row for row in payload.get("results", [])}
    for row in rows:
        merged[row["metric"]] = row
    payload["results"] = [merged[metric] for metric in sorted(merged)]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def fresh_architecture(**config_kwargs) -> UsageControlArchitecture:
    """A new deployment with optional configuration overrides."""
    if config_kwargs:
        return UsageControlArchitecture(config=ArchitectureConfig(**config_kwargs))
    return UsageControlArchitecture()


def deploy_owner_with_resource(architecture: UsageControlArchitecture, name: str = "owner",
                               path: str = RESOURCE_PATH, retention: float = WEEK):
    """Register an owner, initialize their pod, and publish one resource."""
    owner = architecture.register_owner(name)
    pod_initiation(architecture, owner)
    policy = retention_policy(
        owner.pod_manager.base_url + path,
        owner.webid.iri,
        retention_seconds=retention,
        issued_at=architecture.clock.now(),
    )
    resource_initiation(architecture, owner, path, RESOURCE_CONTENT, policy)
    resource_id = owner.pod_manager.require_pod().url_for(path)
    return owner, resource_id


def deploy_consumer(architecture: UsageControlArchitecture, name: str, purpose: str = "web-analytics",
                    subscribe: bool = True):
    """Register a consumer and (optionally) subscribe them to the market."""
    consumer = architecture.register_consumer(name, purpose=purpose)
    if subscribe:
        market_onboarding(architecture, consumer)
    return consumer


def consumers_with_copies(architecture: UsageControlArchitecture, owner, resource_id: str, count: int):
    """Register *count* consumers, each holding a copy of *resource_id*."""
    consumers = []
    for index in range(count):
        consumer = deploy_consumer(architecture, f"consumer-{index:03d}")
        resource_access(architecture, consumer, owner, resource_id)
        consumers.append(consumer)
    return consumers
