"""E11: the usage-control architecture vs the Solid-only status quo.

One declarative policy-tightening story, interpreted twice: the
:class:`~repro.core.runner.ScenarioRunner` drives the full architecture and
the :class:`~repro.core.runner.BaselineScenarioRunner` drives the same spec
against Solid with plain access control.  The comparison falls out of the
two results:

* **Functional** — after the owner tightens retention, the baseline leaves
  a stale, still-usable copy on the consumer's machine (and its monitoring
  snapshot detects nothing), while the architecture erases the copy and
  closes its violation ledger (the paper's core motivation, Section I).
* **Overhead** — the extra on-chain work the architecture adds on the
  access path (certificate purchase, grant recording) and per monitoring
  round, read off the scenario's per-phase gas/transaction accounting; the
  baseline's figures are structurally zero.

Rows are emitted to ``BENCH_baseline.json`` in the shared benchmark schema.
"""

from __future__ import annotations

from repro.common.clock import DAY, MONTH, WEEK
from repro.core.runner import BaselineScenarioRunner, ScenarioRunner
from repro.core.spec import (
    ParticipantSpec,
    ResourceSpec,
    ScenarioSpec,
    access,
    advance,
    check_holds,
    monitor,
    revise_policy,
    use,
)

RES = "alice:/data/browsing.csv"


def tightening_spec() -> ScenarioSpec:
    """Alice shortens retention after Bob's app already took a copy."""
    return ScenarioSpec(
        name="baseline-comparison",
        description="policy tightening: post-access enforcement vs none",
        participants=(
            ParticipantSpec("alice", "owner"),
            ParticipantSpec("bob-app", "consumer", purpose="web-analytics"),
        ),
        resources=(ResourceSpec(owner="alice", path="/data/browsing.csv",
                                retention_seconds=MONTH),),
        timeline=(
            access("bob-app", RES),
            use("bob-app", RES),
            revise_policy(RES, retention_seconds=WEEK),
            advance(WEEK + DAY),
            monitor(RES),
            check_holds("bob-app", RES, "copy_survives_tightening"),
        ),
    ).validate()


def test_e11_functional_gap_between_baseline_and_architecture(report):
    """The same spec, both runners: enforcement happens only on one side."""
    spec = tightening_spec()
    monitored = ScenarioRunner(spec).run()
    baseline = BaselineScenarioRunner(spec).run()

    baseline_snapshot = baseline.stale_copy_snapshots[-1]
    report("E11 functional gap",
           baseline_stale_copies=baseline_snapshot["staleConsumers"],
           baseline_violations_detected=baseline.facts["violations_detected"],
           baseline_copy_survives=baseline.facts["copy_survives_tightening"],
           architecture_copy_survives=monitored.facts["copy_survives_tightening"],
           architecture_violations_expected=len(monitored.ledger.expected),
           architecture_ledger_closed=monitored.ledger.matches)

    # Baseline: the stale copy survives, usable forever, and nothing is
    # detected — there is no evidence trail to detect anything with.
    assert baseline_snapshot["staleConsumers"] == ["bob-app"]
    assert baseline.facts["violations_detected"] == 0
    assert baseline.facts["copy_survives_tightening"] is True
    # Architecture: the TEE erased the copy when the tightened retention
    # lapsed, so the monitoring round is clean and the ledger closes.
    assert monitored.facts["copy_survives_tightening"] is False
    assert monitored.ledger.matches


def test_e11_architecture_overhead_per_phase(report):
    """What the added control costs, phase by phase (baseline: zero gas)."""
    from bench_helpers import bench_row, emit_bench_json

    spec = tightening_spec()
    result = ScenarioRunner(spec).run()
    gas = result.gas_by_phase()
    transactions = result.transactions_by_phase()
    network = result.network_by_phase()
    phases = ["setup", "access", "revise_policy", "monitor"]
    for phase in phases:
        report(f"E11 overhead:{phase}", gas=gas.get(phase, 0),
               transactions=transactions.get(phase, 0),
               network_ms=round(network.get(phase, 0.0) * 1000, 1))

    # The latency dimension: the usage-controlled access path (certificate
    # purchase, ACL + certificate checks, TEE sealing, grant recording) vs
    # a plain Solid read, which pays one client<->pod round trip.
    baseline = BaselineScenarioRunner(spec).run()
    baseline_network_s = baseline.deployment.network.total_latency
    access_network_ms = round(network.get("access", 0.0) * 1000, 1)
    report("E11 access latency", architecture_access_ms=access_network_ms,
           baseline_whole_run_ms=round(baseline_network_s * 1000, 1))

    emit_bench_json(
        "baseline",
        [
            bench_row("architecture_gas_by_phase", phases,
                      [gas.get(phase, 0) for phase in phases]),
            bench_row("architecture_txs_by_phase", phases,
                      [transactions.get(phase, 0) for phase in phases]),
            bench_row("architecture_network_ms_by_phase", phases,
                      [round(network.get(phase, 0.0) * 1000, 1) for phase in phases]),
            bench_row("baseline_gas_by_phase", phases, [0, 0, 0, 0]),
            bench_row("access_network_ms", ["architecture", "baseline-whole-run"],
                      [access_network_ms, round(baseline_network_s * 1000, 1)]),
        ],
    )
    # The access path pays for its certificate + grant transactions, and a
    # monitoring round confirms its batched evidence on-chain; a plain
    # Solid deployment has no counterpart for either.  The added control
    # also costs extra network hops on the access path — more than the
    # baseline's entire run of plain pod round trips.
    assert transactions.get("access", 0) >= 2
    assert gas.get("access", 0) > 0
    assert gas.get("monitor", 0) > 0
    assert network.get("access", 0.0) > 0.0
    assert network.get("access", 0.0) > baseline_network_s
