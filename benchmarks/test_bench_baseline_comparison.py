"""E11: the usage-control architecture vs the Solid-only status quo.

Two comparisons:

* **Functional** — after the owner tightens a policy, the baseline leaves a
  stale, still-usable copy on the consumer's machine while the architecture
  erases it (the paper's core motivation, Section I).
* **Overhead** — the extra work the architecture adds on the resource-access
  path (certificate purchase, grant recording, TEE sealing) compared to a
  plain Solid read.
"""

from __future__ import annotations

import pytest

from repro.common.clock import DAY, MONTH, WEEK
from repro.core.baseline import BaselineSolidDeployment
from repro.core.processes import resource_access
from repro.policy.templates import retention_policy

from bench_helpers import RESOURCE_CONTENT, deploy_consumer, deploy_owner_with_resource, fresh_architecture


def test_e11_functional_gap_between_baseline_and_architecture(benchmark, report):
    """The same policy-tightening story, run on both deployments."""
    # -- baseline: Solid with access control only -------------------------------
    baseline = BaselineSolidDeployment()
    baseline.register_owner("alice")
    baseline.register_consumer("bob")
    path = "/data/browsing.csv"
    policy = retention_policy("https://alice.pods.example.org" + path,
                              baseline.owners["alice"].owner.iri, retention_seconds=MONTH)
    resource_id = baseline.publish_resource("alice", path, RESOURCE_CONTENT, policy)
    baseline.grant_read("alice", "bob", path)
    baseline.access_resource("bob", resource_id)
    baseline.update_policy("alice", path, retention_policy(resource_id,
                           baseline.owners["alice"].owner.iri, WEEK).revise())
    baseline.clock.advance(WEEK + DAY)
    baseline_stale = baseline.stale_copies("alice", path)

    # -- architecture -------------------------------------------------------------
    architecture = fresh_architecture()
    owner, arch_resource_id = deploy_owner_with_resource(architecture, retention=MONTH)
    consumer = deploy_consumer(architecture, "bob-app")
    resource_access(architecture, consumer, owner, arch_resource_id)
    owner.update_policy("/data/dataset.bin", retention_policy(
        arch_resource_id, owner.webid.iri, WEEK, issued_at=architecture.clock.now()).revise())
    architecture.advance_time(WEEK + DAY)
    consumer.tee.enforce_policies()

    report("E11 functional gap",
           baseline_stale_copies=baseline_stale,
           baseline_copy_still_usable=baseline.consumers["bob"].holds_copy(resource_id),
           architecture_copy_survives=consumer.holds_copy(arch_resource_id))
    assert baseline_stale == ["bob"]
    assert baseline.consumers["bob"].holds_copy(resource_id)
    assert not consumer.holds_copy(arch_resource_id)


def test_e11_baseline_access_latency(benchmark, report):
    """Plain Solid read: ACL check plus one pod round trip, no chain, no TEE."""
    baseline = BaselineSolidDeployment()
    baseline.register_owner("alice")
    path = "/data/browsing.csv"
    policy = retention_policy("https://alice.pods.example.org" + path,
                              baseline.owners["alice"].owner.iri, retention_seconds=MONTH)
    resource_id = baseline.publish_resource("alice", path, RESOURCE_CONTENT, policy)
    counter = {"n": 0}

    def run():
        name = f"reader-{counter['n']}"
        counter["n"] += 1
        baseline.register_consumer(name)
        baseline.grant_read("alice", name, path)
        start = baseline.network.total_latency
        baseline.access_resource(name, resource_id)
        return baseline.network.total_latency - start

    network_seconds = benchmark.pedantic(run, rounds=5, iterations=1)
    report("E11 baseline access", simulated_network_ms=round(network_seconds * 1000, 1),
           transactions=0, gas=0)
    assert network_seconds > 0


@pytest.mark.slow
def test_e11_architecture_access_latency(benchmark, report):
    """Usage-controlled access: certificate, ACL + certificate check, TEE sealing, grant tx."""
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture)
    counter = {"n": 0}

    def run():
        consumer = deploy_consumer(architecture, f"reader-{counter['n']}")
        counter["n"] += 1
        return resource_access(architecture, consumer, owner, resource_id)

    trace = benchmark.pedantic(run, rounds=5, iterations=1)
    report("E11 architecture access", simulated_network_ms=round(trace.simulated_network_seconds * 1000, 1),
           transactions=trace.transactions, gas=trace.gas_used)
    # The architecture pays extra network hops and on-chain gas for the added
    # control; the paper's position is that this overhead buys post-access
    # enforcement, and the privacy benchmark (E8) shows it is amortized across
    # subsequent local reads.
    assert trace.transactions >= 2
    assert trace.gas_used > 0
