"""Monitoring-scaling benchmark: per-holder round cost vs. number of copy holders.

The paper's headline claim (Fig. 2.6 at scale) is that policy monitoring
reaches many copy-holding devices.  In the seed reproduction a round over K
holders cost O(K x total-contract-state): the DE App kept all grants,
rounds, evidence, and violations in four monolithic storage slots (so every
access structurally copied the whole world) and the interaction module
auto-mined one block per transaction (so one round sealed ~2K+ blocks, each
re-hashing the contract account).

With per-entry composite slots, slot-granular state-root caching, and the
batched round flow (one ``create_requests`` transaction, one fulfillment
block, one ``record_usage_evidence_batch`` transaction) a round seals a
small constant number of blocks and touches O(holders) entries, so the
per-holder time stays flat as the holder count grows.

This sweep registers synthetic copy-holding devices with a chunked
``record_access_grants`` call (bounded canonical-JSON payload per
transaction, all chunks confirmed in one block) and then measures complete
monitoring rounds — whose own batch transactions are likewise chunked at
``MonitoringCoordinator.chunk_size``.  The measured rows are emitted to
``BENCH_monitoring.json`` at the repo root in the shared benchmark schema
(the CI workflow uploads it to track the perf trajectory).
"""

from __future__ import annotations

import time

import pytest

from repro.common.clock import MONTH
from repro.core.architecture import UsageControlArchitecture
from repro.core.monitoring import MonitoringCoordinator
from repro.policy.templates import retention_policy

from bench_helpers import bench_row, emit_bench_json

PATH = "/data/telemetry.csv"
CONTENT = b"t,v\n" * 8
MAX_BLOCKS_PER_ROUND = 5


def _deployment_with_holders(holders: int):
    """One owner + resource with *holders* synthetic copy-holding devices."""
    architecture = UsageControlArchitecture()
    owner = architecture.register_owner("alice")
    owner.initialize_pod()
    policy = retention_policy(
        owner.pod_manager.base_url + PATH, owner.webid.iri,
        retention_seconds=MONTH, issued_at=architecture.clock.now(),
    )
    owner.upload_resource(PATH, CONTENT)
    owner.publish_resource(PATH, policy)
    resource_id = owner.pod_manager.require_pod().url_for(PATH)
    receipts = architecture.operator_module.call_contract_chunked(
        architecture.dist_exchange_address,
        "record_access_grants",
        "grants",
        [
            {"consumer": "https://id/synthetic", "device_id": f"device-{index:05d}"}
            for index in range(holders)
        ],
        static_args={"resource_id": resource_id},
        chunk_size=500,
    )
    assert sum(receipt.return_value for receipt in receipts) == holders
    return architecture, owner


def _measure_round(holders: int, rounds: int = 2):
    """Best per-holder wall time and worst blocks/gas per round over *rounds*."""
    architecture, owner = _deployment_with_holders(holders)
    coordinator = MonitoringCoordinator(architecture)
    best_seconds = float("inf")
    max_blocks = 0
    max_gas = 0
    for _ in range(rounds):
        height_before = architecture.node.chain.height
        gas_before = architecture.total_gas_used()
        started = time.perf_counter()
        report = coordinator.run_round(owner, PATH)
        elapsed = time.perf_counter() - started
        assert len(report.holders) == holders
        best_seconds = min(best_seconds, elapsed)
        max_blocks = max(max_blocks, architecture.node.chain.height - height_before)
        max_gas = max(max_gas, architecture.total_gas_used() - gas_before)
    return {
        "holders": holders,
        "ms_per_round": round(best_seconds * 1e3, 2),
        "us_per_holder": round(best_seconds / holders * 1e6, 2),
        "blocks_per_round": max_blocks,
        "gas_per_holder": max_gas // holders,
    }


def _emit_json(label: str, rows, ratio: float) -> None:
    """Emit this sweep's rows to BENCH_monitoring.json (shared schema)."""
    holders = [row["holders"] for row in rows]
    emit_bench_json(
        "monitoring",
        [
            bench_row(f"us_per_holder[{label}]", holders,
                      [row["us_per_holder"] for row in rows], pinned_ratio=ratio),
            bench_row(f"gas_per_holder[{label}]", holders,
                      [row["gas_per_holder"] for row in rows]),
            bench_row(f"blocks_per_round[{label}]", holders,
                      [row["blocks_per_round"] for row in rows]),
        ],
    )


def _sweep(label: str, sizes, report):
    rows = [_measure_round(holders) for holders in sizes]
    ratio = round(rows[-1]["us_per_holder"] / rows[0]["us_per_holder"], 2)
    for row in rows:
        report(f"monitoring scaling {row['holders']} holders", **row)
    report(f"monitoring scaling {label}", per_holder_ratio=ratio)
    _emit_json(label, rows, ratio)
    for row in rows:
        assert row["blocks_per_round"] <= MAX_BLOCKS_PER_ROUND
    return rows, ratio


def test_round_cost_flat_from_100_to_400_holders(report):
    """Fast guard (CI split): 4x the holders, same per-holder cost, <=5 blocks."""
    rows, ratio = _sweep("100->400", (100, 400), report)
    assert ratio <= 2.0


@pytest.mark.slow
def test_round_cost_flat_from_100_to_2000_holders(report):
    """Acceptance sweep: 100 -> 2000 holders, per-holder time flat within 2x.

    The seed flow degrades superlinearly here (O(K) blocks per round, each
    copying O(K) contract state); the batched flow must stay inside the
    noise envelope and keep sealing a constant number of blocks.
    """
    rows, ratio = _sweep("100->2000", (100, 500, 2000), report)
    assert ratio <= 2.0
