"""Population-scale scenario benchmark: 100 → 10,000 consumers, mixed profiles.

The paper's headline claim is that decentralized usage-control monitoring
stays affordable as the population of consumers and copy holders grows.
This sweep runs the :func:`~repro.core.scenario_library.population_spec`
family — built via ``spec_from_workload`` from a single seed, with the PR 3
behavior-profile mix (honest majority plus violating, non-responsive,
stale/tampering-oracle, late-paying, and churning minorities) — and
measures, per population size:

* wall-clock per participant for the whole scenario (must stay flat);
* wall-clock of the monitoring phase (every resource's full round);
* wall-clock spent recomputing state roots (``root_hash_time`` — the
  binary incremental scheme must keep this a small, flat slice);
* gas per holder and blocks per round (both must stay flat — PR 2's
  batched-round guarantee at population scale);
* setup-phase blocks (pinned): registration/funding/onboarding is
  cohort-batched (``population_spec``'s ``setup_cohort``), so setup seals
  O(population / cohort) blocks instead of ~4 auto-mined blocks per
  consumer;
* the expected-vs-observed violation ledger must close exactly.

The nightly split pushes the sweep to 5,000 and 10,000 consumers with
sharded monitoring rounds (``monitor_workers``); the fast split guards the
100→300 ratio and smoke-tests a 500-consumer round on two workers.

Rows are emitted to ``BENCH_population.json`` at the repo root in the
shared benchmark schema; CI uploads the file as an artifact and
``scripts/bench_trend.py`` flags pinned-ratio regressions.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.blockchain.crypto import clear_signature_caches
from repro.core.runner import ScenarioRunner
from repro.core.scenario_library import POPULATION_SETUP_COHORT, population_spec

from bench_helpers import bench_row, emit_bench_json

MAX_BLOCKS_PER_ROUND = 5
SEED = 2026
# Setup-phase block budget: 3 contract deployments + per-owner blocks
# (funding, pod registration, 2 resource-publication transactions) + one
# block per registration cohort + one per onboarding cohort.  Any regression
# back toward per-consumer auto-mined blocks trips this pin immediately.
NUM_OWNERS = 2
SETUP_OVERHEAD_BLOCKS = 3 + 4 * NUM_OWNERS


def _setup_block_budget(consumers: int) -> int:
    return SETUP_OVERHEAD_BLOCKS + 2 * math.ceil(consumers / POPULATION_SETUP_COHORT)


def _measure_population(consumers: int, workers: int = 1) -> dict:
    """Run one population scenario and distill the scaling row."""
    # Every row pays its own crypto warm-up.  Consumer key names are
    # deterministic and shared across population sizes, so without a reset
    # an earlier (smaller) run leaves its pubkey tables and verdicts warm
    # for the next row's low-numbered consumers — deflating small-population
    # baselines and skewing the pinned ratios by whatever happened to run
    # earlier in the process.
    clear_signature_caches()
    spec = population_spec(num_consumers=consumers, seed=SEED,
                           monitor_workers=workers)
    started = time.perf_counter()
    result = ScenarioRunner(spec).run()
    wall = time.perf_counter() - started

    assert result.ledger.matches, {
        "missing": [v.to_dict() for v in result.ledger.missing],
        "unexpected": [v.to_dict() for v in result.ledger.unexpected],
    }
    assert result.mispredictions == []

    monitor_steps = [s for s in result.steps if s.phase == "monitor"]
    assert monitor_steps
    holders = sum(s.details["holders"] for s in monitor_steps)
    monitor_gas = sum(s.gas_used for s in monitor_steps)
    setup_blocks = sum(s.blocks for s in result.steps if s.phase == "setup")
    assert setup_blocks <= _setup_block_budget(consumers), {
        "setup_blocks": setup_blocks,
        "budget": _setup_block_budget(consumers),
    }
    root_hash = result.architecture.node.chain.state.root_hash_seconds
    return {
        "consumers": consumers,
        "wall_s": round(wall, 2),
        "ms_per_participant": round(wall / consumers * 1e3, 2),
        "monitor_phase_s": round(sum(s.wall_clock_seconds for s in monitor_steps), 2),
        "root_hash_s": round(root_hash, 3),
        "root_hash_ms_per_participant": round(root_hash / consumers * 1e3, 3),
        "gas_per_holder": monitor_gas // max(1, holders),
        "blocks_per_round": max(s.blocks for s in monitor_steps),
        "setup_blocks": setup_blocks,
        "violations": len(result.ledger.observed),
    }


def _sweep(label: str, sizes, report, ratio_bound: float, workers: int = 1):
    rows = [_measure_population(consumers, workers=workers) for consumers in sizes]
    ratio = round(rows[-1]["ms_per_participant"] / rows[0]["ms_per_participant"], 2)
    root_ratio = round(
        rows[-1]["root_hash_ms_per_participant"]
        / max(rows[0]["root_hash_ms_per_participant"], 1e-6), 2)
    for row in rows:
        report(f"population {row['consumers']} consumers", **row)
    report(f"population {label}", per_participant_ratio=ratio,
           root_hash_ratio=root_ratio, workers=workers)
    populations = [row["consumers"] for row in rows]
    emit_bench_json(
        "population",
        [
            bench_row(f"ms_per_participant[{label}]", populations,
                      [row["ms_per_participant"] for row in rows], pinned_ratio=ratio),
            bench_row(f"monitor_phase_s[{label}]", populations,
                      [row["monitor_phase_s"] for row in rows]),
            bench_row(f"root_hash_time[{label}]", populations,
                      [row["root_hash_s"] for row in rows], pinned_ratio=root_ratio),
            bench_row(f"gas_per_holder[{label}]", populations,
                      [row["gas_per_holder"] for row in rows]),
            bench_row(f"blocks_per_round[{label}]", populations,
                      [row["blocks_per_round"] for row in rows]),
            bench_row(f"setup_blocks[{label}]", populations,
                      [row["setup_blocks"] for row in rows]),
            bench_row(f"violations_detected[{label}]", populations,
                      [row["violations"] for row in rows]),
        ],
    )
    for row in rows:
        assert row["blocks_per_round"] <= MAX_BLOCKS_PER_ROUND
    assert ratio <= ratio_bound, rows
    return rows, ratio


def test_population_cost_flat_from_100_to_300_consumers(report):
    """Fast guard (CI split): 3x the population, flat per-participant cost."""
    _sweep("100->300", (100, 300), report, ratio_bound=1.5)


def test_population_smoke_500_consumers_two_workers(report):
    """Fast guard (CI split): a 500-consumer round on two forked workers.

    The sharded path must hold the batched-round invariants — constant
    blocks per round and an exactly-closed violation ledger — outside the
    in-process fallback, on every CI run (the nightly sweep is the only
    other place forked workers execute at scale).
    """
    row = _measure_population(500, workers=2)
    report("population 500 consumers (2 workers)", **row)
    emit_bench_json(
        "population",
        [bench_row("blocks_per_round[500@2workers]", [500],
                   [row["blocks_per_round"]])],
    )
    assert row["blocks_per_round"] <= MAX_BLOCKS_PER_ROUND


@pytest.mark.slow
def test_population_cost_flat_from_500_to_2000_consumers(report):
    """Acceptance sweep: 500 -> 2,000 consumers, mixed behavior profiles.

    Per-participant wall-clock must stay flat (ratio <= 1.3) and the
    2,000-consumer scenario's complete monitoring phase — a full round over
    every resource, ~1,000 holders each — must finish in under 60 seconds.
    """
    rows, _ = _sweep("500->2000", (500, 1000, 2000), report, ratio_bound=1.3)
    assert rows[-1]["monitor_phase_s"] < 60.0, rows[-1]


@pytest.mark.slow
def test_population_cost_flat_from_1000_to_10k_consumers(report):
    """Nightly acceptance sweep: 1,000 -> 10,000 consumers, sharded rounds.

    The same worker count serves every size, so the per-participant ratio
    compares like with like.  At 10,000 consumers a monitoring round must
    still seal a constant number of blocks, and per-participant wall-clock
    (and the root-hashing slice of it) must stay flat within 1.3x.
    """
    rows, _ = _sweep("1000->10k", (1_000, 5_000, 10_000), report,
                     ratio_bound=1.3, workers=4)
    assert rows[-1]["blocks_per_round"] <= MAX_BLOCKS_PER_ROUND
