"""E9 (Section V-2, robustness): availability and integrity under validator faults.

The paper claims "if an attack succeeds in bringing down one of the nodes,
the blockchain ecosystem can continue to operate by relying on the rest of
the nodes."  This benchmark exercises that claim on the node-backed
validator network — every validator a full :class:`BlockchainNode` replica
with its own mempool, event filters, and block tree — across three fault
classes:

* **crash** — a growing number of failed validators out of four; throughput
  degrades proportionally to the failed fraction (skipped slots), never to
  zero, and the surviving replicas stay consistent;
* **crash + recovery** — a recovered validator resyncs block-by-block from
  a peer and converges to the canonical head;
* **Byzantine equivocation** — a validator double-seals its slot; every
  replica records the slashable proof, fork-choice converges the honest
  replicas, and the canonical chain still replays from genesis.

Rows are emitted to ``BENCH_robustness.json`` at the repo root in the
shared ``{metric, populations, values, pinned_ratio}`` schema; CI uploads
it with the other benchmark artifacts.
"""

from __future__ import annotations

import time

import pytest

from repro.blockchain.crypto import KeyPair
from repro.blockchain.network import BlockchainNetwork
from repro.blockchain.transaction import Transaction

from bench_helpers import bench_row, emit_bench_json

SLOTS = 12
SENDER = KeyPair.from_name("rob-sender")


def _network(num_validators: int = 4) -> BlockchainNetwork:
    return BlockchainNetwork(
        num_validators=num_validators,
        genesis_balances={SENDER.address: 10**9},
    )


def _transfers(network: BlockchainNetwork, count: int, start_nonce: int = 0) -> None:
    recipient = KeyPair.from_name("rob-recipient")
    for offset in range(count):
        tx = Transaction(
            sender=SENDER.address, to=recipient.address, data={},
            value=1, nonce=start_nonce + offset,
        )
        network.broadcast_transaction(tx.sign(SENDER))


def test_e9_availability_under_crash_faults(report):
    """Blocks produced over 12 slots with 0/1/2 of 4 validators down."""
    failed_counts = [0, 1, 2]
    produced_counts = []
    for failed in failed_counts:
        network = _network(4)
        for index in range(failed):
            network.fail_validator(index + 1)  # keep the primary up
        _transfers(network, 3)
        produced = network.produce_blocks(SLOTS)
        assert network.is_available
        assert network.consistent()
        assert not network.liveness_report()["violations"]
        # Throughput degrades proportionally to the failed fraction.
        assert len(produced) == SLOTS - network.skipped_slots
        assert len(produced) >= SLOTS * (4 - failed) // 4
        produced_counts.append(len(produced))
        report(f"E9 availability failed={failed}/4", slots=SLOTS,
               blocks_produced=len(produced), skipped=network.skipped_slots,
               consistent=network.consistent())
    emit_bench_json("robustness", [
        bench_row("blocks_per_12_slots_vs_failed", failed_counts, produced_counts,
                  pinned_ratio=round(produced_counts[-1] / SLOTS, 2)),
    ])


def test_e9_recovery_resync(report):
    """A crashed validator catches up block-by-block after recovery."""
    network = _network(3)
    _transfers(network, 2)
    network.produce_blocks(3)
    network.fail_validator(2)
    _transfers(network, 3, start_nonce=2)
    network.produce_blocks(6)
    lag = network.primary.chain.height - network.validators[2].chain.height
    assert lag > 0
    started = time.perf_counter()
    network.recover_validator(2)
    resync_seconds = time.perf_counter() - started
    assert network.consistent(), network.heads()
    assert network.validators[2].chain.verify_chain(replay=True)
    report("E9 recovery", lag_blocks=lag, resync_ms=round(resync_seconds * 1e3, 2))
    emit_bench_json("robustness", [
        bench_row("resync_ms_per_lagging_block", [lag],
                  [round(resync_seconds * 1e3 / lag, 2)]),
    ])


def test_e9_equivocation_detection_and_convergence(report):
    """A double-sealing validator is detected, slashed, and out-converged."""
    network = _network(3)
    _transfers(network, 2)
    network.produce_blocks(2)
    network.equivocate_validator(2)
    _transfers(network, 2, start_nonce=2)
    started = time.perf_counter()
    network.produce_blocks(2)  # the Byzantine slot plus one honest mop-up slot
    elapsed = time.perf_counter() - started

    assert len(network.equivocation_proofs) == 1
    proof = network.equivocation_proofs[0]
    assert proof.proposer == network.validators[2].address
    assert proof.verify()
    assert network.validators[2].slashed
    assert network.honest_heads_converged()
    for validator in network.honest_validators():
        assert validator.chain.verify_chain(replay=True)
    report("E9 equivocation", detected=True, proposer=proof.proposer,
           convergence_ms=round(elapsed * 1e3, 2))
    emit_bench_json("robustness", [
        bench_row("equivocation_detected_and_converged", [3],
                  [1 if network.honest_heads_converged() else 0], pinned_ratio=1.0),
        bench_row("equivocation_convergence_ms", [3], [round(elapsed * 1e3, 2)]),
    ])


@pytest.mark.slow
def test_e9_partition_heal_at_scale(report):
    """Two islands diverge for 20 slots and converge on heal."""
    network = _network(4)
    _transfers(network, 4)
    network.produce_blocks(4)
    network.partition({0, 1})
    _transfers(network, 4, start_nonce=4)
    network.produce_blocks(20)
    assert not network.consistent()
    started = time.perf_counter()
    network.heal_partition()
    heal_seconds = time.perf_counter() - started
    assert network.consistent(), network.heads()
    for validator in network.validators:
        assert validator.chain.verify_chain(replay=True)
    report("E9 partition heal", slots=20, heal_ms=round(heal_seconds * 1e3, 2))
    emit_bench_json("robustness", [
        bench_row("partition_heal_ms_20_slots", [4], [round(heal_seconds * 1e3, 2)]),
    ])
