"""E9 (Section V-2, robustness): availability and integrity under validator faults.

The paper claims "if an attack succeeds in bringing down one of the nodes,
the blockchain ecosystem can continue to operate by relying on the rest of
the nodes."  This benchmark exercises that claim on the node-backed
validator network — every validator a full :class:`BlockchainNode` replica
with its own mempool, event filters, and block tree — across three fault
classes:

* **crash** — a growing number of failed validators out of four; throughput
  degrades proportionally to the failed fraction (skipped slots), never to
  zero, and the surviving replicas stay consistent;
* **crash + recovery** — a recovered validator resyncs block-by-block from
  a peer and converges to the canonical head;
* **Byzantine equivocation** — a validator double-seals its slot; every
  replica records the slashable proof, fork-choice converges the honest
  replicas, and the canonical chain still replays from genesis.

Rows are emitted to ``BENCH_robustness.json`` at the repo root in the
shared ``{metric, populations, values, pinned_ratio}`` schema; CI uploads
it with the other benchmark artifacts.
"""

from __future__ import annotations

import shutil
import time

import pytest

from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.crypto import KeyPair
from repro.blockchain.network import BlockchainNetwork
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.core.architecture import ArchitectureConfig, UsageControlArchitecture

from bench_helpers import bench_row, emit_bench_json

SLOTS = 12
SENDER = KeyPair.from_name("rob-sender")


def _network(num_validators: int = 4) -> BlockchainNetwork:
    return BlockchainNetwork(
        num_validators=num_validators,
        genesis_balances={SENDER.address: 10**9},
    )


def _transfers(network: BlockchainNetwork, count: int, start_nonce: int = 0) -> None:
    recipient = KeyPair.from_name("rob-recipient")
    for offset in range(count):
        tx = Transaction(
            sender=SENDER.address, to=recipient.address, data={},
            value=1, nonce=start_nonce + offset,
        )
        network.broadcast_transaction(tx.sign(SENDER))


def test_e9_availability_under_crash_faults(report):
    """Blocks produced over 12 slots with 0/1/2 of 4 validators down."""
    failed_counts = [0, 1, 2]
    produced_counts = []
    for failed in failed_counts:
        network = _network(4)
        for index in range(failed):
            network.fail_validator(index + 1)  # keep the primary up
        _transfers(network, 3)
        produced = network.produce_blocks(SLOTS)
        assert network.is_available
        assert network.consistent()
        assert not network.liveness_report()["violations"]
        # Throughput degrades proportionally to the failed fraction.
        assert len(produced) == SLOTS - network.skipped_slots
        assert len(produced) >= SLOTS * (4 - failed) // 4
        produced_counts.append(len(produced))
        report(f"E9 availability failed={failed}/4", slots=SLOTS,
               blocks_produced=len(produced), skipped=network.skipped_slots,
               consistent=network.consistent())
    emit_bench_json("robustness", [
        bench_row("blocks_per_12_slots_vs_failed", failed_counts, produced_counts,
                  pinned_ratio=round(produced_counts[-1] / SLOTS, 2)),
    ])


def test_e9_recovery_resync(report):
    """A crashed validator catches up block-by-block after recovery."""
    network = _network(3)
    _transfers(network, 2)
    network.produce_blocks(3)
    network.fail_validator(2)
    _transfers(network, 3, start_nonce=2)
    network.produce_blocks(6)
    lag = network.primary.chain.height - network.validators[2].chain.height
    assert lag > 0
    started = time.perf_counter()
    network.recover_validator(2)
    resync_seconds = time.perf_counter() - started
    assert network.consistent(), network.heads()
    assert network.validators[2].chain.verify_chain(replay=True)
    report("E9 recovery", lag_blocks=lag, resync_ms=round(resync_seconds * 1e3, 2))
    emit_bench_json("robustness", [
        bench_row("resync_ms_per_lagging_block", [lag],
                  [round(resync_seconds * 1e3 / lag, 2)]),
    ])


def test_e9_equivocation_detection_and_convergence(report):
    """A double-sealing validator is detected, slashed, and out-converged."""
    network = _network(3)
    _transfers(network, 2)
    network.produce_blocks(2)
    network.equivocate_validator(2)
    _transfers(network, 2, start_nonce=2)
    started = time.perf_counter()
    network.produce_blocks(2)  # the Byzantine slot plus one honest mop-up slot
    elapsed = time.perf_counter() - started

    assert len(network.equivocation_proofs) == 1
    proof = network.equivocation_proofs[0]
    assert proof.proposer == network.validators[2].address
    assert proof.verify()
    assert network.validators[2].slashed
    assert network.honest_heads_converged()
    for validator in network.honest_validators():
        assert validator.chain.verify_chain(replay=True)
    report("E9 equivocation", detected=True, proposer=proof.proposer,
           convergence_ms=round(elapsed * 1e3, 2))
    emit_bench_json("robustness", [
        bench_row("equivocation_detected_and_converged", [3],
                  [1 if network.honest_heads_converged() else 0], pinned_ratio=1.0),
        bench_row("equivocation_convergence_ms", [3], [round(elapsed * 1e3, 2)]),
    ])


def _durable_chain_with_consumers(directory: str, consumers: int,
                                  snapshot_interval: int = 8,
                                  max_reorg_depth: int = 8):
    """A persisted single-validator chain whose state holds *consumers* accounts.

    Signatures are disabled so the measurement isolates what the two
    recovery paths actually differ in: re-executing the whole chain versus
    loading a snapshot and re-executing only the non-final tail.
    """
    key = KeyPair.from_name("rec-validator")
    consensus = ProofOfAuthority(validators=[key.address], block_interval=5.0)
    node = BlockchainNode(
        consensus, key,
        genesis_balances={key.address: 10**12},
        require_signatures=False,
        persist_dir=directory,
        max_reorg_depth=max_reorg_depth,
        snapshot_interval=snapshot_interval,
    )
    blocks = 32
    per_block = max(1, consumers // blocks)
    nonce = 0
    for block_index in range(blocks):
        for offset in range(per_block):
            account = block_index * per_block + offset
            node.submit_transaction(Transaction(
                sender=key.address, to=f"0xconsumer{account:05d}", data={},
                value=5, nonce=nonce,
            ))
            nonce += 1
        node.produce_block()
    node.close()
    return key


def test_e9_cold_start_scales_with_tail_not_chain(report, tmp_path):
    """Cold start from a finality snapshot vs a full replay from genesis.

    The snapshot path fast-adopts the final prefix (per-record checksums
    vouch for it) and re-executes only the non-final tail, so its wall time
    scales with the reorg window; the genesis path re-executes every
    transaction ever applied.  The pinned ratio (snapshot / genesis wall
    time) must stay below 1 and is tracked by the trend gate.
    """
    populations = [1000, 2000]
    snapshot_ms, genesis_ms = [], []
    for consumers in populations:
        store_dir = str(tmp_path / f"store-{consumers}")
        key = _durable_chain_with_consumers(store_dir, consumers)

        started = time.perf_counter()
        restored = BlockchainNode.open_from_disk(store_dir, key)
        snapshot_seconds = time.perf_counter() - started
        assert restored.recovery.snapshot_height > 0
        assert restored.recovery.replayed_blocks <= 8  # the reorg window
        restored.close()

        # Same log, snapshots removed: recovery must replay from genesis.
        bare_dir = str(tmp_path / f"bare-{consumers}")
        shutil.copytree(store_dir, bare_dir)
        shutil.rmtree(f"{bare_dir}/snapshots")
        started = time.perf_counter()
        replayed = BlockchainNode.open_from_disk(bare_dir, key)
        genesis_seconds = time.perf_counter() - started
        assert replayed.recovery.snapshot_height == 0
        assert replayed.recovery.replayed_blocks == 32
        assert replayed.chain.head.hash == restored.chain.head.hash
        replayed.close()

        snapshot_ms.append(round(snapshot_seconds * 1e3, 2))
        genesis_ms.append(round(genesis_seconds * 1e3, 2))
        report(f"E9 cold start consumers={consumers}",
               snapshot_ms=snapshot_ms[-1], genesis_replay_ms=genesis_ms[-1])

    ratio = round(snapshot_ms[-1] / genesis_ms[-1], 3)
    assert ratio < 1.0, (
        f"cold start from a snapshot ({snapshot_ms[-1]}ms) should beat a "
        f"genesis replay ({genesis_ms[-1]}ms)"
    )
    emit_bench_json("robustness", [
        bench_row("cold_start_snapshot_ms", populations, snapshot_ms),
        bench_row("cold_start_genesis_replay_ms", populations, genesis_ms),
        bench_row("cold_start_snapshot_vs_genesis_ratio", [populations[-1]],
                  [ratio], pinned_ratio=ratio),
    ])


def test_e9_blocks_to_converge_after_hard_crash(report, tmp_path):
    """A hard-crashed replica resyncs exactly the blocks it missed."""
    network = BlockchainNetwork(
        num_validators=3,
        genesis_balances={SENDER.address: 10**9},
        persist_root=str(tmp_path),
        max_reorg_depth=4,
        snapshot_interval=4,
    )
    _transfers(network, 2)
    network.produce_blocks(6)
    network.crash_validator(1, torn_tail=True)
    _transfers(network, 2, start_nonce=2)
    network.produce_blocks(6)  # 2 slots skipped (the dead proposer), 4 mined

    started = time.perf_counter()
    recovery = network.restart_validator(1)
    restart_seconds = time.perf_counter() - started
    assert network.consistent(), network.heads()
    assert network.validators[1].chain.verify_chain(replay=True)
    assert recovery["resyncedBlocks"] > 0
    network.close()
    report("E9 crash+restart", resynced_blocks=recovery["resyncedBlocks"],
           records_truncated=recovery["recordsTruncated"],
           restart_ms=round(restart_seconds * 1e3, 2))
    emit_bench_json("robustness", [
        bench_row("blocks_to_converge_after_crash", [3],
                  [recovery["resyncedBlocks"]]),
        bench_row("crash_restart_ms", [3], [round(restart_seconds * 1e3, 2)]),
    ])


def test_e9_rounds_to_exclusion_after_slash_tx(report):
    """On-chain churn: blocks from equivocation to a culprit-free rotation.

    A dynamic 4-validator deployment (epoch_length=4) settles the slash as
    an ordinary transaction: the proof fires at the culprit's slot, the
    registry burns the bond, and the next epoch boundary excludes it from
    the derived rotation on every replica.  The row reports that settlement
    latency in blocks (queue -> exclusion), bounded by one rotation cycle
    plus one epoch.
    """
    arch = UsageControlArchitecture(
        config=ArchitectureConfig(validators=4, epoch_length=4))
    network = arch.validator_network
    registry = arch.validator_registry_address
    culprit = network.validators[2].address
    start_height = network.primary.chain.height
    arch.equivocate_validator(2)
    blocks_to_exclusion = None
    for _ in range(16):
        network.produce_blocks(1)
        rotation = network.primary.consensus.rotation_for_height(
            network.primary.chain.height + 1)
        if culprit not in rotation:
            blocks_to_exclusion = network.primary.chain.height - start_height
            break
    assert blocks_to_exclusion is not None
    assert network.validators[2].slashed
    assert arch.node.call(registry, "total_burned") == arch.config.validator_bond
    assert network.honest_heads_converged()
    assert network.primary.chain.verify_chain(replay=True)
    report("E9 slash settlement", blocks_to_exclusion=blocks_to_exclusion,
           bond_burned=arch.config.validator_bond)
    emit_bench_json("robustness", [
        bench_row("blocks_to_rotation_exclusion_after_slash", [4],
                  [blocks_to_exclusion]),
    ])


@pytest.mark.slow
def test_e9_partition_heal_at_scale(report):
    """Two islands diverge for 20 slots and converge on heal."""
    network = _network(4)
    _transfers(network, 4)
    network.produce_blocks(4)
    network.partition({0, 1})
    _transfers(network, 4, start_nonce=4)
    network.produce_blocks(20)
    assert not network.consistent()
    started = time.perf_counter()
    network.heal_partition()
    heal_seconds = time.perf_counter() - started
    assert network.consistent(), network.heads()
    for validator in network.validators:
        assert validator.chain.verify_chain(replay=True)
    report("E9 partition heal", slots=20, heal_ms=round(heal_seconds * 1e3, 2))
    emit_bench_json("robustness", [
        bench_row("partition_heal_ms_20_slots", [4], [round(heal_seconds * 1e3, 2)]),
    ])
