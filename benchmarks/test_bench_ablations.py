"""Ablations over the design choices called out in DESIGN.md §6.

* **Block interval** — latency vs cost amortization: a longer Proof-of-
  Authority block interval delays confirmation of every push-in operation but
  does not change its gas cost.
* **Monitoring mode** — push-based (devices volunteer evidence whenever a
  round opens) vs the paper's pull-based round-trip through the oracle hub:
  the pull-based flow costs extra transactions per holder (request +
  fulfillment) but gives the DE App an explicit, auditable request trail.
* **Policy storage** — storing the full usage policy on-chain vs anchoring
  only its hash: hash anchoring cuts the gas of resource initiation and
  policy updates, at the price of needing an off-chain channel for the policy
  body (the trade-off discussed under privacy/affordability).
"""

from __future__ import annotations

import pytest

from repro.common.clock import DAY, WEEK, MONTH
from repro.common.serialization import stable_hash
from repro.core.monitoring import MonitoringCoordinator
from repro.core.processes import policy_modification, policy_monitoring, pod_initiation
from repro.policy.serialization import policy_to_dict
from repro.policy.templates import retention_policy

from bench_helpers import (
    RESOURCE_CONTENT,
    consumers_with_copies,
    deploy_owner_with_resource,
    fresh_architecture,
)


# -- ablation 1: block interval -------------------------------------------------------------


@pytest.mark.parametrize("block_interval", [1.0, 5.0, 15.0])
def test_ablation_block_interval(benchmark, report, block_interval):
    """Confirmation latency scales with the block interval; gas does not."""

    def run():
        architecture = fresh_architecture(block_interval=block_interval)
        owner = architecture.register_owner("owner")
        start_time = architecture.clock.now()
        trace = pod_initiation(architecture, owner)
        # In this deployment blocks are produced on submission, so the
        # simulated confirmation latency is the block interval itself.
        confirmation = architecture.config.block_interval
        return trace, confirmation, architecture.clock.now() - start_time

    trace, confirmation, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"ablation block_interval={block_interval}s", gas=trace.gas_used,
           confirmation_latency_s=confirmation)
    assert trace.gas_used > 0


# -- ablation 2: monitoring mode -------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("holders", [2, 4])
def test_ablation_monitoring_pull_vs_push(benchmark, report, holders):
    """Transactions per monitoring round: pull-based (paper) vs push-based."""
    # Pull-based: the coordinator drives request/fulfill/record per holder.
    # The sequential flow keeps the per-device transaction accounting this
    # ablation compares; the batched default collapses the round into a
    # constant number of transactions (see test_bench_monitoring_scaling).
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture, retention=MONTH)
    consumers = consumers_with_copies(architecture, owner, resource_id, holders)
    coordinator = MonitoringCoordinator(architecture, batched=False)
    pull_trace = policy_monitoring(architecture, owner, "/data/dataset.bin", coordinator)

    # Push-based alternative: every holder watches MonitoringRequested events
    # and submits its evidence directly, skipping the oracle hub round trip.
    architecture2 = fresh_architecture()
    owner2, resource_id2 = deploy_owner_with_resource(architecture2, retention=MONTH)
    consumers2 = consumers_with_copies(architecture2, owner2, resource_id2, holders)
    start_txs = sum(len(b.transactions) for b in architecture2.node.chain.blocks)
    start_gas = architecture2.total_gas_used()
    owner2.request_monitoring("/data/dataset.bin")
    logs = architecture2.node.get_logs(address=architecture2.dist_exchange_address,
                                       event="MonitoringRequested")
    round_id = logs[-1].data["round_id"]
    for consumer in consumers2:
        evidence = consumer.trusted_app.provide_evidence(resource_id2)
        consumer.module.call_contract(
            architecture2.dist_exchange_address,
            "record_usage_evidence",
            {"round_id": round_id, "device_id": consumer.device_id, "evidence": evidence},
        )
    push_txs = sum(len(b.transactions) for b in architecture2.node.chain.blocks) - start_txs
    push_gas = architecture2.total_gas_used() - start_gas

    report(f"ablation monitoring holders={holders}",
           pull_transactions=pull_trace.transactions, pull_gas=pull_trace.gas_used,
           push_transactions=push_txs, push_gas=push_gas)
    # The pull-based flow pays two extra transactions per holder (hub request +
    # fulfillment); the push-based flow is cheaper but loses the explicit
    # on-chain request trail.
    assert pull_trace.transactions == 1 + 3 * holders
    assert push_txs == 1 + holders
    assert push_gas < pull_trace.gas_used


# -- ablation 3: on-chain policy body vs hash anchoring ------------------------------------------


def test_ablation_policy_storage_full_vs_hash(benchmark, report):
    """Gas of registering a resource with the full policy vs only its hash."""
    architecture = fresh_architecture()
    owner, resource_id = deploy_owner_with_resource(architecture, retention=MONTH)
    policy = retention_policy(resource_id, owner.webid.iri, WEEK, issued_at=architecture.clock.now())

    # Full policy body on-chain (the default path used by the architecture).
    full_receipt = owner.push_in.push_policy_update(resource_id, policy_to_dict(policy), owner.webid.iri)

    # Hash anchoring: only a commitment to the policy goes on-chain.
    anchored = {"policy_hash": stable_hash(policy_to_dict(policy)), "version": policy.version}
    hash_receipt = owner.push_in.push_policy_update(resource_id, anchored, owner.webid.iri)

    report("ablation policy storage", full_policy_gas=full_receipt.gas_used,
           hash_anchor_gas=hash_receipt.gas_used,
           saving_percent=round(100 * (1 - hash_receipt.gas_used / full_receipt.gas_used)))
    from bench_helpers import bench_row, emit_bench_json

    emit_bench_json("ablations", [
        bench_row("policy_storage_gas", ["full-policy", "hash-anchor"],
                  [full_receipt.gas_used, hash_receipt.gas_used]),
    ])
    assert hash_receipt.gas_used < full_receipt.gas_used
