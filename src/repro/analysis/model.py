"""AST model of a contract module.

Builds the structure the rules key on: which classes are ``SmartContract``
subclasses, which of their methods are transaction entrypoints (the same
resolution the VM's ``SmartContract.public_entrypoints`` / ``_invoke``
perform — framework methods inherited from the base class are not
entrypoints), which methods affect state (directly or through ``self._x()``
helper calls), and where events are emitted with which payload schemas.

Everything here works on a bare :class:`ast.Module` — no filesystem access —
so the sandboxed-contract admission gate can feed it synthetic trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.blockchain.vm import CONTRACT_FRAMEWORK_METHODS

#: StorageProxy methods that read persistent state.
STORAGE_READ_METHODS = frozenset(
    {"get", "keys", "items", "get_entry", "has_entry", "entry_count", "get_item"}
)

#: StorageProxy methods that write persistent state.
STORAGE_WRITE_METHODS = frozenset(
    {"set_entry", "delete_entry", "append", "set_item", "setdefault"}
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Return ``"a.b.c"`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_storage_attr(node: ast.AST) -> bool:
    """True for the expression ``self.storage``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "storage"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def storage_read_key(node: ast.AST) -> Optional[ast.AST]:
    """Return the slot-key expression when *node* reads a whole slot.

    Matches ``self.storage[K]`` (Load) and ``self.storage.get(K, ...)``;
    returns ``K``.  Per-entry reads (``get_entry`` …) are not whole-slot
    reads and return None.
    """
    if isinstance(node, ast.Subscript) and is_storage_attr(node.value):
        return node.slice
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and is_storage_attr(node.func.value)
        and node.args
    ):
        return node.args[0]
    return None


def is_storage_write_stmt(node: ast.AST) -> bool:
    """True when *node* is a statement/expression that writes storage."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and is_storage_attr(target.value):
                return True
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and is_storage_attr(target.value):
                return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in STORAGE_WRITE_METHODS and is_storage_attr(node.func.value):
            return True
    return False


def self_call_name(node: ast.AST) -> Optional[str]:
    """Return the method name for a ``self.<name>(...)`` call, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "self"
    ):
        return node.func.attr
    return None


@dataclass
class EmitSite:
    """One ``self.emit(event, **payload)`` call."""

    event: str
    keys: Optional[FrozenSet[str]]  # None when the payload is dynamic (**kwargs)
    line: int
    col: int
    method: str
    contract: str


@dataclass
class MethodModel:
    name: str
    node: ast.FunctionDef
    is_public: bool
    writes_storage: bool          # direct writes / emits / transfers only
    self_calls: Set[str] = field(default_factory=set)


@dataclass
class ContractModel:
    name: str
    node: ast.ClassDef
    methods: Dict[str, MethodModel] = field(default_factory=dict)
    emit_sites: List[EmitSite] = field(default_factory=list)
    #: Public methods minus the VM's framework methods — what a transaction
    #: can actually invoke (mirrors SmartContract.public_entrypoints()).
    entrypoints: Set[str] = field(default_factory=set)
    #: Methods that mutate state directly or via self-call helpers.
    state_affecting: Set[str] = field(default_factory=set)


@dataclass
class ImportRecord:
    module: str          # full dotted module ("repro.contracts.base", "random")
    root: str            # first component ("repro", "random")
    line: int
    col: int


@dataclass
class ModuleModel:
    tree: ast.Module
    filename: str
    contracts: List[ContractModel] = field(default_factory=list)
    imports: List[ImportRecord] = field(default_factory=list)
    #: child node -> parent node, for rules that need enclosing context.
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)


def _contract_bases(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = dotted_name(base)
        if name and name.split(".")[-1] == "SmartContract":
            return True
    return False


def _collect_emits(method: ast.FunctionDef, contract: str) -> List[EmitSite]:
    sites: List[EmitSite] = []
    for node in ast.walk(method):
        if self_call_name(node) != "emit":
            continue
        call = node  # type: ignore[assignment]
        if not call.args:
            continue
        first = call.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        dynamic = any(kw.arg is None for kw in call.keywords)
        keys: Optional[FrozenSet[str]] = None
        if not dynamic:
            keys = frozenset(kw.arg for kw in call.keywords if kw.arg is not None)
        sites.append(
            EmitSite(
                event=first.value,
                keys=keys,
                line=call.lineno,
                col=call.col_offset,
                method=method.name,
                contract=contract,
            )
        )
    return sites


def _method_writes_state(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if is_storage_write_stmt(node):
            return True
        if self_call_name(node) in ("emit", "transfer"):
            return True
    return False


def build_contract_model(node: ast.ClassDef) -> ContractModel:
    model = ContractModel(name=node.name, node=node)
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        method = MethodModel(
            name=item.name,
            node=item,
            is_public=not item.name.startswith("_"),
            writes_storage=_method_writes_state(item),
        )
        for sub in ast.walk(item):
            called = self_call_name(sub)
            if called is not None:
                method.self_calls.add(called)
        model.methods[item.name] = method
        model.emit_sites.extend(_collect_emits(item, node.name))
        if method.is_public and item.name not in CONTRACT_FRAMEWORK_METHODS:
            model.entrypoints.add(item.name)

    # Propagate state-affecting through the intra-class call graph to a
    # fixed point, so an entrypoint delegating every write to a helper is
    # still recognized as state-affecting.
    affecting = {name for name, m in model.methods.items() if m.writes_storage}
    changed = True
    while changed:
        changed = False
        for name, method in model.methods.items():
            if name in affecting:
                continue
            if method.self_calls & affecting:
                affecting.add(name)
                changed = True
    model.state_affecting = affecting
    return model


def build_module_model(tree: ast.Module, filename: str) -> ModuleModel:
    model = ModuleModel(tree=tree, filename=filename)
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            model.parents[child] = node
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                model.imports.append(
                    ImportRecord(
                        module=alias.name,
                        root=alias.name.split(".")[0],
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            model.imports.append(
                ImportRecord(
                    module=module,
                    root=module.split(".")[0] if module else "",
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _contract_bases(node):
            model.contracts.append(build_contract_model(node))
    return model
