"""Per-function local dataflow facts shared by the storage and gas rules.

This is a deliberately shallow, syntactic dataflow: names bound from
whole-slot storage reads, aliases created by iterating or indexing them,
mutations applied through those names, and write-backs into storage.  It is
sound for the idiomatic contract style this repo enforces (no rebinding
games, no comprehension side channels) and errs on the side of not flagging
when it cannot tell.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.model import (
    STORAGE_WRITE_METHODS,
    is_storage_attr,
    is_storage_write_stmt,
    storage_read_key,
)

#: Methods that mutate the object they are called on.
MUTATOR_METHODS = frozenset(
    {"append", "update", "pop", "popitem", "setdefault", "insert", "extend",
     "remove", "clear", "sort", "reverse"}
)

#: Wrappers that forward their (first) argument as the iterable.
ITER_WRAPPERS = frozenset({"sorted", "list", "tuple", "enumerate", "reversed"})


@dataclass
class Mutation:
    """A mutation through *root* (None = directly on a fresh storage read)."""

    root: Optional[str]
    node: ast.AST
    line: int
    col: int


@dataclass
class Writeback:
    """A whole-slot write ``self.storage[K] = <name>``."""

    key_dump: str
    value_name: str
    node: ast.AST
    line: int
    col: int


@dataclass
class StorageLoop:
    """A for-loop whose iterable derives from storage contents."""

    node: ast.For
    whole_storage: bool      # iterates self.storage.keys()/items() directly
    body_writes: bool


@dataclass
class FunctionFacts:
    #: name -> ast.dump of the slot key it was read from (whole-slot reads).
    slot_reads: Dict[str, str] = field(default_factory=dict)
    #: names derived from storage contents (reads + sorted/list wrappers).
    derived: Set[str] = field(default_factory=set)
    #: alias name -> root name (loop targets, element reads).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: parameter names (potential slot values handed in by a caller).
    params: Set[str] = field(default_factory=set)
    #: names bound to set expressions.
    set_names: Set[str] = field(default_factory=set)
    mutations: List[Mutation] = field(default_factory=list)
    writebacks: List[Writeback] = field(default_factory=list)
    #: names whose value is written back through a per-entry/whole-slot op,
    #: returned, or passed onward — exempt from the aliased-mutation rule.
    escapes: Set[str] = field(default_factory=set)
    storage_loops: List[StorageLoop] = field(default_factory=list)

    def root_of(self, name: str) -> str:
        seen = set()
        while name in self.aliases and name not in seen:
            seen.add(name)
            name = self.aliases[name]
        return name

    def mutated_roots(self) -> Set[str]:
        return {m.root for m in self.mutations if m.root is not None}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _target_names(target: ast.AST) -> List[str]:
    names: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    return names


class _Scanner:
    def __init__(self, fn: ast.FunctionDef):
        self.fn = fn
        self.facts = FunctionFacts()
        args = fn.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if arg.arg != "self":
                self.facts.params.add(arg.arg)

    # -- expression classification --------------------------------------------

    def _storage_derived(self, node: ast.AST) -> bool:
        if storage_read_key(node) is not None:
            return True
        if isinstance(node, ast.Name):
            return node.id in self.facts.derived
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in ("items", "keys", "values") and not node.args:
                    if is_storage_attr(func.value):
                        return True  # whole-storage proxy scan
                    return self._storage_derived(func.value)
            if isinstance(func, ast.Name) and func.id in ITER_WRAPPERS and node.args:
                return self._storage_derived(node.args[0])
        return False

    def _is_whole_storage_scan(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("items", "keys", "values") and is_storage_attr(node.func.value):
                return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ITER_WRAPPERS and node.args:
            return self._is_whole_storage_scan(node.args[0])
        return False

    def _record_mutation(self, container: ast.AST, node: ast.AST) -> None:
        """Record a mutation of *container* (the object being changed)."""
        probe = container
        while True:
            if storage_read_key(probe) is not None:
                # Mutating the fresh copy a whole-slot read returned.
                self.facts.mutations.append(
                    Mutation(root=None, node=node, line=node.lineno, col=node.col_offset)
                )
                return
            if isinstance(probe, (ast.Subscript, ast.Attribute)):
                if is_storage_attr(probe):
                    return
                probe = probe.value
                continue
            break
        if isinstance(probe, ast.Name) and probe.id != "self":
            root = self.facts.root_of(probe.id)
            if root in self.facts.slot_reads or root in self.facts.params \
                    or root in self.facts.derived:
                self.facts.mutations.append(
                    Mutation(root=root, node=node, line=node.lineno, col=node.col_offset)
                )

    # -- statement walk ----------------------------------------------------------

    def scan(self) -> FunctionFacts:
        for node in ast.walk(self.fn):
            self._visit(node)
        return self.facts

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            self._visit_assign(node)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, (ast.Subscript, ast.Attribute)) \
                    and not is_storage_attr(node.target.value):
                self._record_mutation(node.target.value, node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and not is_storage_attr(target.value):
                    self._record_mutation(target.value, node)
        elif isinstance(node, ast.For):
            self._visit_for(node)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            self.facts.escapes.add(node.value.id)

    def _visit_assign(self, node: ast.Assign) -> None:
        value = node.value
        single = node.targets[0] if len(node.targets) == 1 else None
        if isinstance(single, ast.Name):
            key = storage_read_key(value)
            if key is not None:
                self.facts.slot_reads[single.id] = ast.dump(key)
                self.facts.derived.add(single.id)
            elif self._storage_derived(value):
                self.facts.derived.add(single.id)
            elif _is_set_expr(value):
                self.facts.set_names.add(single.id)
            elif isinstance(value, ast.Subscript):
                base = _base_name(value)
                if isinstance(base, ast.Name) and base.id != "self":
                    root = self.facts.root_of(base.id)
                    if root in self.facts.slot_reads or root in self.facts.derived:
                        self.facts.aliases[single.id] = root
        # Whole-slot write-back (self.storage[K] = <name>) vs. mutation of a
        # tracked object (X[i] = v / X.attr = v).
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                if is_storage_attr(target.value):
                    if isinstance(value, ast.Name):
                        self.facts.writebacks.append(
                            Writeback(
                                key_dump=ast.dump(target.slice),
                                value_name=value.id,
                                node=node,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )
                        self.facts.escapes.add(value.id)
                else:
                    self._record_mutation(target.value, node)
            elif isinstance(target, ast.Attribute):
                if not (isinstance(target.value, ast.Name) and target.value.id == "self"):
                    self._record_mutation(target.value, node)

    def _visit_for(self, node: ast.For) -> None:
        derived = self._storage_derived(node.iter)
        if derived:
            body_writes = any(
                is_storage_write_stmt(sub)
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            self.facts.storage_loops.append(
                StorageLoop(
                    node=node,
                    whole_storage=self._is_whole_storage_scan(node.iter),
                    body_writes=body_writes,
                )
            )
        # Loop targets alias elements of the iterated collection.
        iter_base = node.iter
        if isinstance(iter_base, ast.Call):
            func = iter_base.func
            if isinstance(func, ast.Attribute) and func.attr in ("items", "keys", "values"):
                iter_base = func.value
            elif isinstance(func, ast.Name) and func.id in ITER_WRAPPERS and iter_base.args:
                iter_base = iter_base.args[0]
                if isinstance(iter_base, ast.Call) and isinstance(iter_base.func, ast.Attribute) \
                        and iter_base.func.attr in ("items", "keys", "values"):
                    iter_base = iter_base.func.value
        if isinstance(iter_base, ast.Name):
            root = self.facts.root_of(iter_base.id)
            if root in self.facts.slot_reads or root in self.facts.derived:
                for name in _target_names(node.target):
                    self.facts.aliases[name] = root

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # Per-entry write ops: their value argument escapes.
            if func.attr in STORAGE_WRITE_METHODS and is_storage_attr(func.value):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        self.facts.escapes.add(arg.id)
                return
            if func.attr in MUTATOR_METHODS:
                self._record_mutation(func.value, node)
                return
            # Arguments of self.<method>(...) calls escape (the callee may
            # write them back).
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        self.facts.escapes.add(arg.id)


def scan_function(fn: ast.FunctionDef) -> FunctionFacts:
    """Compute the local dataflow facts of one function body."""
    return _Scanner(fn).scan()
