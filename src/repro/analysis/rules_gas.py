"""Gas- and bounds-safety rules (GAS0xx).

An entrypoint whose work grows with the size of an on-chain collection will
eventually exceed any gas limit — population-scale rounds chunk such work
off-chain (``call_contract_chunked``) and the per-entry storage ops exist so
the common operations never need the whole collection.  Entrypoints must
also validate the sender *before* mutating state (checks-effects ordering):
a revert after a partial mutation is journal-safe here, but the pattern
hides real authorization bugs and breaks on any VM without full rollback.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.dataflow import scan_function
from repro.analysis.findings import Finding, Severity
from repro.analysis.model import ContractModel, ModuleModel, self_call_name
from repro.analysis.rules import Rule, register


@register
class UnboundedStorageLoopRule(Rule):
    id = "GAS001"
    name = "unbounded-storage-loop"
    description = "Loop over storage contents that writes state."
    severity = Severity.WARNING

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[Finding]:
        for method in contract.methods.values():
            facts = scan_function(method.node)
            symbol = f"{contract.name}.{method.name}"
            for loop in facts.storage_loops:
                if loop.whole_storage:
                    yield self.finding(
                        module, loop.node,
                        "iterating the contract's entire storage — gas grows with "
                        "every slot the contract has ever written",
                        symbol=symbol,
                    )
                elif loop.body_writes:
                    yield self.finding(
                        module, loop.node,
                        "loop over a storage collection with writes in the body — gas "
                        "grows with the collection; chunk the work off-chain or use "
                        "per-entry operations",
                        symbol=symbol,
                    )


@register
class StateBeforeCheckRule(Rule):
    id = "GAS002"
    name = "state-before-check"
    description = "Entrypoint mutates state before its sender/access check."
    severity = Severity.WARNING

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[Finding]:
        for name in sorted(contract.entrypoints):
            method = contract.methods[name]
            symbol = f"{contract.name}.{name}"
            first_write = self._first_effect_line(method.node)
            if first_write is None:
                continue
            for node in ast.walk(method.node):
                if self_call_name(node) != "require":
                    continue
                if node.lineno <= first_write:
                    continue
                if not self._mentions_sender(node):
                    continue
                yield self.finding(
                    module, node,
                    "sender/access check after state was already mutated — order "
                    "checks before effects",
                    symbol=symbol,
                )

    @staticmethod
    def _first_effect_line(fn: ast.FunctionDef) -> Optional[int]:
        from repro.analysis.model import is_storage_write_stmt

        first: Optional[int] = None
        for node in ast.walk(fn):
            effect = is_storage_write_stmt(node) or self_call_name(node) == "transfer"
            if effect:
                line = node.lineno
                if first is None or line < first:
                    first = line
        return first

    @staticmethod
    def _mentions_sender(require_call: ast.Call) -> bool:
        for node in ast.walk(require_call):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "msg_sender"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False
