"""Finding objects produced by the chainlint rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class Severity:
    """Finding severities (informational — the gate fails on both)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file, line, and symbol.

    ``symbol`` is the dotted location inside the module — usually
    ``ClassName.method`` for contract-rule findings, ``<module>`` for
    module-level ones.  Baseline matching keys on ``(file, rule_id,
    symbol)`` so accepted findings survive unrelated line drift.
    """

    rule_id: str
    rule_name: str
    message: str
    file: str
    line: int
    col: int = 0
    symbol: str = "<module>"
    severity: str = Severity.ERROR
    suppressed: bool = False
    baselined: bool = False

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def format(self) -> str:
        flags = ""
        if self.suppressed:
            flags = " [suppressed]"
        elif self.baselined:
            flags = " [baselined]"
        return (
            f"{self.file}:{self.line}:{self.col}: {self.rule_id} "
            f"({self.rule_name}) {self.message} [{self.symbol}]{flags}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "name": self.rule_name,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "severity": self.severity,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def sort_key(self):
        return (self.file, self.line, self.col, self.rule_id)
