"""Event / ABI consistency rules (EVT0xx).

Events are the contract layer's ABI towards the off-chain world: push-out
oracles and monitoring subscribe by event name and read fixed payload keys.
Two emit sites for one event with different payload schemas, or an off-chain
subscription naming an event nothing emits, are integration bugs that only
surface as silently-missing notifications.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import ModuleModel
from repro.analysis.rules import Rule, register


@dataclass
class SubscriptionSite:
    """One off-chain subscription to a contract event, by name."""

    event: str
    file: str
    line: int
    col: int


def collect_subscriptions(tree: ast.Module, filename: str) -> List[SubscriptionSite]:
    """Extract event-name literals from off-chain subscription calls.

    Recognizes ``x.subscribe("Event", …)``, ``x.replay("Event", …)``, and
    ``event="Event"`` keyword arguments of ``add_filter`` / ``get_logs``
    calls — the three ways off-chain components attach to contract events.
    """
    sites: List[SubscriptionSite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        name = node.func.attr
        if name in ("subscribe", "replay") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                sites.append(
                    SubscriptionSite(first.value, filename, first.lineno, first.col_offset)
                )
        elif name in ("add_filter", "get_logs"):
            for keyword in node.keywords:
                if keyword.arg == "event" and isinstance(keyword.value, ast.Constant) \
                        and isinstance(keyword.value.value, str):
                    sites.append(
                        SubscriptionSite(
                            keyword.value.value, filename,
                            keyword.value.lineno, keyword.value.col_offset,
                        )
                    )
    return sites


@register
class InconsistentEventSchemaRule(Rule):
    id = "EVT001"
    name = "inconsistent-event-schema"
    description = "One event name emitted with two different payload schemas."

    def check_project(self, modules: List[ModuleModel],
                      subscriptions: Optional[list] = None) -> Iterator[Finding]:
        # (contract class, event) -> first static schema seen and where.
        schemas: Dict[Tuple[str, str], Tuple[frozenset, str, int]] = {}
        for module in modules:
            for contract in module.contracts:
                for site in contract.emit_sites:
                    if site.keys is None:
                        continue  # dynamic (**payload) — checked at runtime
                    key = (contract.name, site.event)
                    if key not in schemas:
                        schemas[key] = (site.keys, module.filename, site.line)
                        continue
                    expected, first_file, first_line = schemas[key]
                    if site.keys != expected:
                        missing = sorted(expected - site.keys)
                        extra = sorted(site.keys - expected)
                        detail = "; ".join(
                            part for part in (
                                f"missing {missing}" if missing else "",
                                f"extra {extra}" if extra else "",
                            ) if part
                        )
                        yield Finding(
                            rule_id=self.id,
                            rule_name=self.name,
                            message=(
                                f"event {site.event!r} emitted with a different payload "
                                f"schema than at {first_file}:{first_line} ({detail}) — "
                                f"off-chain filters read fixed keys"
                            ),
                            file=module.filename,
                            line=site.line,
                            col=site.col,
                            symbol=f"{contract.name}.{site.method}",
                            severity=self.severity,
                        )


@register
class UnknownEventSubscriptionRule(Rule):
    id = "EVT002"
    name = "unknown-event-subscription"
    description = "Off-chain subscription to an event no contract emits."

    def check_project(self, modules: List[ModuleModel],
                      subscriptions: Optional[list] = None) -> Iterator[Finding]:
        if not subscriptions:
            return
        emitted = {
            site.event
            for module in modules
            for contract in module.contracts
            for site in contract.emit_sites
        }
        if not emitted:
            # No contracts in this run — nothing to cross-check against.
            return
        for sub in subscriptions:
            if sub.event not in emitted:
                yield Finding(
                    rule_id=self.id,
                    rule_name=self.name,
                    message=(
                        f"subscription to event {sub.event!r}, which no analyzed "
                        f"contract emits — the filter will never fire"
                    ),
                    file=sub.file,
                    line=sub.line,
                    col=sub.col,
                    symbol="<off-chain>",
                    severity=self.severity,
                )
