"""The chainlint analysis engine.

Ties the pieces together: parse source (or accept a bare AST — the
admission-gate path for sandboxed user-defined contracts), build the module
model, run every registered rule, apply inline suppressions
(``# chainlint: disable=RULEID``) and the justified baseline, and run the
cross-module event checks over the whole analyzed set.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding
from repro.analysis.model import ModuleModel, build_module_model
from repro.analysis.rules import Rule, RuleRegistry, default_registry
from repro.analysis.rules_events import SubscriptionSite, collect_subscriptions

_SUPPRESSION = re.compile(r"#\s*chainlint:\s*disable=([A-Za-z0-9_,\s]+)")


def find_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule ids disabled on that line.

    The special id ``all`` disables every rule on the line.
    """
    suppressions: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            suppressions[number] = ids
    return suppressions


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: (file, rule, symbol) plus its justification."""

    file: str
    rule: str
    symbol: str
    justification: str = ""

    def matches(self, finding: Finding) -> bool:
        return (
            Path(finding.file).as_posix().endswith(Path(self.file).as_posix())
            and finding.rule_id == self.rule
            and finding.symbol == self.symbol
        )


def load_baseline(path: Union[str, Path]) -> List[BaselineEntry]:
    """Load a baseline file; every entry must carry a justification."""
    data = json.loads(Path(path).read_text())
    entries: List[BaselineEntry] = []
    for raw in data.get("findings", []):
        if not raw.get("justification"):
            raise ValueError(
                f"baseline entry {raw.get('file')}:{raw.get('rule')} has no justification"
            )
        entries.append(
            BaselineEntry(
                file=raw["file"],
                rule=raw["rule"],
                symbol=raw.get("symbol", "<module>"),
                justification=raw["justification"],
            )
        )
    return entries


class Analyzer:
    """Run the chainlint rules over sources, files, trees, or bare ASTs."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 registry: Optional[RuleRegistry] = None,
                 strict_imports: bool = False):
        if rules is not None:
            self.rules: List[Rule] = list(rules)
        else:
            self.rules = (registry or default_registry()).instantiate(strict=strict_imports)
        self._modules: List[ModuleModel] = []

    # -- single-module analysis -------------------------------------------------

    def analyze_ast(self, tree: ast.Module, filename: str = "<ast>",
                    source: Optional[str] = None) -> List[Finding]:
        """Analyze a bare AST (the sandboxed-contract admission path).

        Inline suppressions are honored only when *source* is provided — a
        synthetic AST has no comments, so everything it trips is reported.
        The module model is retained so a later :meth:`finish` can run the
        cross-module event checks over everything analyzed by this instance.
        """
        module = build_module_model(tree, filename)
        self._modules.append(module)
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check_module(module))
            for contract in module.contracts:
                findings.extend(rule.check_contract(contract, module))
        if source is not None:
            findings = self._apply_suppressions(findings, source)
        return sorted((f for f in findings if not f.suppressed), key=Finding.sort_key)

    def analyze_source(self, source: str, filename: str = "<source>") -> List[Finding]:
        tree = ast.parse(source, filename=filename)
        return self.analyze_ast(tree, filename=filename, source=source)

    def analyze_file(self, path: Union[str, Path]) -> List[Finding]:
        path = Path(path)
        return self.analyze_source(path.read_text(), filename=path.as_posix())

    # -- project-level analysis ---------------------------------------------------

    def analyze_paths(self, paths: Iterable[Union[str, Path]],
                      offchain: Iterable[Union[str, Path]] = ()) -> List[Finding]:
        """Analyze every ``.py`` file under *paths*, then cross-check events.

        *offchain* files/directories are scanned only for event
        subscriptions (``subscribe``/``add_filter``/``get_logs`` literals);
        no rules run over them.
        """
        findings: List[Finding] = []
        for file_path in _python_files(paths):
            findings.extend(self.analyze_file(file_path))
        findings.extend(self.finish(_python_files(offchain)))
        return sorted(findings, key=Finding.sort_key)

    def finish(self, offchain_files: Iterable[Union[str, Path]] = ()) -> List[Finding]:
        """Run the cross-module checks over every module analyzed so far."""
        subscriptions: List[SubscriptionSite] = []
        for file_path in offchain_files:
            path = Path(file_path)
            tree = ast.parse(path.read_text(), filename=path.as_posix())
            subscriptions.extend(collect_subscriptions(tree, path.as_posix()))
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check_project(self._modules, subscriptions))
        return sorted(findings, key=Finding.sort_key)

    # -- suppression / baseline ----------------------------------------------------

    @staticmethod
    def _apply_suppressions(findings: List[Finding], source: str) -> List[Finding]:
        suppressions = find_suppressions(source)
        if not suppressions:
            return findings
        result = []
        for finding in findings:
            disabled = suppressions.get(finding.line, set())
            if finding.rule_id in disabled or "all" in disabled:
                finding = replace(finding, suppressed=True)
            result.append(finding)
        return result

    @staticmethod
    def apply_baseline(findings: List[Finding],
                       baseline: Sequence[BaselineEntry]) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (fresh, baselined)."""
        fresh: List[Finding] = []
        accepted: List[Finding] = []
        for finding in findings:
            if any(entry.matches(finding) for entry in baseline):
                accepted.append(replace(finding, baselined=True))
            else:
                fresh.append(finding)
        return fresh, accepted


def _python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


# -- module-level convenience (the admission-gate API) ---------------------------


def analyze_ast(tree: ast.Module, filename: str = "<ast>",
                source: Optional[str] = None, strict: bool = False) -> List[Finding]:
    """Analyze one bare AST with the default rules.

    This is the entrypoint the sandboxed user-defined-contract interpreter
    calls as its admission check: parse the submitted program, hand the tree
    here with ``strict=True``, and refuse deployment on any finding.
    """
    return Analyzer(strict_imports=strict).analyze_ast(tree, filename=filename, source=source)


def analyze_source(source: str, filename: str = "<source>",
                   strict: bool = False) -> List[Finding]:
    """Parse and analyze one source string with the default rules."""
    return Analyzer(strict_imports=strict).analyze_source(source, filename=filename)
