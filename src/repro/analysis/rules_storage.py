"""Storage-discipline rules (STO0xx).

All persistent state must flow through the journaled ``StorageProxy``
operations: the journal is what makes per-transaction rollback and bounded
reorgs correct, and the per-entry operations (``get_entry`` / ``set_entry``
/ ``set_item`` / ``append``) are what keep contract methods O(touched
entries) instead of O(collection).  Instance attributes and mutated slot
aliases live outside the journal entirely — a reorg cannot undo them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import scan_function
from repro.analysis.findings import Finding
from repro.analysis.model import ContractModel, ModuleModel
from repro.analysis.rules import Rule, register
from repro.blockchain.vm import CONTRACT_FRAMEWORK_ATTRIBUTES


@register
class RawStateAttributeRule(Rule):
    id = "STO001"
    name = "raw-state-attribute"
    description = "Contract state kept in an instance attribute instead of storage."

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[Finding]:
        for method in contract.methods.values():
            symbol = f"{contract.name}.{method.name}"
            for node in ast.walk(method.node):
                if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in CONTRACT_FRAMEWORK_ATTRIBUTES
                    ):
                        yield self.finding(
                            module, node,
                            f"assignment to self.{target.attr} bypasses the journaled "
                            f"storage — persistent state must live in self.storage",
                            symbol=symbol,
                        )


@register
class WholeSlotRmwRule(Rule):
    id = "STO002"
    name = "whole-slot-rmw"
    description = "Whole-slot read-modify-write where a per-entry op exists."

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[Finding]:
        for method in contract.methods.values():
            facts = scan_function(method.node)
            mutated = facts.mutated_roots()
            symbol = f"{contract.name}.{method.name}"
            for writeback in facts.writebacks:
                name = writeback.value_name
                if name not in mutated:
                    continue
                # Read-modify-write: the written-back name was either read
                # from the same slot in this function, or handed in as a
                # parameter (the caller read it).
                read_key = facts.slot_reads.get(name)
                if read_key is not None and read_key != writeback.key_dump:
                    continue
                if read_key is None and name not in facts.params:
                    continue
                yield self.finding(
                    module, writeback.node,
                    f"whole-slot read-modify-write of {name!r} — the journal and "
                    f"state-root cache re-process the entire slot; use "
                    f"set_entry/set_item/append to touch only the changed entries",
                    symbol=symbol,
                )


@register
class AliasedSlotMutationRule(Rule):
    id = "STO003"
    name = "aliased-slot-mutation"
    description = "Mutating a copy read from storage without writing it back."

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[Finding]:
        for method in contract.methods.values():
            facts = scan_function(method.node)
            symbol = f"{contract.name}.{method.name}"
            reported = set()
            for mutation in facts.mutations:
                if mutation.root is None:
                    # Mutating the fresh copy a storage read returned: the
                    # change is silently discarded.
                    yield self.finding(
                        module, mutation.node,
                        "mutating the copy returned by a storage read — storage has "
                        "value semantics, so this change is silently lost; use "
                        "set_entry/set_item or write the slot back",
                        symbol=symbol,
                    )
                    continue
                root = mutation.root
                if root in reported or root not in facts.slot_reads:
                    continue
                if root in facts.escapes:
                    continue
                reported.add(root)
                yield self.finding(
                    module, mutation.node,
                    f"{root!r} aliases a storage slot copy and is mutated but never "
                    f"written back — the mutation does not reach the journaled state",
                    symbol=symbol,
                )
