"""Determinism rules (DET0xx).

Every replica re-executes contract code independently; anything that can
evaluate differently on two replicas — ambient time, randomness, process
environment, float rounding, iteration order that depends on dict insertion
history — diverges state roots silently.  Contract code must read its
context exclusively through the VM (``self.block_timestamp``,
``self.block_number``, ``self.msg_sender``, ``self.msg_value``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.dataflow import scan_function
from repro.analysis.findings import Severity
from repro.analysis.model import ContractModel, ModuleModel, dotted_name, is_storage_attr
from repro.analysis.rules import Rule, register

#: Modules whose use inside contract code is inherently nondeterministic or
#: environment-dependent.
BANNED_MODULES = frozenset(
    {"time", "random", "datetime", "os", "sys", "secrets", "uuid", "socket",
     "threading", "multiprocessing", "subprocess", "asyncio", "io", "pathlib",
     "math"}
)

#: Builtins banned in contract code: salted hashing, identity addresses, IO,
#: and dynamic code execution.
BANNED_BUILTINS = frozenset(
    {"hash", "id", "input", "open", "print", "eval", "exec", "compile",
     "globals", "locals", "vars", "__import__"}
)

#: Imports the sandboxed-contract admission gate accepts (strict mode).
IMPORT_WHITELIST = frozenset(
    {"__future__", "typing", "repro.contracts.base",
     "repro.common.serialization", "repro.common.errors"}
)

#: Order-insensitive consumers: feeding unordered iteration into these does
#: not leak iteration order into state or events.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset"}
)

#: Order-preserving consumers: iteration order becomes data.
ORDER_PRESERVING_CONSUMERS = frozenset(
    {"list", "tuple", "enumerate", "reversed", "iter", "dict"}
)


def _iter_contract_nodes(contract: ContractModel) -> Iterator[ast.AST]:
    for method in contract.methods.values():
        yield from ast.walk(method.node)


@register
class BannedImportRule(Rule):
    id = "DET001"
    name = "banned-import"
    description = "Import of a nondeterministic or environment-reading module."

    def check_module(self, module: ModuleModel) -> Iterator[ast.AST]:
        for record in module.imports:
            if record.root in BANNED_MODULES:
                yield self.finding(
                    module,
                    record,
                    f"import of nondeterministic module {record.module!r} — contract "
                    f"code must read context through the VM (self.block_timestamp, …)",
                )


@register
class NonWhitelistedImportRule(Rule):
    id = "DET006"
    name = "import-not-whitelisted"
    description = "Import outside the sandboxed-contract whitelist."
    strict_only = True

    def check_module(self, module: ModuleModel) -> Iterator[ast.AST]:
        for record in module.imports:
            if record.module not in IMPORT_WHITELIST:
                yield self.finding(
                    module,
                    record,
                    f"import {record.module!r} is not on the contract whitelist "
                    f"({', '.join(sorted(IMPORT_WHITELIST))})",
                )


@register
class NondeterministicCallRule(Rule):
    id = "DET002"
    name = "nondeterministic-call"
    description = "Call into a nondeterminism source (time, random, os, hash, …)."

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[ast.AST]:
        for node in _iter_contract_nodes(contract):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            root = name.split(".")[0]
            message: Optional[str] = None
            if root in BANNED_MODULES:
                message = (
                    f"call to {name}() is nondeterministic across replicas — use the "
                    f"VM context (self.block_timestamp / self.block_number) instead"
                )
            elif name in BANNED_BUILTINS:
                message = (
                    f"call to builtin {name}() is banned in contract code "
                    f"(nondeterministic, environment-reading, or dynamic execution)"
                )
            if message is not None:
                yield self.finding(
                    module, node, message, symbol=f"{contract.name}.{_method_of(contract, node)}"
                )


@register
class FloatArithmeticRule(Rule):
    id = "DET003"
    name = "float-arithmetic"
    description = "Float arithmetic in contract code (rounding is platform-lore)."

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[ast.AST]:
        for method in contract.methods.values():
            symbol = f"{contract.name}.{method.name}"
            for node in ast.walk(method.node):
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                    yield self.finding(
                        module, node,
                        "true division produces floats — balances and shares must use "
                        "integer arithmetic (//)",
                        symbol=symbol,
                    )
                elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                    yield self.finding(
                        module, node,
                        "true division produces floats — use integer arithmetic (//=)",
                        symbol=symbol,
                    )
                elif isinstance(node, ast.Constant) and isinstance(node.value, float):
                    yield self.finding(
                        module, node,
                        f"float literal {node.value!r} in contract code — amounts must "
                        f"be integers",
                        symbol=symbol,
                    )
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                        and node.func.id == "float":
                    yield self.finding(
                        module, node,
                        "float() conversion in contract code — amounts must be integers",
                        symbol=symbol,
                    )


@register
class SetIterationRule(Rule):
    id = "DET004"
    name = "set-iteration"
    description = "Iteration over a set (order is salted per process)."

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[ast.AST]:
        for method in contract.methods.values():
            facts = scan_function(method.node)
            symbol = f"{contract.name}.{method.name}"
            for node in ast.walk(method.node):
                iters: List[ast.AST] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for iter_expr in iters:
                    if self._is_set(iter_expr, facts):
                        yield self.finding(
                            module, iter_expr,
                            "iterating a set — its order is salted per process; sort it "
                            "(sorted(...)) before iterating",
                            symbol=symbol,
                        )

    @staticmethod
    def _is_set(node: ast.AST, facts) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Name):
            return node.id in facts.set_names
        return False


@register
class UnorderedIterationRule(Rule):
    id = "DET005"
    name = "unordered-iteration"
    description = "Dict iteration whose order depends on insertion history."

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[ast.AST]:
        for method in contract.methods.values():
            symbol = f"{contract.name}.{method.name}"
            for node in ast.walk(method.node):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("items", "keys", "values")
                        and not node.args and not node.keywords):
                    continue
                # StorageProxy.keys()/items() sort by contract (see vm.py).
                if is_storage_attr(node.func.value):
                    continue
                if not self._order_matters(node, module):
                    continue
                yield self.finding(
                    module, node,
                    f".{node.func.attr}() iteration order depends on dict insertion "
                    f"history, which may differ across replicas (snapshot restore, "
                    f"migration) — wrap in sorted(...)",
                    symbol=symbol,
                )

    @staticmethod
    def _order_matters(node: ast.Call, module: ModuleModel) -> bool:
        parent = module.parent(node)
        if isinstance(parent, ast.For) and parent.iter is node:
            return True
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return True
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name) \
                and node in parent.args:
            if parent.func.id in ORDER_INSENSITIVE_CONSUMERS:
                return False
            if parent.func.id in ORDER_PRESERVING_CONSUMERS:
                return True
        return False


def _method_of(contract: ContractModel, node: ast.AST) -> str:
    line = getattr(node, "lineno", 0)
    best = "<class>"
    best_line = -1
    for method in contract.methods.values():
        if method.node.lineno <= line and method.node.lineno > best_line:
            best = method.name
            best_line = method.node.lineno
    return best
