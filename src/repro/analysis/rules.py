"""Rule base class and registry.

A rule inspects the :class:`~repro.analysis.model.ModuleModel` (and, for
cross-module checks, the whole analysis run) and yields
:class:`~repro.analysis.findings.Finding` objects.  Rules register
themselves into a :class:`RuleRegistry`; the default registry is populated
by importing the rule modules and is what :class:`~repro.analysis.engine.
Analyzer` uses unless given an explicit rule set.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import ContractModel, ModuleModel


class Rule:
    """Base class for chainlint rules."""

    id: str = ""
    name: str = ""
    description: str = ""
    severity: str = Severity.ERROR
    #: Strict-only rules run only for the sandboxed-contract admission gate
    #: (``Analyzer(strict_imports=True)``), not for repo linting.
    strict_only: bool = False

    def check_module(self, module: ModuleModel) -> Iterator[Finding]:
        """Module-scope checks (imports, module-level statements)."""
        return iter(())

    def check_contract(self, contract: ContractModel,
                       module: ModuleModel) -> Iterator[Finding]:
        """Per-contract checks."""
        return iter(())

    def check_project(self, modules: List[ModuleModel],
                      subscriptions: Optional[list] = None) -> Iterator[Finding]:
        """Cross-module checks, run once after every module is analyzed."""
        return iter(())

    def finding(self, module: ModuleModel, node, message: str,
                symbol: str = "<module>") -> Finding:
        return Finding(
            rule_id=self.id,
            rule_name=self.name,
            message=message,
            file=module.filename,
            line=getattr(node, "lineno", getattr(node, "line", 0)),
            col=getattr(node, "col_offset", getattr(node, "col", 0)),
            symbol=symbol,
            severity=self.severity,
        )


class RuleRegistry:
    """Mapping of rule id to rule class."""

    def __init__(self):
        self._rules: Dict[str, Type[Rule]] = {}

    def register(self, rule_class: Type[Rule]) -> Type[Rule]:
        if not rule_class.id:
            raise ValueError(f"{rule_class.__name__} has no rule id")
        if rule_class.id in self._rules:
            raise ValueError(f"duplicate rule id {rule_class.id}")
        self._rules[rule_class.id] = rule_class
        return rule_class

    def get(self, rule_id: str) -> Type[Rule]:
        return self._rules[rule_id]

    def ids(self) -> List[str]:
        return sorted(self._rules)

    def instantiate(self, strict: bool = False,
                    only: Optional[Iterable[str]] = None) -> List[Rule]:
        """Build rule instances for one analysis run."""
        wanted = set(only) if only is not None else None
        rules: List[Rule] = []
        for rule_id in self.ids():
            rule_class = self._rules[rule_id]
            if wanted is not None and rule_id not in wanted:
                continue
            if rule_class.strict_only and not strict and wanted is None:
                continue
            rules.append(rule_class())
        return rules


_DEFAULT = RuleRegistry()


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default registry."""
    return _DEFAULT.register(rule_class)


def default_registry() -> RuleRegistry:
    """Return the default registry with every built-in rule loaded."""
    # Imported here (not at module top) to avoid a cycle: the rule modules
    # import ``register`` from this module.
    from repro.analysis import (  # noqa: F401
        rules_determinism,
        rules_events,
        rules_gas,
        rules_storage,
    )

    return _DEFAULT
