"""chainlint — static analysis for the contract layer.

Every replica must deterministically re-execute the same contract logic, so
nondeterminism or journal-bypassing mutation inside a contract is a silent
consensus-divergence bug, not a style issue.  This package parses contract
and VM-layer source with :mod:`ast`, resolves each ``SmartContract``
subclass's public entrypoints (keying on the VM's own entrypoint metadata),
and runs pluggable rules over them:

* **determinism** — no ambient time/randomness/environment reads, no float
  arithmetic, no iteration whose order depends on dict insertion history;
* **storage discipline** — persistent state only through the journaled
  ``StorageProxy`` operations, per-entry ops instead of whole-slot
  read-modify-write, no mutation of aliased slot copies;
* **gas / bounds safety** — no unbounded storage-driven loops that write,
  checks before effects in entrypoints;
* **event / ABI consistency** — one payload schema per event name, and every
  off-chain subscription names an event some contract actually emits.

The engine works on bare ASTs (:func:`analyze_ast`), which is what lets the
future sandboxed user-defined-contract interpreter reuse it verbatim as its
admission gate, and on files/trees via :class:`Analyzer`.  Findings can be
suppressed inline with ``# chainlint: disable=RULEID`` or accepted in a
justified baseline file.
"""

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, RuleRegistry, default_registry
from repro.analysis.engine import (
    Analyzer,
    BaselineEntry,
    analyze_ast,
    analyze_source,
    load_baseline,
)

__all__ = [
    "Analyzer",
    "BaselineEntry",
    "Finding",
    "Rule",
    "RuleRegistry",
    "Severity",
    "analyze_ast",
    "analyze_source",
    "default_registry",
    "load_baseline",
]
