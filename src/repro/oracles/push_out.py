"""Push-out oracle.

Push-based, out-bound: the contract pushes data *out of* the blockchain by
emitting events; the off-chain oracle component subscribes to those events
and hands them to interested off-chain software.  The architecture uses it to
notify copy-holding TEEs of policy updates (Fig. 2.5) and to deliver the
evidence collected during monitoring back to the pod manager (Fig. 2.6).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.blockchain.node import EventFilter
from repro.blockchain.transaction import LogEntry
from repro.oracles.base import OracleComponent

EventHandler = Callable[[LogEntry], None]


class PushOutOracle(OracleComponent):
    """Delivers contract events to registered off-chain handlers."""

    def __post_init__(self) -> None:  # pragma: no cover - dataclass hook not used
        pass

    def _handlers(self) -> Dict[str, List[EventHandler]]:
        if not hasattr(self, "_handler_map"):
            self._handler_map: Dict[str, List[EventHandler]] = {}
            self._filters: List[EventFilter] = []
        return self._handler_map

    def subscribe(self, event: str, handler: EventHandler, from_block: Optional[int] = None) -> EventFilter:
        """Deliver every future *event* emitted by the contract to *handler*."""
        handlers = self._handlers()
        handlers.setdefault(event, []).append(handler)

        def _dispatch(log: LogEntry) -> None:
            self._count()
            handler(log)

        event_filter = self.module.node.add_filter(
            address=self.contract_address, event=event, callback=_dispatch, from_block=from_block
        )
        self._filters.append(event_filter)
        return event_filter

    def replay(self, event: str, handler: EventHandler, from_block: int = 0) -> int:
        """Deliver historical occurrences of *event* to *handler*.

        Returns the number of logs delivered.  Useful for off-chain components
        that (re)start after events were already emitted.
        """
        logs = self.module.node.get_logs(address=self.contract_address, event=event, from_block=from_block)
        for log in logs:
            self._count()
            handler(log)
        return len(logs)

    def unsubscribe_all(self) -> None:
        """Cancel every live subscription created by this oracle component."""
        for event_filter in getattr(self, "_filters", []):
            self.module.node.remove_filter(event_filter)
        self._filters = []
        self._handler_map = {}
