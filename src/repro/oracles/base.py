"""Blockchain interaction module and the common oracle plumbing.

"These applications interact with the Blockchain via Blockchain Interaction
Modules and the respective Off-chain Oracle Components.  We assume that each
off-chain entity has the credentials necessary to sign transactions and send
data to the Blockchain." (Section III-D)

The :class:`BlockchainInteractionModule` is exactly that: it owns the
entity's key pair, assembles and signs transactions, submits them to a
blockchain node, and (in the default single-node deployment) asks the node to
produce a block so the caller immediately obtains a receipt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.common.errors import ContractError, ReproError
from repro.sim.network import NetworkModel
from repro.blockchain.crypto import KeyPair
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Receipt, Transaction


class BlockchainInteractionModule:
    """Signs and submits transactions on behalf of one off-chain entity."""

    def __init__(self, node: BlockchainNode, keypair: KeyPair,
                 network: Optional[NetworkModel] = None,
                 auto_mine: bool = True, default_gas_limit: int = 2_000_000):
        self.node = node
        self.keypair = keypair
        self.network = network if network is not None else NetworkModel()
        self.auto_mine = auto_mine
        self.default_gas_limit = default_gas_limit
        self.transactions_sent = 0
        self.gas_spent = 0

    @property
    def address(self) -> str:
        return self.keypair.address

    # -- transactions ---------------------------------------------------------------

    def send_transaction(self, to: Optional[str], data: Dict[str, Any], value: int = 0,
                         gas_limit: Optional[int] = None) -> Receipt:
        """Build, sign, submit, and (with auto-mining) confirm a transaction."""
        self.network.sample("oracle", "blockchain")
        tx = Transaction(
            sender=self.address,
            to=to,
            data=data,
            value=value,
            nonce=self.node.next_nonce(self.address),
            gas_limit=gas_limit or self.default_gas_limit,
        )
        tx.sign(self.keypair)
        tx_hash = self.node.submit_transaction(tx)
        self.transactions_sent += 1
        if not self.auto_mine:
            # The caller will mine later; return a placeholder pending receipt.
            return Receipt(transaction_hash=tx_hash, status=True, gas_used=0)
        self.node.produce_block()
        receipt = self.node.get_receipt(tx_hash)
        self.gas_spent += receipt.gas_used
        self.network.sample("blockchain", "oracle")
        if not receipt.status:
            raise ContractError(receipt.error or "transaction reverted")
        return receipt

    def call_contract(self, contract_address: str, method: str,
                      args: Optional[Dict[str, Any]] = None, value: int = 0,
                      gas_limit: Optional[int] = None) -> Receipt:
        """Send a state-changing contract call."""
        return self.send_transaction(
            contract_address,
            {"method": method, "args": args or {}},
            value=value,
            gas_limit=gas_limit,
        )

    def deploy_contract(self, contract_class_name: str,
                        init_args: Optional[Dict[str, Any]] = None, value: int = 0) -> str:
        """Deploy a registered contract class; returns the contract address."""
        receipt = self.send_transaction(
            None,
            {"contract_class": contract_class_name, "init_args": init_args or {}},
            value=value,
        )
        if not receipt.contract_address:
            raise ReproError("contract deployment produced no address")
        return receipt.contract_address

    # -- reads ------------------------------------------------------------------------

    def read(self, contract_address: str, method: str,
             args: Optional[Dict[str, Any]] = None) -> Any:
        """Read-only contract call (free of charge, no transaction)."""
        self.network.round_trip("oracle", "blockchain")
        return self.node.call(contract_address, method, args, caller=self.address)

    def balance(self) -> int:
        return self.node.get_balance(self.address)


@dataclass
class OracleComponent:
    """Common state of an oracle: its contract, interaction module, and stats."""

    module: BlockchainInteractionModule
    contract_address: str
    messages_processed: int = 0

    def _count(self) -> None:
        self.messages_processed += 1
