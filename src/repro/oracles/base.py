"""Blockchain interaction module and the common oracle plumbing.

"These applications interact with the Blockchain via Blockchain Interaction
Modules and the respective Off-chain Oracle Components.  We assume that each
off-chain entity has the credentials necessary to sign transactions and send
data to the Blockchain." (Section III-D)

The :class:`BlockchainInteractionModule` is exactly that: it owns the
entity's key pair, assembles and signs transactions, submits them to a
blockchain node, and (in the default single-node deployment) asks the node to
produce a block so the caller immediately obtains a receipt.

For workflows that confirm many transactions at once (a monitoring round
over thousands of copy holders), auto-mining one block per transaction is
the dominant cost.  :meth:`BlockchainInteractionModule.batch` opens a
:class:`TransactionBatch`: every enrolled module submits with auto-mining
off, a single block is produced when the context exits, and the placeholder
receipts handed out during the batch are resolved in place.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ContractError, ReproError, ValidationError
from repro.sim.network import NetworkModel
from repro.blockchain.crypto import KeyPair
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Receipt, Transaction


class TransactionBatch:
    """Transactions deferred by one or more interaction modules, mined once.

    While a batch is active, enrolled modules return *placeholder* receipts
    (``gas_used=0``, no logs).  :meth:`flush` produces a single block for
    everything submitted, copies each confirmed receipt's fields onto the
    placeholder the caller is holding, updates the modules' gas accounting,
    and raises :class:`ContractError` if any batched transaction reverted.
    """

    def __init__(self, node: BlockchainNode):
        self.node = node
        self._tracked: List[Tuple["BlockchainInteractionModule", Receipt]] = []
        # Modules created while this batch was active; they enrolled
        # themselves (auto-mining off) and are restored when the batch ends.
        self.adopted: List[Tuple["BlockchainInteractionModule", bool, Optional["TransactionBatch"]]] = []
        self.flushed = False

    def track(self, module: "BlockchainInteractionModule", placeholder: Receipt) -> None:
        self._tracked.append((module, placeholder))

    def adopt(self, module: "BlockchainInteractionModule") -> None:
        """Enroll a module constructed while this batch is active.

        Cohort-batched participant registration creates fresh interaction
        modules inside the batch body; adopting them defers their
        transactions into the batch block like every pre-enrolled module.
        """
        self.adopted.append((module, module.auto_mine, module.current_batch))
        module.auto_mine = False
        module.current_batch = self

    @property
    def size(self) -> int:
        """Number of transactions deferred so far."""
        return len(self._tracked)

    def flush(self) -> List[Receipt]:
        """Mine one block and resolve every placeholder receipt in place."""
        self.flushed = True
        if not self._tracked:
            return []
        if self.node.pending:
            self.node.produce_block()
        resolved: List[Receipt] = []
        failures: List[str] = []
        for module, placeholder in self._tracked:
            receipt = self.node.get_receipt(placeholder.transaction_hash)
            placeholder.status = receipt.status
            placeholder.gas_used = receipt.gas_used
            placeholder.logs = receipt.logs
            placeholder.contract_address = receipt.contract_address
            placeholder.return_value = receipt.return_value
            placeholder.error = receipt.error
            placeholder.block_number = receipt.block_number
            module.gas_spent += receipt.gas_used
            resolved.append(placeholder)
            if not receipt.status:
                failures.append(receipt.error or "transaction reverted")
        self._tracked.clear()
        if failures:
            raise ContractError(
                f"{len(failures)} batched transaction(s) reverted; first error: {failures[0]}"
            )
        return resolved


class BlockchainInteractionModule:
    """Signs and submits transactions on behalf of one off-chain entity."""

    def __init__(self, node: BlockchainNode, keypair: KeyPair,
                 network: Optional[NetworkModel] = None,
                 auto_mine: bool = True, default_gas_limit: int = 2_000_000):
        self.node = node
        self.keypair = keypair
        self.network = network if network is not None else NetworkModel()
        self.auto_mine = auto_mine
        self.default_gas_limit = default_gas_limit
        self.transactions_sent = 0
        self.gas_spent = 0
        self.current_batch: Optional[TransactionBatch] = None
        active = getattr(node, "active_batch", None)
        if active is not None:
            # Constructed inside an open batch (cohort-batched registration):
            # join it so this module's first transactions defer into the
            # cohort's block instead of auto-mining one block each.
            active.adopt(self)

    @property
    def address(self) -> str:
        return self.keypair.address

    # -- transactions ---------------------------------------------------------------

    def send_transaction(self, to: Optional[str], data: Dict[str, Any], value: int = 0,
                         gas_limit: Optional[int] = None) -> Receipt:
        """Build, sign, submit, and (with auto-mining) confirm a transaction."""
        self.network.sample("oracle", "blockchain")
        tx = Transaction(
            sender=self.address,
            to=to,
            data=data,
            value=value,
            nonce=self.node.next_nonce(self.address),
            gas_limit=gas_limit or self.default_gas_limit,
        )
        tx.sign(self.keypair)
        tx_hash = self.node.submit_transaction(tx)
        self.transactions_sent += 1
        if not self.auto_mine:
            # The caller (or the active batch) will mine later; return a
            # placeholder pending receipt resolved at flush time.
            receipt = Receipt(transaction_hash=tx_hash, status=True, gas_used=0)
            if self.current_batch is not None:
                self.current_batch.track(self, receipt)
            return receipt
        self.node.produce_block()
        receipt = self.node.get_receipt(tx_hash)
        self.gas_spent += receipt.gas_used
        self.network.sample("blockchain", "oracle")
        if not receipt.status:
            raise ContractError(receipt.error or "transaction reverted")
        return receipt

    def call_contract(self, contract_address: str, method: str,
                      args: Optional[Dict[str, Any]] = None, value: int = 0,
                      gas_limit: Optional[int] = None) -> Receipt:
        """Send a state-changing contract call."""
        return self.send_transaction(
            contract_address,
            {"method": method, "args": args or {}},
            value=value,
            gas_limit=gas_limit,
        )

    def call_contract_chunked(self, contract_address: str, method: str,
                              list_arg: str, items: List[Any],
                              static_args: Optional[Dict[str, Any]] = None,
                              chunk_size: Optional[int] = None,
                              base_gas: int = 2_000_000,
                              gas_per_item: int = 120_000) -> List[Receipt]:
        """Split a batch contract call into several bounded transactions.

        Population-scale rounds pass thousands of items to the batch entry
        points (``create_requests``, ``record_usage_evidence_batch``,
        ``record_access_grants``); a single transaction carrying them all
        keeps the block count low but makes one huge canonical-JSON payload
        that must be hashed, signed, and verified in one piece.  Chunking
        caps the payload per transaction while the chunks still confirm in
        **one block**: with more than one chunk they are deferred through a
        :class:`TransactionBatch` and mined together.

        With at most *chunk_size* items (or ``chunk_size=None``) this is
        exactly one :meth:`call_contract` — byte-identical behavior for the
        small deployments whose results are pinned.  Returns one receipt
        per chunk, in order.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError("chunk_size must be positive")
        size = chunk_size if chunk_size is not None else len(items)
        chunks = [items[start:start + size] for start in range(0, len(items), size)] or [items]
        if len(chunks) == 1:
            receipt = self.call_contract(
                contract_address,
                method,
                {**(static_args or {}), list_arg: chunks[0]},
                gas_limit=base_gas + gas_per_item * len(chunks[0]),
            )
            return [receipt]
        with self.batch():
            receipts = [
                self.call_contract(
                    contract_address,
                    method,
                    {**(static_args or {}), list_arg: chunk},
                    gas_limit=base_gas + gas_per_item * len(chunk),
                )
                for chunk in chunks
            ]
        return receipts

    def deploy_contract(self, contract_class_name: str,
                        init_args: Optional[Dict[str, Any]] = None, value: int = 0) -> str:
        """Deploy a registered contract class; returns the contract address."""
        receipt = self.send_transaction(
            None,
            {"contract_class": contract_class_name, "init_args": init_args or {}},
            value=value,
        )
        if not receipt.contract_address:
            raise ReproError("contract deployment produced no address")
        return receipt.contract_address

    # -- batching ---------------------------------------------------------------------

    @contextmanager
    def batch(self, *modules: "BlockchainInteractionModule") -> Iterator[TransactionBatch]:
        """Defer this module's (and *modules*') transactions into one block.

        Inside the context every enrolled module submits with auto-mining
        off and receives placeholder receipts.  On a clean exit the batch
        mines a single block, resolves the placeholders in place, and
        raises :class:`ContractError` when any batched transaction
        reverted.  If the body raises, nothing is mined — the submitted
        transactions stay in the node's pending pool for the next block.

        Batches do not nest: the node's pending pool is shared, so an inner
        flush would mine an outer batch's deferred transactions early and
        silently break the abort guarantee above.  Opening a batch while
        another is active on the same node raises
        :class:`~repro.common.errors.ValidationError`.
        """
        participants = (self,) + modules
        for module in participants:
            if module.node is not self.node:
                raise ValidationError("batched modules must share a blockchain node")
        if getattr(self.node, "active_batch", None) is not None:
            raise ValidationError("a transaction batch is already active on this node")
        batch = TransactionBatch(self.node)
        self.node.active_batch = batch
        saved = [(module, module.auto_mine, module.current_batch) for module in participants]
        for module in participants:
            module.auto_mine = False
            module.current_batch = batch
        try:
            yield batch
        finally:
            self.node.active_batch = None
            for module, auto_mine, previous_batch in saved:
                module.auto_mine = auto_mine
                module.current_batch = previous_batch
            for module, auto_mine, previous_batch in batch.adopted:
                module.auto_mine = auto_mine
                module.current_batch = previous_batch
        batch.flush()

    # -- reads ------------------------------------------------------------------------

    def read(self, contract_address: str, method: str,
             args: Optional[Dict[str, Any]] = None) -> Any:
        """Read-only contract call (free of charge, no transaction)."""
        self.network.round_trip("oracle", "blockchain")
        return self.node.call(contract_address, method, args, caller=self.address)

    def balance(self) -> int:
        return self.node.get_balance(self.address)


@dataclass
class OracleComponent:
    """Common state of an oracle: its contract, interaction module, and stats."""

    module: BlockchainInteractionModule
    contract_address: str
    messages_processed: int = 0

    def _count(self) -> None:
        self.messages_processed += 1
