"""Push-in oracle.

Push-based, in-bound: an off-chain entity pushes data *into* the blockchain
by signing a transaction towards the target contract.  The architecture uses
it whenever a pod manager needs to record something in the DE App: pod
initiation, resource initiation, policy modification, and the kick-off of a
monitoring round (Fig. 2, processes 1, 2, 5, and 6).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.blockchain.transaction import Receipt
from repro.oracles.base import OracleComponent


class PushInOracle(OracleComponent):
    """Forwards off-chain data to a contract method via signed transactions."""

    def push(self, method: str, args: Optional[Dict[str, Any]] = None, value: int = 0) -> Receipt:
        """Invoke *method* on the target contract with *args*.

        The off-chain component (this object) relays the payload; the
        on-chain component is the contract method that records it.  The
        receipt of the confirmed transaction is returned to the caller so
        pod managers can log the on-chain acknowledgement.
        """
        receipt = self.module.call_contract(self.contract_address, method, args or {}, value=value)
        self._count()
        return receipt

    # Convenience wrappers matching the DE App's interface -----------------------------

    def push_pod_registration(self, pod_url: str, owner: str, default_policy: Dict[str, Any]) -> Receipt:
        """Process 1 — send the new pod's reference and default policy on-chain."""
        return self.push(
            "register_pod",
            {"pod_url": pod_url, "owner": owner, "default_policy": default_policy},
        )

    def push_resource_registration(self, resource_id: str, pod_url: str, location: str,
                                   owner: str, policy: Dict[str, Any],
                                   metadata: Optional[Dict[str, Any]] = None) -> Receipt:
        """Process 2 — send new resource metadata and its usage policy on-chain."""
        return self.push(
            "register_resource",
            {
                "resource_id": resource_id,
                "pod_url": pod_url,
                "location": location,
                "owner": owner,
                "policy": policy,
                "metadata": metadata or {},
            },
        )

    def push_policy_update(self, resource_id: str, policy: Dict[str, Any], owner: str) -> Receipt:
        """Process 5 — send an updated usage policy on-chain."""
        return self.push(
            "update_policy",
            {"resource_id": resource_id, "policy": policy, "owner": owner},
        )

    def push_monitoring_request(self, resource_id: str, requested_by: str) -> Receipt:
        """Process 6 — trigger the policy-monitoring round."""
        return self.push(
            "start_monitoring",
            {"resource_id": resource_id, "requested_by": requested_by},
        )
