"""Blockchain oracles.

"Given that blockchains are closed environments, applications running in the
blockchain ecosystem cannot natively communicate with entities located
outside the network.  For this reason, communication mechanisms called
oracles are needed in order to connect the on-chain to the off-chain world."
(Section III-D)

The paper classifies oracles along two axes — flow direction (in-bound /
out-bound) and data operation (push-based / pull-based) — yielding the four
patterns implemented here, each split into an off-chain and an on-chain part:

* :class:`~repro.oracles.push_in.PushInOracle` — an off-chain component
  (e.g. the pod manager) pushes data *into* a contract via a transaction;
* :class:`~repro.oracles.push_out.PushOutOracle` — a contract pushes data
  *out* by emitting events that the off-chain component delivers to handlers;
* :class:`~repro.oracles.pull_out.PullOutOracle` — an off-chain component
  pulls data out of a contract with a read-only call;
* :class:`~repro.oracles.pull_in.PullInOracle` — a contract pulls data in by
  enqueuing a request on the :class:`~repro.contracts.oracle_hub.OracleRequestHub`
  that an authorized off-chain provider answers.

Off-chain entities interact with the chain through their
:class:`~repro.oracles.base.BlockchainInteractionModule`.
"""

from repro.oracles.base import BlockchainInteractionModule, OracleComponent
from repro.oracles.push_in import PushInOracle
from repro.oracles.push_out import PushOutOracle
from repro.oracles.pull_in import PullInOracle
from repro.oracles.pull_out import PullOutOracle

__all__ = [
    "BlockchainInteractionModule",
    "OracleComponent",
    "PushInOracle",
    "PushOutOracle",
    "PullInOracle",
    "PullOutOracle",
]
