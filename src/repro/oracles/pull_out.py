"""Pull-out oracle.

Pull-based, out-bound: an off-chain entity pulls data *out of* the blockchain
by reading contract state.  The architecture uses it during resource indexing
(Fig. 2.3): the consumer's trusted application "uses the Pull-out Oracle to
read this piece of information [resource location and usage policy] directly
from the DE App running in the Blockchain".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.oracles.base import OracleComponent


class PullOutOracle(OracleComponent):
    """Read-only access to contract state for off-chain consumers."""

    def pull(self, method: str, args: Optional[Dict[str, Any]] = None) -> Any:
        """Perform a read-only call of *method* on the target contract."""
        result = self.module.read(self.contract_address, method, args or {})
        self._count()
        return result

    # Convenience wrappers matching the DE App's interface ---------------------------------

    def resource_record(self, resource_id: str) -> Dict[str, Any]:
        """Process 3 — fetch a resource's location and usage policy."""
        return self.pull("get_resource", {"resource_id": resource_id})

    def resource_policy(self, resource_id: str) -> Dict[str, Any]:
        """Fetch only the current usage policy of a resource."""
        return self.pull("get_policy", {"resource_id": resource_id})

    def list_resources(self) -> List[str]:
        """List every resource indexed by the DE App."""
        return self.pull("list_resources")

    def grants_for(self, resource_id: str) -> List[Dict[str, Any]]:
        """Fetch the access grants recorded for a resource."""
        return self.pull("get_grants", {"resource_id": resource_id})

    def evidence_for(self, resource_id: str) -> List[Dict[str, Any]]:
        """Fetch the usage evidence recorded for a resource."""
        return self.pull("get_evidence", {"resource_id": resource_id})
