"""Pull-in oracle.

Pull-based, in-bound: a contract *requests* data that an off-chain provider
must supply.  The on-chain half is the
:class:`~repro.contracts.oracle_hub.OracleRequestHub` request queue; the
off-chain half (this class) watches for requests, obtains the answer from a
registered provider callback, and posts it back with a transaction.

The architecture uses the pattern during policy monitoring (Fig. 2.6): "the
DE App ... communicates with all devices that have a copy of the resource in
their Trusted Execution Environment via the Pull-in Oracle.  The Pull-in
Oracle, then, requests evidence that the usage policies are being adhered
to."
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.blockchain.transaction import Receipt
from repro.oracles.base import OracleComponent

# A provider receives the request payload and returns the off-chain answer.
RequestProvider = Callable[[Dict[str, Any]], Dict[str, Any]]


class PullInOracle(OracleComponent):
    """Answers on-chain data requests with off-chain information."""

    def _providers(self) -> Dict[str, RequestProvider]:
        if not hasattr(self, "_provider_map"):
            self._provider_map: Dict[str, RequestProvider] = {}
        return self._provider_map

    def register_provider(self, kind: str, provider: RequestProvider) -> None:
        """Register the callable that answers requests of the given *kind*."""
        self._providers()[kind] = provider

    def authorize_on_chain(self) -> Receipt:
        """Authorize this component's address as a provider on the hub contract."""
        return self.module.call_contract(
            self.contract_address, "authorize_provider", {"provider": self.module.address}
        )

    def pending_requests(self, kind: Optional[str] = None) -> List[int]:
        """Request identifiers still awaiting fulfillment on the hub."""
        return self.module.read(self.contract_address, "pending_requests", {"kind": kind})

    def serve_request(self, request_id: int) -> Receipt:
        """Answer one pending request using the registered provider."""
        record = self.module.read(self.contract_address, "get_request", {"request_id": request_id})
        provider = self._providers().get(record["kind"])
        if provider is None:
            raise LookupError(f"no off-chain provider registered for request kind {record['kind']!r}")
        response = provider(record["payload"])
        receipt = self.module.call_contract(
            self.contract_address,
            "fulfill_request",
            {"request_id": request_id, "response": response},
        )
        self._count()
        return receipt

    def serve_pending(self, kind: Optional[str] = None) -> int:
        """Answer every pending request (optionally of one kind); returns the count."""
        served = 0
        for request_id in self.pending_requests(kind):
            record = self.module.read(self.contract_address, "get_request", {"request_id": request_id})
            if record["kind"] not in self._providers():
                continue
            self.serve_request(request_id)
            served += 1
        return served
