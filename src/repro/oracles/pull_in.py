"""Pull-in oracle.

Pull-based, in-bound: a contract *requests* data that an off-chain provider
must supply.  The on-chain half is the
:class:`~repro.contracts.oracle_hub.OracleRequestHub` request queue; the
off-chain half (this class) watches for requests, obtains the answer from a
registered provider callback, and posts it back with a transaction.

The architecture uses the pattern during policy monitoring (Fig. 2.6): "the
DE App ... communicates with all devices that have a copy of the resource in
their Trusted Execution Environment via the Pull-in Oracle.  The Pull-in
Oracle, then, requests evidence that the usage policies are being adhered
to."
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.blockchain.transaction import Receipt
from repro.oracles.base import OracleComponent

# A provider receives the request payload and returns the off-chain answer.
RequestProvider = Callable[[Dict[str, Any]], Dict[str, Any]]

# Injectable fault modes (adversarial/faulty off-chain component, used by the
# scenario engine's behavior profiles):
#
# * ``unresponsive`` — the component never posts a fulfillment; the request
#   stays pending and the monitoring round records "no evidence provided".
# * ``stale-replay`` — the component answers, but replays the first response
#   it ever produced for the same (kind, resource) instead of asking its
#   provider again.  The replayed evidence carries a valid enclave signature
#   over *old* data, so only a freshness check catches it.
# * ``tamper-compliant`` — the component rewrites the provider's answer to
#   claim compliance and hides the usage trail.  It has no enclave key, so
#   the rewritten body no longer matches the enclave signature.
FAULT_UNRESPONSIVE = "unresponsive"
FAULT_STALE_REPLAY = "stale-replay"
FAULT_TAMPER = "tamper-compliant"
FAULT_MODES = (FAULT_UNRESPONSIVE, FAULT_STALE_REPLAY, FAULT_TAMPER)


class PullInOracle(OracleComponent):
    """Answers on-chain data requests with off-chain information."""

    def _providers(self) -> Dict[str, RequestProvider]:
        if not hasattr(self, "_provider_map"):
            self._provider_map: Dict[str, RequestProvider] = {}
        return self._provider_map

    def register_provider(self, kind: str, provider: RequestProvider) -> None:
        """Register the callable that answers requests of the given *kind*."""
        self._providers()[kind] = provider

    # -- fault injection --------------------------------------------------------

    @property
    def fault_mode(self) -> Optional[str]:
        """The currently injected fault, or None for a healthy component."""
        return getattr(self, "_fault_mode", None)

    def inject_fault(self, mode: Optional[str]) -> None:
        """Make this off-chain component faulty (or healthy again with None)."""
        if mode is not None and mode not in FAULT_MODES:
            raise ValidationError(f"unknown pull-in fault mode {mode!r}")
        self._fault_mode = mode

    def _replay_cache(self) -> Dict[Tuple[str, Any], Dict[str, Any]]:
        if not hasattr(self, "_stale_responses"):
            self._stale_responses: Dict[Tuple[str, Any], Dict[str, Any]] = {}
        return self._stale_responses

    def _faulty_response(self, record: Dict[str, Any],
                         provider: RequestProvider) -> Dict[str, Any]:
        """Produce the (possibly faulty) response for one request."""
        if self.fault_mode == FAULT_STALE_REPLAY:
            # The stale component stops consulting its device: it replays the
            # first answer it ever produced for this (kind, resource).
            key = (record["kind"], record.get("payload", {}).get("resource_id"))
            cache = self._replay_cache()
            if key not in cache:
                cache[key] = provider(record["payload"])
            return cache[key]
        response = provider(record["payload"])
        if self.fault_mode == FAULT_TAMPER:
            forged = dict(response)
            forged["compliant"] = True
            compliance = dict(forged.get("compliance") or {})
            compliance["compliant"] = True
            compliance["pendingDuties"] = []
            forged["compliance"] = compliance
            # Hiding the usage trail always alters the signed body.
            forged["usageSummary"] = {}
            return forged
        return response

    def authorize_on_chain(self) -> Receipt:
        """Authorize this component's address as a provider on the hub contract."""
        return self.module.call_contract(
            self.contract_address, "authorize_provider", {"provider": self.module.address}
        )

    def pending_requests(self, kind: Optional[str] = None) -> List[int]:
        """Request identifiers still awaiting fulfillment on the hub."""
        return self.module.read(self.contract_address, "pending_requests", {"kind": kind})

    def serve_request(self, request_id: int) -> Optional[Receipt]:
        """Answer one pending request using the registered provider.

        Returns None without touching the chain when the component has an
        ``unresponsive`` fault injected (the request stays pending).
        """
        if self.fault_mode == FAULT_UNRESPONSIVE:
            return None
        record = self.module.read(self.contract_address, "get_request", {"request_id": request_id})
        provider = self._providers().get(record["kind"])
        if provider is None:
            raise LookupError(f"no off-chain provider registered for request kind {record['kind']!r}")
        response = self._faulty_response(record, provider)
        receipt = self.module.call_contract(
            self.contract_address,
            "fulfill_request",
            {"request_id": request_id, "response": response},
        )
        self._count()
        return receipt

    def fulfill_served(self, request_id: int, response: Dict[str, Any]) -> Receipt:
        """Submit the fulfillment transaction for an already-computed response.

        The sharded monitoring coordinator runs the provider (the expensive
        enclave work) in forked workers; the parent then replays only this
        on-chain fulfillment, so its chain carries the same transaction the
        in-process flow would have sealed.
        """
        receipt = self.module.call_contract(
            self.contract_address,
            "fulfill_request",
            {"request_id": request_id, "response": response},
        )
        self._count()
        return receipt

    def serve_pending(self, kind: Optional[str] = None) -> int:
        """Answer every pending request (optionally of one kind); returns the count."""
        served = 0
        for request_id in self.pending_requests(kind):
            record = self.module.read(self.contract_address, "get_request", {"request_id": request_id})
            if record["kind"] not in self._providers():
                continue
            self.serve_request(request_id)
            served += 1
        return served
