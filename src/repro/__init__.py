"""repro — a reproduction of *A Blockchain-driven Architecture for Usage Control in Solid*.

The package implements the decentralized usage control architecture of
Basile, Di Ciccio, Goretti, and Kirrane (ICDCS 2023) together with every
substrate it depends on: a Solid layer (pods, pod managers, WAC, WebIDs), a
blockchain layer (accounts, PoA consensus, gas-metered Python smart
contracts), the DistExchange / data-market / oracle-hub contracts, the four
blockchain-oracle patterns, a trusted-execution-environment simulation, and
an ODRL-inspired usage-policy language.

Quickstart::

    from repro import UsageControlArchitecture, retention_policy
    from repro.core.processes import pod_initiation, resource_initiation

    arch = UsageControlArchitecture()
    alice = arch.register_owner("alice")
    pod_initiation(arch, alice)
    policy = retention_policy(
        target=alice.pod_manager.base_url + "/data/browsing.csv",
        assigner=alice.webid.iri,
        retention_seconds=7 * 24 * 3600,
    )
    resource_initiation(arch, alice, "/data/browsing.csv", b"...", policy)

See ``examples/`` for complete walk-throughs and ``DESIGN.md`` for the system
inventory.
"""

from repro.core.architecture import ArchitectureConfig, UsageControlArchitecture
from repro.core.baseline import BaselineSolidDeployment
from repro.core.monitoring import MonitoringCoordinator, MonitoringReport
from repro.core.participants import DataConsumer, DataOwner
from repro.core.processes import ProcessTrace
from repro.core.runner import BaselineScenarioRunner, ScenarioRunner
from repro.core.scenario import ScenarioResult, run_alice_bob_scenario
from repro.core.scenario_library import SCENARIO_LIBRARY, get_scenario
from repro.core.spec import Behavior, ParticipantSpec, ResourceSpec, ScenarioSpec
from repro.policy.model import Action, Constraint, Duty, Operator, Permission, Policy, Prohibition
from repro.policy.templates import (
    max_access_policy,
    open_policy,
    purpose_and_retention_policy,
    purpose_policy,
    retention_policy,
)

__version__ = "1.0.0"

__all__ = [
    "ArchitectureConfig",
    "UsageControlArchitecture",
    "BaselineSolidDeployment",
    "MonitoringCoordinator",
    "MonitoringReport",
    "DataConsumer",
    "DataOwner",
    "ProcessTrace",
    "ScenarioResult",
    "run_alice_bob_scenario",
    "BaselineScenarioRunner",
    "ScenarioRunner",
    "SCENARIO_LIBRARY",
    "get_scenario",
    "Behavior",
    "ParticipantSpec",
    "ResourceSpec",
    "ScenarioSpec",
    "Action",
    "Constraint",
    "Duty",
    "Operator",
    "Permission",
    "Policy",
    "Prohibition",
    "max_access_policy",
    "open_policy",
    "purpose_and_retention_policy",
    "purpose_policy",
    "retention_policy",
    "__version__",
]
