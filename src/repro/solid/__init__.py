"""Solid substrate.

The architecture "extends the Solid protocol, whose main goal is to support
decentralized data storage and application development" (Section III-A).
This package reproduces the parts of the Solid ecosystem the paper relies on:

* :mod:`repro.solid.webid` — WebID identities and profile documents;
* :mod:`repro.solid.pod` — pods as LDP container/resource trees;
* :mod:`repro.solid.wac` — Web Access Control authorizations and checks;
* :mod:`repro.solid.pod_manager` — the Pod Manager web application that
  mediates every retrieval, modification, and control operation on a pod;
* :mod:`repro.solid.client` — the client used by trusted applications to talk
  to pod managers.
"""

from repro.solid.webid import WebID
from repro.solid.pod import SolidPod, PodResource, ContainerListing
from repro.solid.wac import AccessMode, Authorization, AclDocument, AgentClass
from repro.solid.pod_manager import PodManager, AccessReceipt
from repro.solid.client import SolidClient, SolidResponse

__all__ = [
    "WebID",
    "SolidPod",
    "PodResource",
    "ContainerListing",
    "AccessMode",
    "Authorization",
    "AclDocument",
    "AgentClass",
    "PodManager",
    "AccessReceipt",
    "SolidClient",
    "SolidResponse",
]
