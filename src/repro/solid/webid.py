"""WebID identities.

In Solid every agent is identified by a WebID: an IRI that dereferences to an
RDF profile document.  The reproduction couples a WebID with the blockchain
key pair the agent uses to sign transactions, because the architecture
"assume[s] that each off-chain entity has the credentials necessary to sign
transactions and send data to the Blockchain" (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.crypto import KeyPair
from repro.rdf.graph import Graph
from repro.rdf.namespace import FOAF, RDF, SOLID
from repro.rdf.term import IRI, Literal


@dataclass
class WebID:
    """An agent identity: WebID IRI, display name, key pair, and profile graph."""

    name: str
    provider: str = "https://id.example.org"
    keypair: KeyPair = None  # type: ignore[assignment]
    pod_url: Optional[str] = None
    profile: Graph = field(default_factory=Graph)

    def __post_init__(self):
        if self.keypair is None:
            self.keypair = KeyPair.from_name(self.name)
        self._rebuild_profile()

    @property
    def iri(self) -> str:
        """The WebID IRI (profile document fragment identifier)."""
        return f"{self.provider}/{self.name}/profile/card#me"

    @property
    def address(self) -> str:
        """The blockchain address derived from the agent's key pair."""
        return self.keypair.address

    def link_pod(self, pod_url: str) -> None:
        """Record the agent's pod as its ``solid:storage`` in the profile."""
        self.pod_url = pod_url
        self._rebuild_profile()

    def _rebuild_profile(self) -> None:
        self.profile = Graph(IRI(self.iri))
        me = IRI(self.iri)
        self.profile.add(me, RDF.type, FOAF.Person)
        self.profile.add(me, FOAF.name, Literal(self.name))
        self.profile.add(me, SOLID.account, Literal(self.address))
        if self.pod_url:
            self.profile.add(me, SOLID.storage, IRI(self.pod_url))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "webid": self.iri,
            "address": self.address,
            "podUrl": self.pod_url,
        }

    def __repr__(self) -> str:
        return f"WebID({self.iri})"
