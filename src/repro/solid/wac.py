"""Web Access Control (WAC).

"The Pod Manager determines whether access can be granted by checking the
access control policies that are stored locally" (Section III-A).  WAC is
Solid's access-control model: ACL documents contain authorizations that grant
agents (or agent classes) modes over a resource, either directly
(``acl:accessTo``) or by default for everything inside a container
(``acl:default``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.common.errors import ValidationError
from repro.rdf.graph import Graph
from repro.rdf.namespace import ACL, RDF
from repro.rdf.term import BlankNode, IRI


class AccessMode(str, enum.Enum):
    """The four WAC access modes."""

    READ = "Read"
    WRITE = "Write"
    APPEND = "Append"
    CONTROL = "Control"


class AgentClass(str, enum.Enum):
    """Agent classes recognised by WAC."""

    AGENT = "Agent"                       # anyone, authenticated or not
    AUTHENTICATED_AGENT = "AuthenticatedAgent"  # anyone with a WebID


@dataclass
class Authorization:
    """One ``acl:Authorization``: who may do what to which resources."""

    modes: Set[AccessMode]
    agents: Set[str] = field(default_factory=set)
    agent_classes: Set[AgentClass] = field(default_factory=set)
    access_to: Set[str] = field(default_factory=set)      # resource paths
    default_for: Set[str] = field(default_factory=set)    # container paths

    def __post_init__(self):
        self.modes = set(self.modes)
        self.agents = set(self.agents)
        self.agent_classes = set(self.agent_classes)
        self.access_to = set(self.access_to)
        self.default_for = set(self.default_for)
        if not self.modes:
            raise ValidationError("an authorization must grant at least one access mode")
        if not self.access_to and not self.default_for:
            raise ValidationError("an authorization must target at least one resource or container")

    def covers_agent(self, webid: Optional[str]) -> bool:
        """Return True when this authorization applies to *webid*.

        ``webid=None`` models an unauthenticated request; it is only covered
        by the public :attr:`AgentClass.AGENT` class.
        """
        if AgentClass.AGENT in self.agent_classes:
            return True
        if webid is None:
            return False
        if AgentClass.AUTHENTICATED_AGENT in self.agent_classes:
            return True
        return webid in self.agents

    def covers_resource(self, resource_path: str, container_path: str) -> bool:
        """Return True when this authorization targets the resource (directly
        or through a container default)."""
        if resource_path in self.access_to:
            return True
        return any(container_path.startswith(container) for container in self.default_for)

    def grants(self, mode: AccessMode) -> bool:
        if mode in self.modes:
            return True
        # Write implies Append, mirroring WAC semantics.
        return mode == AccessMode.APPEND and AccessMode.WRITE in self.modes


class AclDocument:
    """The set of authorizations governing a pod (or part of it)."""

    def __init__(self, authorizations: Optional[Iterable[Authorization]] = None):
        self.authorizations: List[Authorization] = list(authorizations or [])

    def add(self, authorization: Authorization) -> Authorization:
        self.authorizations.append(authorization)
        return authorization

    def grant(self, webid: str, modes: Iterable[AccessMode], resource_path: Optional[str] = None,
              container_path: Optional[str] = None) -> Authorization:
        """Convenience helper adding an authorization for one agent."""
        return self.add(
            Authorization(
                modes=set(modes),
                agents={webid},
                access_to={resource_path} if resource_path else set(),
                default_for={container_path} if container_path else set(),
            )
        )

    def grant_public(self, modes: Iterable[AccessMode], resource_path: Optional[str] = None,
                     container_path: Optional[str] = None) -> Authorization:
        """Grant modes to everyone (the ``foaf:Agent`` class)."""
        return self.add(
            Authorization(
                modes=set(modes),
                agent_classes={AgentClass.AGENT},
                access_to={resource_path} if resource_path else set(),
                default_for={container_path} if container_path else set(),
            )
        )

    def revoke_agent(self, webid: str) -> int:
        """Remove *webid* from every authorization; returns how many changed."""
        changed = 0
        for authorization in self.authorizations:
            if webid in authorization.agents:
                authorization.agents.discard(webid)
                changed += 1
        # Drop authorizations that no longer cover anyone.
        self.authorizations = [
            auth for auth in self.authorizations if auth.agents or auth.agent_classes
        ]
        return changed

    def allows(self, webid: Optional[str], mode: AccessMode, resource_path: str,
               container_path: str) -> bool:
        """Evaluate whether *webid* may perform *mode* on *resource_path*."""
        for authorization in self.authorizations:
            if not authorization.grants(mode):
                continue
            if not authorization.covers_agent(webid):
                continue
            if authorization.covers_resource(resource_path, container_path):
                return True
        return False

    # -- RDF form -------------------------------------------------------------

    def to_graph(self, base_url: str = "https://pod.example.org") -> Graph:
        """Serialize the ACL document to RDF using the WAC vocabulary."""
        graph = Graph()
        for index, authorization in enumerate(self.authorizations):
            node = BlankNode(f"auth{index}")
            graph.add(node, RDF.type, ACL.Authorization)
            for mode in sorted(authorization.modes, key=lambda m: m.value):
                graph.add(node, ACL.mode, ACL.term(mode.value))
            for agent in sorted(authorization.agents):
                graph.add(node, ACL.agent, IRI(agent))
            for agent_class in sorted(authorization.agent_classes, key=lambda c: c.value):
                graph.add(node, ACL.agentClass, ACL.term(agent_class.value))
            for resource in sorted(authorization.access_to):
                graph.add(node, ACL.accessTo, IRI(f"{base_url}{resource}"))
            for container in sorted(authorization.default_for):
                graph.add(node, ACL.default, IRI(f"{base_url}{container}"))
        return graph

    @classmethod
    def from_graph(cls, graph: Graph, base_url: str = "https://pod.example.org") -> "AclDocument":
        """Parse an ACL document from its RDF form."""
        document = cls()
        for node in graph.subjects(RDF.type, ACL.Authorization):
            modes = {
                AccessMode(ACL.local_name(obj))
                for obj in graph.objects(node, ACL.mode)
                if isinstance(obj, IRI)
            }
            agents = {str(obj) for obj in graph.objects(node, ACL.agent)}
            agent_classes = {
                AgentClass(ACL.local_name(obj))
                for obj in graph.objects(node, ACL.agentClass)
                if isinstance(obj, IRI)
            }
            access_to = {
                str(obj)[len(base_url):] if str(obj).startswith(base_url) else str(obj)
                for obj in graph.objects(node, ACL.accessTo)
            }
            default_for = {
                str(obj)[len(base_url):] if str(obj).startswith(base_url) else str(obj)
                for obj in graph.objects(node, ACL.default)
            }
            document.add(
                Authorization(
                    modes=modes,
                    agents=agents,
                    agent_classes=agent_classes,
                    access_to=access_to,
                    default_for=default_for,
                )
            )
        return document
