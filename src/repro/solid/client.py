"""Solid client.

Trusted applications reach pod managers through this client.  It resolves a
resource URL to the right pod manager (the architecture may involve many
owners) and models the request/response exchange the Solid protocol would
perform over HTTP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import AuthorizationError, NotFoundError
from repro.sim.network import NetworkModel
from repro.solid.pod_manager import AccessReceipt, PodManager


@dataclass
class SolidResponse:
    """Outcome of one client request."""

    status: int
    receipt: Optional[AccessReceipt] = None
    error: Optional[str] = None
    network_latency: float = 0.0
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class SolidClient:
    """Resolves resource URLs to pod managers and performs reads."""

    def __init__(self, network: Optional[NetworkModel] = None):
        self._managers: Dict[str, PodManager] = {}
        self.network = network if network is not None else NetworkModel()
        self.requests_sent = 0

    def register_pod_manager(self, manager: PodManager) -> None:
        """Make a pod manager reachable by its base URL."""
        self._managers[manager.base_url] = manager

    def resolve(self, resource_url: str) -> PodManager:
        """Find the pod manager serving *resource_url*."""
        for base_url, manager in self._managers.items():
            if resource_url.startswith(base_url):
                return manager
        raise NotFoundError(f"no registered pod manager serves {resource_url}")

    def get(self, resource_url: str, requester: Optional[str] = None,
            certificate_id: Optional[str] = None, requester_address: Optional[str] = None,
            purpose: Optional[str] = None) -> SolidResponse:
        """Fetch a resource, returning an HTTP-like response object."""
        self.requests_sent += 1
        latency = self.network.round_trip("client", "pod")
        try:
            manager = self.resolve(resource_url)
            path = manager.require_pod().path_for(resource_url)
            receipt = manager.get_resource(
                path,
                requester=requester,
                certificate_id=certificate_id,
                requester_address=requester_address,
                purpose=purpose,
            )
            return SolidResponse(status=200, receipt=receipt, network_latency=latency)
        except AuthorizationError as exc:
            return SolidResponse(status=403, error=str(exc), network_latency=latency)
        except NotFoundError as exc:
            return SolidResponse(status=404, error=str(exc), network_latency=latency)
