"""Solid pods: LDP container/resource trees.

A pod is the personal online datastore where "users' data are kept" (paper,
Section I).  It is modelled as a tree of LDP containers holding resources;
every resource carries a content type, a body (bytes or an RDF graph
serialized to Turtle), optional descriptive metadata, and a pointer to the
ACL document governing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ConflictError, NotFoundError, ValidationError
from repro.rdf.graph import Graph
from repro.rdf.turtle import serialize_turtle

TURTLE = "text/turtle"
OCTET_STREAM = "application/octet-stream"
JSON = "application/json"


def normalize_path(path: str) -> str:
    """Normalize a pod-relative path: leading slash, no duplicate slashes."""
    if not path:
        raise ValidationError("resource paths must be non-empty")
    parts = [part for part in path.split("/") if part]
    normalized = "/" + "/".join(parts)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized


def parent_container(path: str) -> str:
    """Return the container path that holds *path*."""
    normalized = normalize_path(path).rstrip("/")
    if not normalized:
        return "/"
    head, _, _ = normalized.rpartition("/")
    return head + "/" if head else "/"


@dataclass
class PodResource:
    """A stored (non-container) resource inside a pod."""

    path: str
    content: bytes
    content_type: str = OCTET_STREAM
    metadata: Dict[str, str] = field(default_factory=dict)
    created_at: float = 0.0
    modified_at: float = 0.0
    acl_path: Optional[str] = None

    @property
    def size(self) -> int:
        return len(self.content)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "contentType": self.content_type,
            "size": self.size,
            "metadata": dict(self.metadata),
            "createdAt": self.created_at,
            "modifiedAt": self.modified_at,
            "aclPath": self.acl_path,
        }


@dataclass
class ContainerListing:
    """The contents of one container: child containers and resources."""

    path: str
    containers: List[str] = field(default_factory=list)
    resources: List[str] = field(default_factory=list)


class SolidPod:
    """A personal online datastore rooted at ``base_url``."""

    def __init__(self, base_url: str, owner_webid: str, clock: Optional[Clock] = None):
        if not base_url:
            raise ValidationError("pod base_url must be non-empty")
        self.base_url = base_url.rstrip("/")
        self.owner_webid = owner_webid
        self.clock = clock if clock is not None else SystemClock()
        self._resources: Dict[str, PodResource] = {}
        self._containers: Dict[str, List[str]] = {"/": []}

    # -- URLs and paths --------------------------------------------------------

    def url_for(self, path: str) -> str:
        """Absolute URL of a pod-relative path."""
        return f"{self.base_url}{normalize_path(path)}"

    def path_for(self, url: str) -> str:
        """Pod-relative path of an absolute URL belonging to this pod."""
        if not url.startswith(self.base_url):
            raise ValidationError(f"{url} does not belong to pod {self.base_url}")
        remainder = url[len(self.base_url):] or "/"
        return normalize_path(remainder)

    # -- containers ----------------------------------------------------------------

    def create_container(self, path: str) -> str:
        """Create a container (and, implicitly, its ancestors)."""
        normalized = normalize_path(path)
        if not normalized.endswith("/"):
            normalized += "/"
        segments = [segment for segment in normalized.split("/") if segment]
        current = "/"
        for segment in segments:
            child = f"{current}{segment}/"
            if child not in self._containers:
                self._containers[child] = []
                self._containers.setdefault(current, [])
                if child not in self._containers[current]:
                    self._containers[current].append(child)
            current = child
        return current

    def list_container(self, path: str = "/") -> ContainerListing:
        """List the direct members of a container."""
        normalized = normalize_path(path)
        if not normalized.endswith("/"):
            normalized += "/"
        if normalized not in self._containers:
            raise NotFoundError(f"container {normalized} does not exist in pod {self.base_url}")
        resources = [
            resource_path
            for resource_path in sorted(self._resources)
            if parent_container(resource_path) == normalized
        ]
        return ContainerListing(
            path=normalized,
            containers=sorted(self._containers.get(normalized, [])),
            resources=resources,
        )

    def has_container(self, path: str) -> bool:
        normalized = normalize_path(path)
        if not normalized.endswith("/"):
            normalized += "/"
        return normalized in self._containers

    # -- resources ---------------------------------------------------------------------

    def put_resource(self, path: str, content: bytes, content_type: str = OCTET_STREAM,
                     metadata: Optional[Dict[str, str]] = None, overwrite: bool = True) -> PodResource:
        """Create or replace a resource at *path*."""
        normalized = normalize_path(path)
        if normalized.endswith("/"):
            raise ValidationError("resource paths must not end with '/'")
        if not isinstance(content, (bytes, bytearray)):
            raise ValidationError("resource content must be bytes")
        if normalized in self._resources and not overwrite:
            raise ConflictError(f"resource {normalized} already exists")
        container = parent_container(normalized)
        self.create_container(container)
        now = self.clock.now()
        existing = self._resources.get(normalized)
        resource = PodResource(
            path=normalized,
            content=bytes(content),
            content_type=content_type,
            metadata=dict(metadata or {}),
            created_at=existing.created_at if existing else now,
            modified_at=now,
            acl_path=existing.acl_path if existing else None,
        )
        self._resources[normalized] = resource
        return resource

    def put_graph(self, path: str, graph: Graph, metadata: Optional[Dict[str, str]] = None) -> PodResource:
        """Store an RDF graph as a Turtle resource."""
        return self.put_resource(
            path, serialize_turtle(graph).encode("utf-8"), content_type=TURTLE, metadata=metadata
        )

    def get_resource(self, path: str) -> PodResource:
        """Return the resource at *path* or raise :class:`NotFoundError`."""
        normalized = normalize_path(path)
        if normalized not in self._resources:
            raise NotFoundError(f"resource {normalized} does not exist in pod {self.base_url}")
        return self._resources[normalized]

    def has_resource(self, path: str) -> bool:
        return normalize_path(path) in self._resources

    def delete_resource(self, path: str) -> None:
        """Delete the resource at *path*."""
        normalized = normalize_path(path)
        if normalized not in self._resources:
            raise NotFoundError(f"resource {normalized} does not exist in pod {self.base_url}")
        del self._resources[normalized]

    def set_acl_path(self, path: str, acl_path: str) -> None:
        """Associate a resource with the ACL document stored at *acl_path*."""
        resource = self.get_resource(path)
        resource.acl_path = normalize_path(acl_path)

    def resources(self) -> Iterator[PodResource]:
        """Iterate over every stored resource."""
        return iter(list(self._resources.values()))

    def total_size(self) -> int:
        """Total number of bytes stored in the pod."""
        return sum(resource.size for resource in self._resources.values())
