"""The Pod Manager.

"The Pod Manager is a web application that allows users to retrieve, modify
and control data that are stored in a Solid Pod.  Thus, the Pod Manager
determines whether access can be granted by checking the access control
policies that are stored locally." (Section III-A)

Beyond plain Solid behaviour, the architecture's pod manager also:

* keeps the usage policy associated with each published resource;
* verifies the market-fee certificate presented by consumers (Section IV-4);
* emits events (pod created, resource published, policy updated, monitoring
  requested) that the blockchain interaction module / push-in oracle turn
  into transactions towards the DE App.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.errors import AuthorizationError, NotFoundError, ValidationError
from repro.policy.model import Policy
from repro.policy.templates import default_pod_policy
from repro.solid.pod import OCTET_STREAM, SolidPod, normalize_path, parent_container
from repro.solid.wac import AccessMode, AclDocument, Authorization
from repro.solid.webid import WebID

# A certificate verifier receives (certificate_id, consumer_webid_address,
# resource_id) and returns True when the market recognises the certificate.
CertificateVerifier = Callable[[str, str, str], bool]


@dataclass
class AccessReceipt:
    """What a consumer obtains from a successful resource access."""

    resource_url: str
    content: bytes
    content_type: str
    policy: Optional[Policy]
    owner_webid: str
    served_at: float
    metadata: Dict[str, Any] = field(default_factory=dict)


class PodManager:
    """Front-end mediating every operation on the pods of one data owner."""

    def __init__(self, owner: WebID, base_url: Optional[str] = None,
                 clock: Optional[Clock] = None,
                 certificate_verifier: Optional[CertificateVerifier] = None):
        self.owner = owner
        self.clock = clock if clock is not None else SystemClock()
        self.base_url = (base_url or f"https://{owner.name}.pods.example.org").rstrip("/")
        self.certificate_verifier = certificate_verifier
        self.pod: Optional[SolidPod] = None
        self.acl = AclDocument()
        self.policies: Dict[str, Policy] = {}
        self.default_policy: Optional[Policy] = None
        self._listeners: Dict[str, List[Callable[..., None]]] = {}
        self.access_log: List[Dict[str, Any]] = []

    # -- event wiring ----------------------------------------------------------

    def on(self, event: str, callback: Callable[..., None]) -> None:
        """Register a callback for ``pod_created``, ``resource_published``,
        ``policy_updated``, ``monitoring_requested``, or ``access_served``."""
        self._listeners.setdefault(event, []).append(callback)

    def _fire(self, event: str, **payload: Any) -> None:
        for callback in self._listeners.get(event, []):
            callback(**payload)

    # -- pod initiation (Fig. 2.1) ------------------------------------------------

    def create_pod(self, default_policy: Optional[Policy] = None,
                   subscribers: Optional[List[str]] = None) -> SolidPod:
        """Initialize the owner's pod with a default ACL and usage policy."""
        if self.pod is not None:
            raise ValidationError(f"pod manager of {self.owner.name} already manages a pod")
        self.pod = SolidPod(self.base_url, self.owner.iri, clock=self.clock)
        self.pod.create_container("/data/")
        self.pod.create_container("/policies/")
        # The owner holds every access mode over the whole pod.
        self.acl.add(
            Authorization(
                modes={AccessMode.READ, AccessMode.WRITE, AccessMode.CONTROL},
                agents={self.owner.iri},
                default_for={"/"},
            )
        )
        self.default_policy = default_policy or default_pod_policy(
            self.base_url, self.owner.iri, subscribers or [], issued_at=self.clock.now()
        )
        self.owner.link_pod(self.base_url)
        self._fire(
            "pod_created",
            pod_url=self.base_url,
            owner=self.owner,
            default_policy=self.default_policy,
        )
        return self.pod

    def require_pod(self) -> SolidPod:
        if self.pod is None:
            raise NotFoundError(f"{self.owner.name} has not initialized a pod yet")
        return self.pod

    # -- access control ---------------------------------------------------------------

    def grant_access(self, webid: str, modes: List[AccessMode], resource_path: Optional[str] = None,
                     container_path: Optional[str] = None, requester: Optional[str] = None) -> None:
        """Add an ACL authorization (only agents with Control may do this)."""
        actor = requester or self.owner.iri
        target = resource_path or container_path or "/"
        self._require_mode(actor, AccessMode.CONTROL, target)
        self.acl.grant(webid, modes, resource_path=resource_path, container_path=container_path)

    def revoke_access(self, webid: str, requester: Optional[str] = None) -> int:
        """Remove an agent from every authorization."""
        actor = requester or self.owner.iri
        self._require_mode(actor, AccessMode.CONTROL, "/")
        return self.acl.revoke_agent(webid)

    def can_access(self, webid: Optional[str], mode: AccessMode, path: str) -> bool:
        normalized = normalize_path(path)
        return self.acl.allows(webid, mode, normalized, parent_container(normalized))

    def _require_mode(self, webid: Optional[str], mode: AccessMode, path: str) -> None:
        if not self.can_access(webid, mode, path):
            raise AuthorizationError(
                f"{webid or 'anonymous'} lacks {mode.value} access to {path} "
                f"on pod {self.base_url}"
            )

    # -- resource initiation (Fig. 2.2) -----------------------------------------------------

    def upload_resource(self, path: str, content: bytes, content_type: str = OCTET_STREAM,
                        metadata: Optional[Dict[str, str]] = None,
                        requester: Optional[str] = None) -> str:
        """Store a resource in the pod (plain Solid write, no market publication)."""
        pod = self.require_pod()
        actor = requester or self.owner.iri
        self._require_mode(actor, AccessMode.WRITE, path)
        resource = pod.put_resource(path, content, content_type, metadata)
        return pod.url_for(resource.path)

    def publish_resource(self, path: str, policy: Policy,
                         metadata: Optional[Dict[str, Any]] = None,
                         requester: Optional[str] = None) -> str:
        """Add an already-uploaded resource to the data market (Fig. 2.2).

        The pod manager "first checks that [the owner] is permitted to perform
        this action", associates the usage policy with the resource, and then
        notifies the push-in oracle through the ``resource_published`` event.
        """
        pod = self.require_pod()
        actor = requester or self.owner.iri
        self._require_mode(actor, AccessMode.CONTROL, path)
        resource = pod.get_resource(path)
        resource_url = pod.url_for(resource.path)
        self.policies[normalize_path(path)] = policy
        self._fire(
            "resource_published",
            resource_id=resource_url,
            pod_url=self.base_url,
            location=resource_url,
            owner=self.owner,
            policy=policy,
            metadata=metadata or dict(resource.metadata),
        )
        return resource_url

    # -- resource access (Fig. 2.4) -----------------------------------------------------------

    def get_resource(self, path: str, requester: Optional[str] = None,
                     certificate_id: Optional[str] = None,
                     requester_address: Optional[str] = None,
                     purpose: Optional[str] = None) -> AccessReceipt:
        """Serve a resource after checking the ACL and the market certificate."""
        pod = self.require_pod()
        normalized = normalize_path(path)
        resource = pod.get_resource(normalized)
        resource_url = pod.url_for(normalized)
        is_owner = requester == self.owner.iri

        self._require_mode(requester, AccessMode.READ, normalized)

        # Published resources additionally require proof of market-fee payment
        # from anyone who is not the owner (Section IV-4).
        if not is_owner and normalized in self.policies and self.certificate_verifier is not None:
            if certificate_id is None:
                raise AuthorizationError(
                    f"access to {resource_url} requires a market-fee certificate"
                )
            subject = requester_address or requester or ""
            if not self.certificate_verifier(certificate_id, subject, resource_url):
                raise AuthorizationError(
                    f"certificate {certificate_id} is not valid for {resource_url}"
                )

        receipt = AccessReceipt(
            resource_url=resource_url,
            content=resource.content,
            content_type=resource.content_type,
            policy=self.policies.get(normalized, self.default_policy),
            owner_webid=self.owner.iri,
            served_at=self.clock.now(),
            metadata=dict(resource.metadata),
        )
        self.access_log.append(
            {
                "resource": resource_url,
                "requester": requester,
                "purpose": purpose,
                "certificate": certificate_id,
                "served_at": receipt.served_at,
            }
        )
        self._fire("access_served", receipt=receipt, requester=requester, purpose=purpose)
        return receipt

    # -- policy modification (Fig. 2.5) ------------------------------------------------------------

    def get_policy(self, path: str) -> Policy:
        """Return the usage policy currently associated with a resource."""
        normalized = normalize_path(path)
        if normalized not in self.policies:
            raise NotFoundError(f"no usage policy is associated with {normalized}")
        return self.policies[normalized]

    def update_policy(self, path: str, new_policy: Policy, requester: Optional[str] = None) -> Policy:
        """Replace a resource's usage policy and propagate it on-chain.

        The pod manager "checks whether [the owner] is granted the permission
        to change the policy.  If so, it proceeds with the update locally"
        and then pushes the new policy to the DE App via the push-in oracle.
        """
        pod = self.require_pod()
        normalized = normalize_path(path)
        actor = requester or self.owner.iri
        self._require_mode(actor, AccessMode.CONTROL, normalized)
        if normalized not in self.policies:
            raise NotFoundError(f"resource {normalized} has not been published")
        self.policies[normalized] = new_policy
        self._fire(
            "policy_updated",
            resource_id=pod.url_for(normalized),
            policy=new_policy,
            owner=self.owner,
        )
        return new_policy

    # -- policy monitoring (Fig. 2.6) -----------------------------------------------------------------

    def request_monitoring(self, path: str, requester: Optional[str] = None) -> str:
        """Start a policy-monitoring round for one of the owner's resources."""
        pod = self.require_pod()
        normalized = normalize_path(path)
        actor = requester or self.owner.iri
        self._require_mode(actor, AccessMode.CONTROL, normalized)
        if normalized not in self.policies:
            raise NotFoundError(f"resource {normalized} has not been published")
        resource_url = pod.url_for(normalized)
        self._fire("monitoring_requested", resource_id=resource_url, owner=self.owner)
        return resource_url
