"""Cryptographic primitives.

The chain needs three things: a collision-resistant hash (SHA-256), Merkle
roots over transactions and receipts, and digital signatures so that "methods
through which the state of smart contracts is changed can be invoked only by
signing transactions with auditable digital signatures" (paper, Section V-2).

Signatures are ECDSA over secp256k1 implemented in pure Python.  Nonces are
derived deterministically from the message and private key (in the spirit of
RFC 6979), so signing is reproducible and never leaks the key through a bad
RNG.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.common.errors import SignatureError, ValidationError

# secp256k1 domain parameters.
_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
_N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8
_G = (_GX, _GY)

Point = Optional[Tuple[int, int]]  # None is the point at infinity


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of *data*."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the hex SHA-256 digest of *data*."""
    return hashlib.sha256(data).hexdigest()


def merkle_root(leaves: Iterable[bytes]) -> str:
    """Compute the Merkle root (hex) of an ordered sequence of leaf payloads.

    Leaves are hashed individually; at odd levels the last node is duplicated
    (Bitcoin-style).  The root of an empty sequence is the hash of the empty
    string, which keeps empty blocks well-defined.
    """
    level: List[bytes] = [sha256(leaf) for leaf in leaves]
    if not level:
        return sha256_hex(b"")
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [sha256(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
    return level[0].hex()


def merkle_proof(leaves: List[bytes], index: int) -> List[Tuple[str, str]]:
    """Return the audit path for leaf *index* as (side, sibling-hash-hex) pairs."""
    if not 0 <= index < len(leaves):
        raise ValidationError("leaf index out of range")
    level = [sha256(leaf) for leaf in leaves]
    path: List[Tuple[str, str]] = []
    position = index
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        sibling_index = position + 1 if position % 2 == 0 else position - 1
        side = "right" if position % 2 == 0 else "left"
        path.append((side, level[sibling_index].hex()))
        level = [sha256(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
        position //= 2
    return path


def verify_merkle_proof(leaf: bytes, path: List[Tuple[str, str]], root: str) -> bool:
    """Check that *leaf* is included under *root* following the audit *path*."""
    current = sha256(leaf)
    for side, sibling_hex in path:
        sibling = bytes.fromhex(sibling_hex)
        current = sha256(current + sibling) if side == "right" else sha256(sibling + current)
    return current.hex() == root


# -- elliptic-curve arithmetic -------------------------------------------------


def _inverse_mod(value: int, modulus: int) -> int:
    return pow(value, -1, modulus)


def _point_add(a: Point, b: Point) -> Point:
    if a is None:
        return b
    if b is None:
        return a
    ax, ay = a
    bx, by = b
    if ax == bx and (ay + by) % _P == 0:
        return None
    if a == b:
        slope = (3 * ax * ax) * _inverse_mod(2 * ay, _P) % _P
    else:
        slope = (by - ay) * _inverse_mod(bx - ax, _P) % _P
    x = (slope * slope - ax - bx) % _P
    y = (slope * (ax - x) - ay) % _P
    return (x, y)


def _point_multiply(k: int, point: Point) -> Point:
    if k % _N == 0 or point is None:
        return None
    result: Point = None
    addend = point
    while k:
        if k & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        k >>= 1
    return result


# -- keys and signatures -------------------------------------------------------


def _deterministic_nonce(private_key: int, digest: bytes) -> int:
    """Derive a deterministic nonce from the key and message digest."""
    key_bytes = private_key.to_bytes(32, "big")
    counter = 0
    while True:
        material = hmac.new(key_bytes, digest + counter.to_bytes(4, "big"), hashlib.sha256).digest()
        nonce = int.from_bytes(material, "big") % _N
        if nonce != 0:
            return nonce
        counter += 1


def sign(private_key: int, message: bytes) -> Tuple[int, int]:
    """Produce an ECDSA signature (r, s) over SHA-256(message)."""
    if not 1 <= private_key < _N:
        raise SignatureError("private key out of range")
    digest = sha256(message)
    z = int.from_bytes(digest, "big")
    while True:
        k = _deterministic_nonce(private_key, digest)
        point = _point_multiply(k, _G)
        assert point is not None
        r = point[0] % _N
        if r == 0:
            digest = sha256(digest)
            continue
        s = (_inverse_mod(k, _N) * (z + r * private_key)) % _N
        if s == 0:
            digest = sha256(digest)
            continue
        # Enforce low-s form so signatures are unique.
        if s > _N // 2:
            s = _N - s
        return (r, s)


def verify(public_key: Tuple[int, int], message: bytes, signature: Tuple[int, int]) -> bool:
    """Verify an ECDSA signature over SHA-256(message)."""
    try:
        r, s = signature
    except (TypeError, ValueError):
        return False
    if not (1 <= r < _N and 1 <= s < _N):
        return False
    z = int.from_bytes(sha256(message), "big")
    w = _inverse_mod(s, _N)
    u1 = (z * w) % _N
    u2 = (r * w) % _N
    point = _point_add(_point_multiply(u1, _G), _point_multiply(u2, public_key))
    if point is None:
        return False
    return point[0] % _N == r


def address_from_public_key(public_key: Tuple[int, int]) -> str:
    """Derive a 20-byte hex address from an uncompressed public key."""
    x, y = public_key
    payload = x.to_bytes(32, "big") + y.to_bytes(32, "big")
    return "0x" + sha256(payload)[-20:].hex()


@dataclass(frozen=True)
class KeyPair:
    """A secp256k1 key pair with its derived account address."""

    private_key: int
    public_key: Tuple[int, int]
    address: str

    @classmethod
    def generate(cls, seed: Optional[bytes] = None) -> "KeyPair":
        """Generate a key pair, optionally deterministically from *seed*."""
        if seed is None:
            import secrets

            private_key = secrets.randbelow(_N - 1) + 1
        else:
            private_key = (int.from_bytes(sha256(seed), "big") % (_N - 1)) + 1
        public_key = _point_multiply(private_key, _G)
        assert public_key is not None
        return cls(private_key=private_key, public_key=public_key, address=address_from_public_key(public_key))

    @classmethod
    def from_name(cls, name: str) -> "KeyPair":
        """Convenience constructor deriving a key pair from a human-readable name."""
        return cls.generate(seed=name.encode("utf-8"))

    def sign(self, message: bytes) -> Tuple[int, int]:
        """Sign *message* with this key pair's private key."""
        return sign(self.private_key, message)

    def verify(self, message: bytes, signature: Tuple[int, int]) -> bool:
        """Verify a signature allegedly produced by this key pair."""
        return verify(self.public_key, message, signature)
