"""Cryptographic primitives.

The chain needs three things: a collision-resistant hash (SHA-256), Merkle
roots over transactions and receipts, and digital signatures so that "methods
through which the state of smart contracts is changed can be invoked only by
signing transactions with auditable digital signatures" (paper, Section V-2).

Signatures are ECDSA over secp256k1 implemented in pure Python.  Nonces are
derived deterministically from the message and private key (in the spirit of
RFC 6979), so signing is reproducible and never leaks the key through a bad
RNG.

Two implementations coexist:

* the **reference** affine double-and-add path (``reference_sign`` /
  ``reference_verify``) — kept verbatim as the specification the fast path
  is pinned against;
* the **fast** path used by :func:`sign` / :func:`verify` — fixed-base
  precomputed tables and Shamir's trick from :mod:`repro.blockchain.fastec`,
  plus an LRU ``(public key, message digest, signature)`` verification cache
  and :func:`verify_batch`, which amortizes per-sender table construction
  across a whole block of signatures.

Both produce bit-identical signatures and verdicts (Hypothesis-pinned in
``tests/blockchain/test_bc_crypto_fast_property.py``).
"""

from __future__ import annotations

import hashlib
import hmac
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import SignatureError, ValidationError
from repro.blockchain import fastec

# secp256k1 domain parameters.
_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
_N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8
_G = (_GX, _GY)

assert (fastec.P, fastec.N, fastec.GX, fastec.GY) == (_P, _N, _GX, _GY)

Point = Optional[Tuple[int, int]]  # None is the point at infinity

# Bounded memo of verification verdicts keyed by (public key, message digest,
# r, s).  Monitoring rounds and chain replays re-verify the same signatures;
# the verdict for a given key/digest/signature triple never changes (a
# rotated key is a different cache key), so hits are always sound.
_VERIFY_CACHE: "OrderedDict[Tuple[Tuple[int, int], bytes, int, int], bool]" = OrderedDict()
# Sized so a full 10k-consumer scenario's seals + txs (several signed
# transactions per participant) fit without cycling; an LRU smaller than
# the working set misses on every lookup during replay.  Entries are a
# small key tuple + bool (~250 B), so the cap is ~30 MB.
_VERIFY_CACHE_LIMIT = 131072


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of *data*."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the hex SHA-256 digest of *data*."""
    return hashlib.sha256(data).hexdigest()


def merkle_root(leaves: Iterable[bytes]) -> str:
    """Compute the Merkle root (hex) of an ordered sequence of leaf payloads.

    Leaves are hashed individually; at odd levels the last node is duplicated
    (Bitcoin-style).  The root of an empty sequence is the hash of the empty
    string, which keeps empty blocks well-defined.
    """
    level: List[bytes] = [sha256(leaf) for leaf in leaves]
    if not level:
        return sha256_hex(b"")
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [sha256(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
    return level[0].hex()


def merkle_proof(leaves: List[bytes], index: int) -> List[Tuple[str, str]]:
    """Return the audit path for leaf *index* as (side, sibling-hash-hex) pairs."""
    if not 0 <= index < len(leaves):
        raise ValidationError("leaf index out of range")
    level = [sha256(leaf) for leaf in leaves]
    path: List[Tuple[str, str]] = []
    position = index
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        sibling_index = position + 1 if position % 2 == 0 else position - 1
        side = "right" if position % 2 == 0 else "left"
        path.append((side, level[sibling_index].hex()))
        level = [sha256(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
        position //= 2
    return path


def verify_merkle_proof(leaf: bytes, path: List[Tuple[str, str]], root: str) -> bool:
    """Check that *leaf* is included under *root* following the audit *path*."""
    current = sha256(leaf)
    for side, sibling_hex in path:
        sibling = bytes.fromhex(sibling_hex)
        current = sha256(current + sibling) if side == "right" else sha256(sibling + current)
    return current.hex() == root


# -- elliptic-curve arithmetic -------------------------------------------------


def _inverse_mod(value: int, modulus: int) -> int:
    return pow(value, -1, modulus)


def _point_add(a: Point, b: Point) -> Point:
    if a is None:
        return b
    if b is None:
        return a
    ax, ay = a
    bx, by = b
    if ax == bx and (ay + by) % _P == 0:
        return None
    if a == b:
        slope = (3 * ax * ax) * _inverse_mod(2 * ay, _P) % _P
    else:
        slope = (by - ay) * _inverse_mod(bx - ax, _P) % _P
    x = (slope * slope - ax - bx) % _P
    y = (slope * (ax - x) - ay) % _P
    return (x, y)


def _point_multiply(k: int, point: Point) -> Point:
    if k % _N == 0 or point is None:
        return None
    result: Point = None
    addend = point
    while k:
        if k & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        k >>= 1
    return result


# -- keys and signatures -------------------------------------------------------


def _deterministic_nonce(private_key: int, digest: bytes) -> int:
    """Derive a deterministic nonce from the key and message digest."""
    key_bytes = private_key.to_bytes(32, "big")
    counter = 0
    while True:
        material = hmac.new(key_bytes, digest + counter.to_bytes(4, "big"), hashlib.sha256).digest()
        nonce = int.from_bytes(material, "big") % _N
        if nonce != 0:
            return nonce
        counter += 1


def _sign_with(multiply_g, private_key: int, message: bytes) -> Tuple[int, int]:
    """The ECDSA signing loop, parameterized over the k·G implementation."""
    if not 1 <= private_key < _N:
        raise SignatureError("private key out of range")
    digest = sha256(message)
    z = int.from_bytes(digest, "big")
    while True:
        k = _deterministic_nonce(private_key, digest)
        point = multiply_g(k)
        assert point is not None
        r = point[0] % _N
        if r == 0:
            digest = sha256(digest)
            continue
        s = (_inverse_mod(k, _N) * (z + r * private_key)) % _N
        if s == 0:
            digest = sha256(digest)
            continue
        # Enforce low-s form so signatures are unique.
        if s > _N // 2:
            s = _N - s
        return (r, s)


def reference_sign(private_key: int, message: bytes) -> Tuple[int, int]:
    """Sign via the affine double-and-add reference path (the specification)."""
    return _sign_with(lambda k: _point_multiply(k, _G), private_key, message)


def sign(private_key: int, message: bytes) -> Tuple[int, int]:
    """Produce an ECDSA signature (r, s) over SHA-256(message).

    Uses the fixed-base precomputed tables; bit-identical to
    :func:`reference_sign` (same deterministic nonce, same low-s form).
    """
    return _sign_with(fastec.mul_g, private_key, message)


def reference_verify(public_key: Tuple[int, int], message: bytes,
                     signature: Tuple[int, int]) -> bool:
    """Verify via the affine double-and-add reference path."""
    try:
        r, s = signature
    except (TypeError, ValueError):
        return False
    if not (1 <= r < _N and 1 <= s < _N):
        return False
    z = int.from_bytes(sha256(message), "big")
    w = _inverse_mod(s, _N)
    u1 = (z * w) % _N
    u2 = (r * w) % _N
    point = _point_add(_point_multiply(u1, _G), _point_multiply(u2, public_key))
    if point is None:
        return False
    return point[0] % _N == r


def _verify_fast(public_key: Tuple[int, int], digest: bytes, r: int, s: int,
                 point_table: Optional[list] = None) -> bool:
    """Shamir-ladder verification over a precomputed message digest."""
    z = int.from_bytes(digest, "big")
    w = _inverse_mod(s, _N)
    point = fastec.shamir_mul(z * w % _N, r * w % _N, public_key, point_table)
    if point is None:
        return False
    return point[0] % _N == r


def _cache_verdict(key, verdict: bool) -> bool:
    _VERIFY_CACHE[key] = verdict
    if len(_VERIFY_CACHE) > _VERIFY_CACHE_LIMIT:
        _VERIFY_CACHE.popitem(last=False)
    return verdict


def _checked_signature(public_key, signature) -> Optional[Tuple[int, int]]:
    """Shared precheck of both verify paths: well-formed (r, s) in range,
    public key on the curve.  Returns the scalars, or None to reject."""
    try:
        r, s = signature
    except (TypeError, ValueError):
        return None
    if not (isinstance(r, int) and isinstance(s, int)):
        return None
    if not (1 <= r < _N and 1 <= s < _N):
        return None
    if not fastec.is_on_curve(public_key):
        return None
    return (r, s)


def _verify_cached(public_key: Tuple[int, int], message: bytes, r: int, s: int,
                   point_table: Optional[list] = None) -> bool:
    key = (tuple(public_key), sha256(message), r, s)
    cached = _VERIFY_CACHE.get(key)
    if cached is not None:
        _VERIFY_CACHE.move_to_end(key)
        return cached
    return _cache_verdict(key, _verify_fast(key[0], key[1], r, s, point_table))


def verify(public_key: Tuple[int, int], message: bytes, signature: Tuple[int, int]) -> bool:
    """Verify an ECDSA signature over SHA-256(message).

    Fast path: one Shamir double-scalar ladder with cached per-key tables,
    behind an LRU verdict cache keyed by (public key, digest, signature) —
    so re-verifying a signature (chain replay, repeated monitoring rounds)
    is a dictionary hit.  Verdicts are identical to :func:`reference_verify`
    for any on-curve public key; off-curve keys are rejected outright.
    """
    scalars = _checked_signature(public_key, signature)
    if scalars is None:
        return False
    return _verify_cached(public_key, message, *scalars)


def verify_batch(items: Sequence[Tuple[Tuple[int, int], bytes, Tuple[int, int]]]) -> List[bool]:
    """Verify many ``(public key, message, signature)`` triples in one pass.

    The pass is amortized, not just looped: repeated triples are served from
    the verdict cache without touching the curve at all, and the width-5
    wNAF table of a distinct public key is built only when at least one of
    its triples actually misses (and is kept in the LRU for the next block).
    A block carrying K signatures from M senders therefore costs M table
    builds plus K Shamir ladders on first sight, and K dictionary hits on
    replay.
    """
    results: List[bool] = []
    for public_key, message, signature in items:
        scalars = _checked_signature(public_key, signature)
        if scalars is None:
            results.append(False)
            continue
        point = tuple(public_key)
        r, s = scalars
        key = (point, sha256(message), r, s)
        cached = _VERIFY_CACHE.get(key)
        if cached is not None:
            _VERIFY_CACHE.move_to_end(key)
            results.append(cached)
            continue
        table = fastec.table_for_pubkey(point)
        results.append(_cache_verdict(key, _verify_fast(point, key[1], r, s, table)))
    return results


def clear_signature_caches() -> None:
    """Reset the verdict cache and every precomputed-table cache."""
    _VERIFY_CACHE.clear()
    fastec.clear_tables()


def address_from_public_key(public_key: Tuple[int, int]) -> str:
    """Derive a 20-byte hex address from an uncompressed public key."""
    x, y = public_key
    payload = x.to_bytes(32, "big") + y.to_bytes(32, "big")
    return "0x" + sha256(payload)[-20:].hex()


@dataclass(frozen=True)
class KeyPair:
    """A secp256k1 key pair with its derived account address."""

    private_key: int
    public_key: Tuple[int, int]
    address: str

    @classmethod
    def generate(cls, seed: Optional[bytes] = None) -> "KeyPair":
        """Generate a key pair, optionally deterministically from *seed*."""
        if seed is None:
            import secrets

            private_key = secrets.randbelow(_N - 1) + 1
        else:
            private_key = (int.from_bytes(sha256(seed), "big") % (_N - 1)) + 1
        public_key = fastec.mul_g(private_key)
        assert public_key is not None
        return cls(private_key=private_key, public_key=public_key, address=address_from_public_key(public_key))

    @classmethod
    def from_name(cls, name: str) -> "KeyPair":
        """Convenience constructor deriving a key pair from a human-readable name."""
        return cls.generate(seed=name.encode("utf-8"))

    def sign(self, message: bytes) -> Tuple[int, int]:
        """Sign *message* with this key pair's private key."""
        return sign(self.private_key, message)

    def verify(self, message: bytes, signature: Tuple[int, int]) -> bool:
        """Verify a signature allegedly produced by this key pair."""
        return verify(self.public_key, message, signature)
