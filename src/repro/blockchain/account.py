"""Externally owned accounts and contract accounts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import InsufficientFundsError, ValidationError


@dataclass
class Account:
    """State of one account in the world state.

    Externally owned accounts have ``contract_class`` set to ``None``;
    contract accounts record the registered class name that the VM
    instantiates when the contract is called.
    """

    address: str
    balance: int = 0
    nonce: int = 0
    contract_class: Optional[str] = None

    def __post_init__(self):
        if not self.address or not self.address.startswith("0x"):
            raise ValidationError("account address must be a 0x-prefixed hex string")
        if self.balance < 0:
            raise ValidationError("balance must be non-negative")
        if self.nonce < 0:
            raise ValidationError("nonce must be non-negative")

    @property
    def is_contract(self) -> bool:
        return self.contract_class is not None

    def credit(self, amount: int) -> None:
        """Add *amount* (in the chain's base unit) to the balance."""
        if amount < 0:
            raise ValidationError("credit amount must be non-negative")
        self.balance += amount

    def debit(self, amount: int) -> None:
        """Remove *amount* from the balance, failing on insufficient funds."""
        if amount < 0:
            raise ValidationError("debit amount must be non-negative")
        if amount > self.balance:
            raise InsufficientFundsError(
                f"account {self.address} holds {self.balance} but {amount} is required"
            )
        self.balance -= amount

    def bump_nonce(self) -> int:
        """Increment and return the account nonce (one per accepted transaction)."""
        self.nonce += 1
        return self.nonce

    def to_dict(self) -> dict:
        return {
            "address": self.address,
            "balance": self.balance,
            "nonce": self.nonce,
            "contractClass": self.contract_class,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Account":
        return cls(
            address=data["address"],
            balance=data.get("balance", 0),
            nonce=data.get("nonce", 0),
            contract_class=data.get("contractClass"),
        )
