"""World state: accounts, contract storage, change journal, and cached roots.

The world state is the mapping every full node maintains and agrees on via
consensus.  Contract storage is a per-address dictionary of JSON-serializable
values; a state root (hash committing to every account and storage slot) is
included in every block header so tampering with state is detectable.

Three properties keep the hot paths independent of the world size:

* **Change journal** — every mutation made through the :class:`WorldState`
  API records an undo entry while a frame opened by :meth:`begin` is active.
  A failed transaction calls :meth:`rollback` and reverts in O(touched
  slots); the seed implementation deep-copied the entire state per
  transaction instead.
* **Per-entry slot operations** — :meth:`storage_read_entry`,
  :meth:`storage_write_entry`, :meth:`storage_delete_entry`, and
  :meth:`storage_append` touch a single entry of a dict- or list-valued
  slot.  They copy and journal O(one entry), so contracts that keep an
  index in one slot (``pending requests``, ``round responses``) pay for the
  entry they touch, not for the whole collection.
* **Incremental state root** — :meth:`state_root` keeps a digest per
  *storage slot* plus a per-account commutative accumulator over those slot
  digests, and a second accumulator over the account digests.  Mutations
  mark (account, slot) pairs dirty; recomputing the root only re-hashes the
  dirty slots, so producing a block costs O(slots touched since the last
  block), not O(world) and not O(an account's whole storage).  Under the
  binary scheme, dict- and list-valued slots additionally keep one leaf
  digest per entry, so an entry write re-hashes one leaf rather than
  re-encoding the whole collection — on-chain indexes with thousands of
  entries (subscriber maps, evidence logs, round responses) stay O(1) to
  update.  Repeated calls with no intervening mutation return the cached
  root string without any hashing at all.

Storage values have **value semantics**: reads return structural copies and
writes store structural copies.  Contract code therefore cannot alias the
canonical storage and mutate it behind the journal's back — the only way to
change state is through the journaled API.
"""

from __future__ import annotations

import copy
import hashlib
import time
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.common.errors import NotFoundError, ValidationError
from repro.common.serialization import _coerce_json_key, binary_encode, stable_hash
from repro.blockchain.account import Account

_MISSING = object()

# The accumulators add digests modulo 2**256.  Addition is commutative, which
# is what makes the root incrementally maintainable: replacing one slot's
# digest subtracts the old leaf and adds the new one without touching the
# rest of the world.
#
# Trade-off: a commutative sum is NOT collision-resistant against an
# adversary who controls account contents (a generalized-birthday / k-sum
# search can find digest deltas summing to zero well below 2**128 effort).
# For this simulation the root is a cheap integrity commitment, not a
# cryptographic accumulator; full semantic tamper-evidence comes from
# Blockchain.verify_chain(replay=True), which re-executes every transaction
# and does not rely on root collision resistance.  A production chain would
# use a Merkle trie here.
_ROOT_MODULUS = 1 << 256

# Root-scheme versions.  Scheme 1 is the original stable_hash(dict) leaf
# format (canonical JSON + SHA-256 per slot); scheme 2 hashes the same
# logical content through the binary length-prefixed encoding, which skips
# JSON string formatting on the hot path.  Persisted chains record their
# scheme in the store manifest (missing key = 1), so old stores keep
# replaying and old snapshots keep loading byte-for-byte; fresh chains
# default to scheme 2.
ROOT_SCHEME_JSON = 1
ROOT_SCHEME_BINARY = 2
DEFAULT_ROOT_SCHEME = ROOT_SCHEME_BINARY
_ROOT_SCHEMES = (ROOT_SCHEME_JSON, ROOT_SCHEME_BINARY)


def slot_digest_v1(key: str, value: Any) -> int:
    """Scheme-1 slot leaf: SHA-256 over the canonical-JSON wrapper dict."""
    return int(stable_hash({"key": key, "value": value}), 16)


def slot_preimage_v2(key: str, value: Any) -> bytes:
    """Scheme-2 slot leaf preimage: domain tag + binary key/value encodings.

    Both encodings are self-delimiting, so the concatenation is injective:
    no two distinct (key, value) pairs share a preimage (pinned by a
    Hypothesis property in the test suite).
    """
    return b"slot\x00" + binary_encode(key) + binary_encode(value)


_MAP_SLOT_TAG = b"mapslot\x00"
_LIST_SLOT_TAG = b"listslot\x00"


def entry_digest_v2(entry_key: Any, value: Any) -> int:
    """Scheme-2 leaf for one entry of a dict-valued slot.

    The entry key is coerced the way a JSON object key would be
    (``_coerce_json_key``), so a slot that serializes identically through a
    snapshot round trip — where all object keys become strings — also roots
    identically before and after the trip.
    """
    preimage = (b"entry\x00" + binary_encode(_coerce_json_key(entry_key))
                + binary_encode(value))
    return int.from_bytes(hashlib.sha256(preimage).digest(), "big")


def item_digest_v2(index: int, value: Any) -> int:
    """Scheme-2 leaf for one element of a list-valued slot.

    The element's position is part of the preimage, so the commutative sum
    over item digests still commits to the order of the list.
    """
    preimage = b"item\x00" + index.to_bytes(8, "big") + binary_encode(value)
    return int.from_bytes(hashlib.sha256(preimage).digest(), "big")


def collection_digest_v2(key: str, count: int, acc: int, tag: bytes) -> int:
    """Scheme-2 slot digest for a collection: domain tag, key, size, leaf sum."""
    preimage = (tag + binary_encode(key) + count.to_bytes(8, "big")
                + (acc % _ROOT_MODULUS).to_bytes(32, "big"))
    return int.from_bytes(hashlib.sha256(preimage).digest(), "big")


def slot_digest_v2(key: str, value: Any) -> int:
    """Scheme-2 slot leaf: SHA-256 over the binary preimage.

    Dict- and list-valued slots hash as a size-tagged commutative sum of
    per-entry leaves rather than one monolithic encoding.  The digest is
    the same either way a caller computes it, but the per-entry form is
    what lets :meth:`WorldState.state_root` re-hash only the entries
    touched by :meth:`~WorldState.storage_write_entry` /
    :meth:`~WorldState.storage_append` — without it, every append to an
    on-chain index re-encodes the whole collection and population-scale
    rounds go quadratic in the number of consumers.
    """
    if isinstance(value, dict):
        acc = sum(entry_digest_v2(k, v) for k, v in value.items()) % _ROOT_MODULUS
        return collection_digest_v2(key, len(value), acc, _MAP_SLOT_TAG)
    if isinstance(value, (list, tuple)):
        acc = sum(item_digest_v2(i, v) for i, v in enumerate(value)) % _ROOT_MODULUS
        return collection_digest_v2(key, len(value), acc, _LIST_SLOT_TAG)
    return int.from_bytes(hashlib.sha256(slot_preimage_v2(key, value)).digest(), "big")


_SLOT_DIGESTS = {
    ROOT_SCHEME_JSON: slot_digest_v1,
    ROOT_SCHEME_BINARY: slot_digest_v2,
}


def copy_jsonlike(value: Any) -> Any:
    """Structural copy of a JSON-like value (dicts, lists, tuples, scalars)."""
    if isinstance(value, dict):
        return {key: copy_jsonlike(item) for key, item in value.items()}
    if isinstance(value, list):
        return [copy_jsonlike(item) for item in value]
    if isinstance(value, tuple):
        return tuple(copy_jsonlike(item) for item in value)
    return value


class WorldState:
    """Accounts, balances, nonces, and contract storage."""

    def __init__(self, root_scheme: int = DEFAULT_ROOT_SCHEME):
        if root_scheme not in _ROOT_SCHEMES:
            raise ValidationError(f"unknown state-root scheme {root_scheme!r}")
        self.root_scheme = root_scheme
        # Bound per instance so the per-slot hot path is branch-free.
        self._slot_digest = _SLOT_DIGESTS[root_scheme]
        # Wall-clock seconds spent recomputing roots (cache hits cost nothing
        # and are not counted).  Benchmarks read this as `root_hash_time`.
        self.root_hash_seconds: float = 0.0
        self._accounts: Dict[str, Account] = {}
        self._storage: Dict[str, Dict[str, Any]] = {}
        # Undo log: tuples describing how to revert each mutation, recorded
        # only while at least one frame is open.
        self._journal: List[Tuple] = []
        # Stack of journal lengths, one entry per open frame.
        self._frames: List[int] = []
        # Addresses whose cached digest is stale.
        self._dirty: Set[str] = set()
        # address -> {slot key -> dirty entries}.  A slot mapped to None is
        # wholly dirty (rewritten, deleted, or type-changed); a slot mapped
        # to a set is dirty only in those entry keys / list indices.  An
        # address dirty with no entry here has only account-level changes
        # (balance/nonce); the "recompute every slot" path triggers when the
        # address is missing from _slot_digests (fresh account, or after
        # restore() cleared the caches).
        self._dirty_slots: Dict[str, Dict[str, Optional[Set]]] = {}
        # address -> slot key -> integer digest of (key, value).
        self._slot_digests: Dict[str, Dict[str, int]] = {}
        # Scheme-2 only: address -> slot key -> [leaf sum, {entry id ->
        # leaf digest}] for dict-/list-valued slots, so an entry write
        # re-hashes one leaf instead of the whole collection.
        self._entry_digests: Dict[str, Dict[str, list]] = {}
        # address -> sum of its slot digests, mod _ROOT_MODULUS.
        self._storage_acc: Dict[str, int] = {}
        # address -> integer digest of (account record, storage accumulator).
        self._digests: Dict[str, int] = {}
        # Sum of the digest integers of every account, mod _ROOT_MODULUS.
        self._root_acc: int = 0
        # Cached state_root() string; None whenever any account is dirty.
        self._root_value: Optional[str] = None

    # -- journal ------------------------------------------------------------

    def begin(self) -> int:
        """Open a journal frame; returns the new frame depth."""
        self._frames.append(len(self._journal))
        return len(self._frames)

    def commit(self) -> None:
        """Close the innermost frame, keeping its changes.

        Changes merge into the enclosing frame; committing the outermost
        frame discards the undo entries (they can no longer be rolled back).
        """
        if not self._frames:
            raise ValidationError("commit() without a matching begin()")
        self._frames.pop()
        if not self._frames:
            self._journal.clear()

    def commit_oldest(self) -> None:
        """Finalize the *outermost* open frame, keeping its changes.

        Used by the chain's bounded-reorg window: one journal frame stays
        open per non-final canonical block, and when a block sinks past the
        reorg horizon its frame — the bottom of the stack — is finalized.
        The undo entries belonging to that frame are discarded and the marks
        of the remaining frames shift down accordingly.
        """
        if not self._frames:
            raise ValidationError("commit_oldest() without a matching begin()")
        self._frames.pop(0)
        if not self._frames:
            self._journal.clear()
            return
        drop = self._frames[0]
        if drop:
            del self._journal[:drop]
            self._frames = [mark - drop for mark in self._frames]

    def rollback(self) -> None:
        """Revert every change made since the innermost :meth:`begin`."""
        if not self._frames:
            raise ValidationError("rollback() without a matching begin()")
        mark = self._frames.pop()
        while len(self._journal) > mark:
            entry = self._journal.pop()
            kind = entry[0]
            address = entry[1]
            if kind == "create":
                del self._accounts[address]
                self._storage.pop(address, None)
                self._touch(address)
            elif kind == "balance":
                self._accounts[address].balance = entry[2]
                self._touch(address)
            elif kind == "nonce":
                self._accounts[address].nonce = entry[2]
                self._touch(address)
            elif kind == "slot":
                _, _, key, old = entry
                storage = self._storage.get(address)
                if storage is not None:
                    if old is _MISSING:
                        storage.pop(key, None)
                    else:
                        storage[key] = old
                self._touch(address, key)
            elif kind == "entry":
                _, _, key, entry_key, old = entry
                storage = self._storage.get(address)
                if storage is not None and isinstance(storage.get(key), dict):
                    if old is _MISSING:
                        storage[key].pop(entry_key, None)
                    else:
                        storage[key][entry_key] = old
                self._touch_entry(address, key, entry_key)
            elif kind == "pop":
                _, _, key = entry
                storage = self._storage.get(address)
                if storage is not None and isinstance(storage.get(key), list) and storage[key]:
                    storage[key].pop()
                    self._touch_entry(address, key, len(storage[key]))
                else:
                    self._touch(address, key)
            elif kind == "item":
                _, _, key, index, old = entry
                storage = self._storage.get(address)
                if storage is not None and isinstance(storage.get(key), list) \
                        and 0 <= index < len(storage[key]):
                    storage[key][index] = old
                self._touch_entry(address, key, index)

    @property
    def journal_depth(self) -> int:
        """Number of currently open journal frames."""
        return len(self._frames)

    def _record(self, entry: Tuple) -> None:
        if self._frames:
            self._journal.append(entry)

    def _touch(self, address: str, key: Optional[str] = None) -> None:
        self._dirty.add(address)
        if key is not None:
            if address in self._dirty_slots:
                self._dirty_slots[address][key] = None
            else:
                self._dirty_slots[address] = {key: None}
            # A whole-slot write may change the value's type or replace the
            # collection outright — the per-entry cache no longer describes
            # the stored value.
            entries = self._entry_digests.get(address)
            if entries is not None:
                entries.pop(key, None)
        self._root_value = None

    def _touch_entry(self, address: str, key: str, entry_id: Any) -> None:
        """Mark one entry of a collection-valued slot dirty.

        Folds into a whole-slot mark when the slot is already wholly dirty;
        otherwise the next root recomputation re-hashes only the touched
        entries of the slot.
        """
        self._dirty.add(address)
        slots = self._dirty_slots.setdefault(address, {})
        if key in slots:
            ids = slots[key]
            if ids is not None:
                ids.add(entry_id)
        else:
            slots[key] = {entry_id}
        self._root_value = None

    # -- accounts -----------------------------------------------------------

    def create_account(self, address: str, balance: int = 0,
                       contract_class: Optional[str] = None) -> Account:
        """Create an account; raises if the address already exists."""
        if address in self._accounts:
            raise ValidationError(f"account {address} already exists")
        account = Account(address=address, balance=balance, contract_class=contract_class)
        self._record(("create", address))
        self._accounts[address] = account
        if contract_class is not None:
            self._storage[address] = {}
        self._touch(address)
        return account

    def get_or_create_account(self, address: str) -> Account:
        """Return the account at *address*, creating an empty one if needed."""
        if address not in self._accounts:
            return self.create_account(address)
        return self._accounts[address]

    def get_account(self, address: str) -> Account:
        """Return the account at *address* or raise :class:`NotFoundError`.

        The returned object is the live account record; mutate it only
        through the journaled :meth:`credit` / :meth:`debit` /
        :meth:`bump_nonce` / :meth:`set_balance` methods so rollback and the
        root cache stay correct.
        """
        if address not in self._accounts:
            raise NotFoundError(f"unknown account {address}")
        return self._accounts[address]

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def accounts(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def account_count(self) -> int:
        return len(self._accounts)

    def balance_of(self, address: str) -> int:
        """Return the balance of *address* (0 for unknown accounts)."""
        account = self._accounts.get(address)
        return account.balance if account else 0

    def credit(self, address: str, amount: int) -> None:
        """Add *amount* to the balance of *address* (journaled)."""
        account = self.get_or_create_account(address)
        self._record(("balance", address, account.balance))
        account.credit(amount)
        self._touch(address)

    def debit(self, address: str, amount: int) -> None:
        """Remove *amount* from the balance of *address* (journaled)."""
        account = self.get_account(address)
        self._record(("balance", address, account.balance))
        account.debit(amount)
        self._touch(address)

    def set_balance(self, address: str, balance: int) -> None:
        """Overwrite the balance of *address* (journaled)."""
        if balance < 0:
            raise ValidationError("balance must be non-negative")
        account = self.get_account(address)
        self._record(("balance", address, account.balance))
        account.balance = balance
        self._touch(address)

    def bump_nonce(self, address: str) -> int:
        """Increment and return the nonce of *address* (journaled)."""
        account = self.get_account(address)
        self._record(("nonce", address, account.nonce))
        result = account.bump_nonce()
        self._touch(address)
        return result

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move *amount* from *sender* to *recipient*."""
        if amount < 0:
            raise ValidationError("transfer amount must be non-negative")
        if amount == 0:
            return
        self.debit(sender, amount)
        self.credit(recipient, amount)

    # -- contract storage -----------------------------------------------------

    def _contract_storage(self, address: str) -> Dict[str, Any]:
        """Return the live storage dictionary of contract *address*."""
        account = self.get_account(address)
        if not account.is_contract:
            raise ValidationError(f"account {address} is not a contract")
        return self._storage.setdefault(address, {})

    def storage_of(self, address: str) -> Dict[str, Any]:
        """Return a structural copy of the storage of contract *address*."""
        return copy_jsonlike(self._contract_storage(address))

    def storage_keys(self, address: str) -> List[str]:
        """Return the slot keys of contract *address* without copying values."""
        return list(self._contract_storage(address).keys())

    def storage_read(self, address: str, key: str, default: Any = None) -> Any:
        """Read a storage slot; the returned value is a structural copy."""
        storage = self._contract_storage(address)
        if key not in storage:
            return default
        return copy_jsonlike(storage[key])

    def storage_write(self, address: str, key: str, value: Any) -> bool:
        """Write a storage slot; returns True when the slot was previously empty."""
        storage = self._contract_storage(address)
        is_new = key not in storage
        self._record(("slot", address, key, _MISSING if is_new else storage[key]))
        storage[key] = copy_jsonlike(value)
        self._touch(address, key)
        return is_new

    def storage_delete(self, address: str, key: str) -> bool:
        """Delete a storage slot; returns True when the slot existed."""
        storage = self._contract_storage(address)
        if key in storage:
            self._record(("slot", address, key, storage[key]))
            del storage[key]
            self._touch(address, key)
            return True
        return False

    # -- per-entry slot operations ---------------------------------------------

    def _mapping_slot(self, address: str, key: str, create: bool) -> Optional[Dict[str, Any]]:
        """Return the live dict behind a mapping-valued slot (or None)."""
        storage = self._contract_storage(address)
        if key not in storage:
            if not create:
                return None
            self._record(("slot", address, key, _MISSING))
            storage[key] = {}
        slot = storage[key]
        if not isinstance(slot, dict):
            raise ValidationError(f"storage slot {key!r} of {address} does not hold a mapping")
        return slot

    def storage_read_entry(self, address: str, key: str, entry_key: str,
                           default: Any = None) -> Any:
        """Read one entry of a dict-valued slot; copies O(that entry)."""
        slot = self._mapping_slot(address, key, create=False)
        if slot is None or entry_key not in slot:
            return default
        return copy_jsonlike(slot[entry_key])

    def storage_has_entry(self, address: str, key: str, entry_key: str) -> bool:
        """Membership test on a dict-valued slot without copying any value."""
        slot = self._mapping_slot(address, key, create=False)
        return slot is not None and entry_key in slot

    def storage_entry_count(self, address: str, key: str) -> int:
        """Number of entries of a dict- or list-valued slot (0 when absent)."""
        storage = self._contract_storage(address)
        slot = storage.get(key)
        if slot is None:
            return 0
        if not isinstance(slot, (dict, list)):
            raise ValidationError(f"storage slot {key!r} of {address} is not a collection")
        return len(slot)

    def storage_write_entry(self, address: str, key: str, entry_key: str, value: Any) -> bool:
        """Write one entry of a dict-valued slot; returns True when the entry is new.

        Journals only the previous entry value, so rollback and the root
        cache cost O(one entry) instead of O(the whole slot).
        """
        slot = self._mapping_slot(address, key, create=True)
        assert slot is not None
        is_new = entry_key not in slot
        self._record(("entry", address, key, entry_key, _MISSING if is_new else slot[entry_key]))
        slot[entry_key] = copy_jsonlike(value)
        self._touch_entry(address, key, entry_key)
        return is_new

    def storage_delete_entry(self, address: str, key: str, entry_key: str) -> bool:
        """Delete one entry of a dict-valued slot; returns True when it existed."""
        slot = self._mapping_slot(address, key, create=False)
        if slot is None or entry_key not in slot:
            return False
        self._record(("entry", address, key, entry_key, slot[entry_key]))
        del slot[entry_key]
        self._touch_entry(address, key, entry_key)
        return True

    def storage_read_item(self, address: str, key: str, index: int, default: Any = None) -> Any:
        """Read one element of a list-valued slot; copies O(that element)."""
        storage = self._contract_storage(address)
        slot = storage.get(key)
        if slot is None:
            return default
        if not isinstance(slot, list):
            raise ValidationError(f"storage slot {key!r} of {address} does not hold a list")
        if not 0 <= index < len(slot):
            return default
        return copy_jsonlike(slot[index])

    def storage_write_item(self, address: str, key: str, index: int, value: Any) -> None:
        """Overwrite one element of a list-valued slot (journaled O(one element)).

        The index must address an existing element — list slots only grow
        through :meth:`storage_append`, so an item write never changes the
        slot's length and its undo entry restores exactly one element.
        """
        storage = self._contract_storage(address)
        slot = storage.get(key)
        if not isinstance(slot, list):
            raise ValidationError(f"storage slot {key!r} of {address} does not hold a list")
        if not 0 <= index < len(slot):
            raise ValidationError(
                f"list slot {key!r} of {address} has no index {index} (length {len(slot)})"
            )
        self._record(("item", address, key, index, slot[index]))
        slot[index] = copy_jsonlike(value)
        self._touch_entry(address, key, index)

    def storage_append(self, address: str, key: str, value: Any) -> Tuple[int, bool]:
        """Append to a list-valued slot; returns ``(new length, slot was new)``.

        The undo entry is a single "pop", so appending to a long on-chain
        list never copies or journals the existing elements.
        """
        storage = self._contract_storage(address)
        is_new_slot = key not in storage
        if is_new_slot:
            self._record(("slot", address, key, _MISSING))
            storage[key] = []
        slot = storage[key]
        if not isinstance(slot, list):
            raise ValidationError(f"storage slot {key!r} of {address} does not hold a list")
        self._record(("pop", address, key))
        slot.append(copy_jsonlike(value))
        self._touch_entry(address, key, len(slot) - 1)
        return len(slot), is_new_slot

    # -- snapshots and roots ----------------------------------------------------

    def snapshot(self) -> "WorldState":
        """Return a full deep copy of the state.

        Retained as a checkpoint utility for tools and tests; the
        per-transaction execution path uses the O(touched-slots) journal
        (:meth:`begin` / :meth:`commit` / :meth:`rollback`) instead.
        """
        clone = WorldState(root_scheme=self.root_scheme)
        clone._accounts = {addr: Account.from_dict(acc.to_dict()) for addr, acc in self._accounts.items()}
        clone._storage = copy.deepcopy(self._storage)
        clone._dirty = set(clone._accounts)
        return clone

    def restore(self, snapshot: "WorldState") -> None:
        """Restore this state to a previously taken *snapshot*.

        Discards any open journal frames.  When the snapshot's digest caches
        are warm and fully consistent (its root was computed and nothing was
        mutated since — true for a loader that just verified the snapshot's
        claimed root), the caches are adopted wholesale: the restored world
        answers :meth:`state_root` without re-hashing anything, and the first
        dirty write to an account re-hashes only that slot instead of the
        account's entire storage.  Otherwise every cached digest is
        invalidated and the next root call re-hashes the world.  Either way
        the snapshot's containers are aliased, not copied — the snapshot
        object is consumed.
        """
        self._accounts = snapshot._accounts
        self._storage = snapshot._storage
        self.root_scheme = snapshot.root_scheme
        self._slot_digest = _SLOT_DIGESTS[snapshot.root_scheme]
        self._journal.clear()
        self._frames.clear()
        if snapshot._root_value is not None and not snapshot._dirty:
            self._digests = snapshot._digests
            self._slot_digests = snapshot._slot_digests
            self._storage_acc = snapshot._storage_acc
            self._entry_digests = snapshot._entry_digests
            self._dirty_slots.clear()
            self._root_acc = snapshot._root_acc
            self._dirty = set()
            self._root_value = snapshot._root_value
            return
        self._digests.clear()
        self._slot_digests.clear()
        self._storage_acc.clear()
        self._entry_digests.clear()
        self._dirty_slots.clear()
        self._root_acc = 0
        self._dirty = set(self._accounts)
        self._root_value = None

    def _hash_slot(self, address: str, key: str, value: Any,
                   dirty_ids: Optional[Set]) -> int:
        """Digest one slot, maintaining the scheme-2 per-entry leaf cache.

        *dirty_ids* of ``None`` means the whole slot must be re-hashed (and
        the entry cache rebuilt); a set re-hashes only those entry keys /
        list indices against the cached leaves.  Scheme 1 and scalar values
        always hash whole — their digest is a single leaf.
        """
        if self.root_scheme < ROOT_SCHEME_BINARY:
            return self._slot_digest(key, value)
        is_mapping = isinstance(value, dict)
        if not is_mapping and not isinstance(value, (list, tuple)):
            self._entry_digests.get(address, {}).pop(key, None)
            return self._slot_digest(key, value)
        tag = _MAP_SLOT_TAG if is_mapping else _LIST_SLOT_TAG
        cache = self._entry_digests.setdefault(address, {})
        record = cache.get(key)
        if record is None or dirty_ids is None:
            if is_mapping:
                leaves = {k: entry_digest_v2(k, v) for k, v in value.items()}
            else:
                leaves = {i: item_digest_v2(i, v) for i, v in enumerate(value)}
            record = [sum(leaves.values()) % _ROOT_MODULUS, leaves]
            cache[key] = record
        else:
            acc, leaves = record
            for entry_id in dirty_ids:
                previous = leaves.pop(entry_id, None)
                if previous is not None:
                    acc = (acc - previous) % _ROOT_MODULUS
                if is_mapping:
                    present = entry_id in value
                else:
                    present = isinstance(entry_id, int) and 0 <= entry_id < len(value)
                if present:
                    digest = (entry_digest_v2(entry_id, value[entry_id]) if is_mapping
                              else item_digest_v2(entry_id, value[entry_id]))
                    leaves[entry_id] = digest
                    acc = (acc + digest) % _ROOT_MODULUS
            record[0] = acc
        return collection_digest_v2(key, len(value), record[0], tag)

    def _refresh_storage_accumulator(self, address: str) -> int:
        """Bring the per-slot digests of *address* up to date; return the sum."""
        storage = self._storage.get(address, {})
        slot_digests = self._slot_digests.get(address)
        if slot_digests is None:
            # No cache yet (fresh account or post-restore): hash every slot.
            # Any stale _storage_acc / entry-cache state is irrelevant here —
            # everything is rebuilt from scratch.
            self._entry_digests.pop(address, None)
            slot_digests = {
                key: self._hash_slot(address, key, value, None)
                for key, value in storage.items()
            }
            self._slot_digests[address] = slot_digests
            acc = sum(slot_digests.values()) % _ROOT_MODULUS
        else:
            acc = self._storage_acc.get(address, 0)
            dirty_slots = self._dirty_slots.get(address)
            for key, dirty_ids in (dirty_slots or {}).items():
                previous = slot_digests.pop(key, None)
                if previous is not None:
                    acc = (acc - previous) % _ROOT_MODULUS
                if key in storage:
                    digest = self._hash_slot(address, key, storage[key], dirty_ids)
                    slot_digests[key] = digest
                    acc = (acc + digest) % _ROOT_MODULUS
                else:
                    self._entry_digests.get(address, {}).pop(key, None)
        self._storage_acc[address] = acc
        self._dirty_slots.pop(address, None)
        return acc

    def _account_digest(self, address: str) -> int:
        """Digest committing to one account's record and storage."""
        account = self._accounts[address]
        storage_acc = self._refresh_storage_accumulator(address)
        if self.root_scheme >= ROOT_SCHEME_BINARY:
            preimage = (
                b"acct\x00"
                + binary_encode(address)
                + binary_encode(account.to_dict())
                + storage_acc.to_bytes(32, "big")
            )
            return int.from_bytes(hashlib.sha256(preimage).digest(), "big")
        return int(
            stable_hash(
                {
                    "address": address,
                    "account": account.to_dict(),
                    "storage": format(storage_acc, "064x"),
                }
            ),
            16,
        )

    def _drop_account_digest(self, address: str) -> None:
        previous = self._digests.pop(address, None)
        if previous is not None:
            self._root_acc = (self._root_acc - previous) % _ROOT_MODULUS
        self._slot_digests.pop(address, None)
        self._storage_acc.pop(address, None)
        self._entry_digests.pop(address, None)
        self._dirty_slots.pop(address, None)

    def state_root(self) -> str:
        """Return a hash committing to every account and storage slot.

        Only the slots and accounts touched since the previous call are
        re-hashed; with no intervening mutation the cached root string is
        returned as-is.
        """
        if self._root_value is None:
            started = time.perf_counter()
            for address in self._dirty:
                previous = self._digests.pop(address, None)
                if previous is not None:
                    self._root_acc = (self._root_acc - previous) % _ROOT_MODULUS
                if address in self._accounts:
                    digest = self._account_digest(address)
                    self._digests[address] = digest
                    self._root_acc = (self._root_acc + digest) % _ROOT_MODULUS
                else:
                    self._drop_account_digest(address)
            self._dirty.clear()
            if self.root_scheme >= ROOT_SCHEME_BINARY:
                preimage = (
                    b"ROOTv2"
                    + len(self._accounts).to_bytes(8, "big")
                    + self._root_acc.to_bytes(32, "big")
                )
                self._root_value = hashlib.sha256(preimage).hexdigest()
            else:
                self._root_value = stable_hash(
                    {
                        "accounts": len(self._accounts),
                        "digest": format(self._root_acc, "064x"),
                    }
                )
            self.root_hash_seconds += time.perf_counter() - started
        return self._root_value

    def to_dict(self) -> dict:
        return {
            "accounts": {addr: acc.to_dict() for addr, acc in self._accounts.items()},
            "storage": copy.deepcopy(self._storage),
        }

    @classmethod
    def from_dict(cls, data: dict,
                  root_scheme: int = DEFAULT_ROOT_SCHEME) -> "WorldState":
        """Rebuild a state from a :meth:`to_dict` dump (snapshot loading).

        The returned state has no open journal frames and every digest
        cache cold, so the first :meth:`state_root` call hashes the whole
        world — which is exactly what a snapshot loader wants: the rebuilt
        root can be compared against the snapshot's claimed root before the
        state is trusted.  Pass the scheme recorded next to the dump so the
        comparison uses the same leaf format the dump was rooted with.
        """
        state = cls(root_scheme=root_scheme)
        for address, record in data.get("accounts", {}).items():
            state._accounts[address] = Account.from_dict(record)
        state._storage = copy.deepcopy(data.get("storage", {}))
        state._dirty = set(state._accounts)
        return state

    # -- persisted digest sidecar ------------------------------------------------

    def digests_payload(self) -> dict:
        """Warm per-account slot digests, JSON-ready, for snapshot persistence.

        Call after :meth:`state_root` so the caches are complete.  A loader
        that restores the snapshot cross-checks these against the digests it
        recomputed during verification (:meth:`digests_match`); a mismatch
        means the sidecar does not describe the snapshotted state and the
        snapshot must not be trusted.
        """
        return {
            "rootScheme": self.root_scheme,
            "slotDigests": {
                address: {key: format(digest, "064x") for key, digest in slots.items()}
                for address, slots in self._slot_digests.items()
            },
        }

    def digests_match(self, payload: Optional[dict]) -> bool:
        """True when *payload* (a :meth:`digests_payload` dump) matches this state.

        Requires warm caches — call :meth:`state_root` first.  Accepts only
        payloads whose scheme and per-slot digests agree exactly with the
        recomputed ones (accounts without storage may be absent from either
        side's map as empty entries).
        """
        if not isinstance(payload, dict):
            return False
        if int(payload.get("rootScheme", ROOT_SCHEME_JSON)) != self.root_scheme:
            return False
        recorded = payload.get("slotDigests")
        if not isinstance(recorded, dict):
            return False
        mine = {addr: slots for addr, slots in self._slot_digests.items() if slots}
        theirs = {}
        for address, slots in recorded.items():
            if not isinstance(slots, dict):
                return False
            if slots:
                try:
                    theirs[address] = {key: int(digest, 16) for key, digest in slots.items()}
                except (TypeError, ValueError):
                    return False
        return mine == theirs
