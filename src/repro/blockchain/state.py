"""World state: accounts and contract storage.

The world state is the mapping every full node maintains and agrees on via
consensus.  Contract storage is a per-address dictionary of JSON-serializable
values; a state root (hash of the canonical serialization) is included in
every block header so tampering with state is detectable.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, Optional

from repro.common.errors import NotFoundError, ValidationError
from repro.common.serialization import stable_hash
from repro.blockchain.account import Account


class WorldState:
    """Accounts, balances, nonces, and contract storage."""

    def __init__(self):
        self._accounts: Dict[str, Account] = {}
        self._storage: Dict[str, Dict[str, Any]] = {}

    # -- accounts -----------------------------------------------------------

    def create_account(self, address: str, balance: int = 0,
                       contract_class: Optional[str] = None) -> Account:
        """Create an account; raises if the address already exists."""
        if address in self._accounts:
            raise ValidationError(f"account {address} already exists")
        account = Account(address=address, balance=balance, contract_class=contract_class)
        self._accounts[address] = account
        if contract_class is not None:
            self._storage[address] = {}
        return account

    def get_or_create_account(self, address: str) -> Account:
        """Return the account at *address*, creating an empty one if needed."""
        if address not in self._accounts:
            return self.create_account(address)
        return self._accounts[address]

    def get_account(self, address: str) -> Account:
        """Return the account at *address* or raise :class:`NotFoundError`."""
        if address not in self._accounts:
            raise NotFoundError(f"unknown account {address}")
        return self._accounts[address]

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def accounts(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def balance_of(self, address: str) -> int:
        """Return the balance of *address* (0 for unknown accounts)."""
        account = self._accounts.get(address)
        return account.balance if account else 0

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move *amount* from *sender* to *recipient*."""
        if amount < 0:
            raise ValidationError("transfer amount must be non-negative")
        if amount == 0:
            return
        self.get_account(sender).debit(amount)
        self.get_or_create_account(recipient).credit(amount)

    # -- contract storage -----------------------------------------------------

    def storage_of(self, address: str) -> Dict[str, Any]:
        """Return the mutable storage dictionary of contract *address*."""
        account = self.get_account(address)
        if not account.is_contract:
            raise ValidationError(f"account {address} is not a contract")
        return self._storage.setdefault(address, {})

    def storage_read(self, address: str, key: str, default: Any = None) -> Any:
        return self.storage_of(address).get(key, default)

    def storage_write(self, address: str, key: str, value: Any) -> bool:
        """Write a storage slot; returns True when the slot was previously empty."""
        storage = self.storage_of(address)
        is_new = key not in storage
        storage[key] = value
        return is_new

    def storage_delete(self, address: str, key: str) -> bool:
        """Delete a storage slot; returns True when the slot existed."""
        storage = self.storage_of(address)
        if key in storage:
            del storage[key]
            return True
        return False

    # -- snapshots and roots ----------------------------------------------------

    def snapshot(self) -> "WorldState":
        """Return a deep copy used to roll back failed transactions."""
        clone = WorldState()
        clone._accounts = {addr: Account.from_dict(acc.to_dict()) for addr, acc in self._accounts.items()}
        clone._storage = copy.deepcopy(self._storage)
        return clone

    def restore(self, snapshot: "WorldState") -> None:
        """Restore this state to a previously taken *snapshot*."""
        self._accounts = snapshot._accounts
        self._storage = snapshot._storage

    def state_root(self) -> str:
        """Return a hash committing to every account and storage slot."""
        payload = {
            "accounts": {addr: acc.to_dict() for addr, acc in sorted(self._accounts.items())},
            "storage": {addr: slots for addr, slots in sorted(self._storage.items())},
        }
        return stable_hash(payload)

    def to_dict(self) -> dict:
        return {
            "accounts": {addr: acc.to_dict() for addr, acc in self._accounts.items()},
            "storage": copy.deepcopy(self._storage),
        }
