"""World state: accounts, contract storage, change journal, and cached roots.

The world state is the mapping every full node maintains and agrees on via
consensus.  Contract storage is a per-address dictionary of JSON-serializable
values; a state root (hash committing to every account and storage slot) is
included in every block header so tampering with state is detectable.

Two properties keep the hot paths independent of the world size:

* **Change journal** — every mutation made through the :class:`WorldState`
  API records an undo entry while a frame opened by :meth:`begin` is active.
  A failed transaction calls :meth:`rollback` and reverts in O(touched
  slots); the seed implementation deep-copied the entire state per
  transaction instead.
* **Incremental state root** — :meth:`state_root` keeps a per-account digest
  cache and a commutative accumulator over those digests.  Mutations mark
  accounts dirty; recomputing the root only re-hashes the dirty accounts, so
  producing a block costs O(accounts touched since the last block), not
  O(world).  Repeated calls with no intervening mutation return the cached
  root string without any hashing at all.

Storage values have **value semantics**: reads return structural copies and
writes store structural copies.  Contract code therefore cannot alias the
canonical storage and mutate it behind the journal's back — the only way to
change state is through the journaled API.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import NotFoundError, ValidationError
from repro.common.serialization import stable_hash
from repro.blockchain.account import Account

_MISSING = object()

# The accumulator adds per-account digests modulo 2**256.  Addition is
# commutative, which is what makes the root incrementally maintainable:
# replacing one account's digest subtracts the old leaf and adds the new one
# without touching the rest of the world.
#
# Trade-off: a commutative sum is NOT collision-resistant against an
# adversary who controls account contents (a generalized-birthday / k-sum
# search can find digest deltas summing to zero well below 2**128 effort).
# For this simulation the root is a cheap integrity commitment, not a
# cryptographic accumulator; full semantic tamper-evidence comes from
# Blockchain.verify_chain(replay=True), which re-executes every transaction
# and does not rely on root collision resistance.  A production chain would
# use a Merkle trie here.
_ROOT_MODULUS = 1 << 256


def copy_jsonlike(value: Any) -> Any:
    """Structural copy of a JSON-like value (dicts, lists, tuples, scalars)."""
    if isinstance(value, dict):
        return {key: copy_jsonlike(item) for key, item in value.items()}
    if isinstance(value, list):
        return [copy_jsonlike(item) for item in value]
    if isinstance(value, tuple):
        return tuple(copy_jsonlike(item) for item in value)
    return value


class WorldState:
    """Accounts, balances, nonces, and contract storage."""

    def __init__(self):
        self._accounts: Dict[str, Account] = {}
        self._storage: Dict[str, Dict[str, Any]] = {}
        # Undo log: tuples describing how to revert each mutation, recorded
        # only while at least one frame is open.
        self._journal: List[Tuple] = []
        # Stack of journal lengths, one entry per open frame.
        self._frames: List[int] = []
        # Addresses whose cached digest is stale.
        self._dirty: set = set()
        # address -> hex digest of (account, storage), valid unless dirty.
        self._digests: Dict[str, str] = {}
        # Sum of the digest integers of every account, mod _ROOT_MODULUS.
        self._root_acc: int = 0
        # Cached state_root() string; None whenever any account is dirty.
        self._root_value: Optional[str] = None

    # -- journal ------------------------------------------------------------

    def begin(self) -> int:
        """Open a journal frame; returns the new frame depth."""
        self._frames.append(len(self._journal))
        return len(self._frames)

    def commit(self) -> None:
        """Close the innermost frame, keeping its changes.

        Changes merge into the enclosing frame; committing the outermost
        frame discards the undo entries (they can no longer be rolled back).
        """
        if not self._frames:
            raise ValidationError("commit() without a matching begin()")
        self._frames.pop()
        if not self._frames:
            self._journal.clear()

    def rollback(self) -> None:
        """Revert every change made since the innermost :meth:`begin`."""
        if not self._frames:
            raise ValidationError("rollback() without a matching begin()")
        mark = self._frames.pop()
        while len(self._journal) > mark:
            entry = self._journal.pop()
            kind = entry[0]
            if kind == "create":
                address = entry[1]
                del self._accounts[address]
                self._storage.pop(address, None)
            elif kind == "balance":
                self._accounts[entry[1]].balance = entry[2]
            elif kind == "nonce":
                self._accounts[entry[1]].nonce = entry[2]
            elif kind == "slot":
                _, address, key, old = entry
                storage = self._storage.get(address)
                if storage is not None:
                    if old is _MISSING:
                        storage.pop(key, None)
                    else:
                        storage[key] = old
            self._touch(entry[1])

    @property
    def journal_depth(self) -> int:
        """Number of currently open journal frames."""
        return len(self._frames)

    def _record(self, entry: Tuple) -> None:
        if self._frames:
            self._journal.append(entry)

    def _touch(self, address: str) -> None:
        self._dirty.add(address)
        self._root_value = None

    # -- accounts -----------------------------------------------------------

    def create_account(self, address: str, balance: int = 0,
                       contract_class: Optional[str] = None) -> Account:
        """Create an account; raises if the address already exists."""
        if address in self._accounts:
            raise ValidationError(f"account {address} already exists")
        account = Account(address=address, balance=balance, contract_class=contract_class)
        self._record(("create", address))
        self._accounts[address] = account
        if contract_class is not None:
            self._storage[address] = {}
        self._touch(address)
        return account

    def get_or_create_account(self, address: str) -> Account:
        """Return the account at *address*, creating an empty one if needed."""
        if address not in self._accounts:
            return self.create_account(address)
        return self._accounts[address]

    def get_account(self, address: str) -> Account:
        """Return the account at *address* or raise :class:`NotFoundError`.

        The returned object is the live account record; mutate it only
        through the journaled :meth:`credit` / :meth:`debit` /
        :meth:`bump_nonce` / :meth:`set_balance` methods so rollback and the
        root cache stay correct.
        """
        if address not in self._accounts:
            raise NotFoundError(f"unknown account {address}")
        return self._accounts[address]

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def accounts(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def account_count(self) -> int:
        return len(self._accounts)

    def balance_of(self, address: str) -> int:
        """Return the balance of *address* (0 for unknown accounts)."""
        account = self._accounts.get(address)
        return account.balance if account else 0

    def credit(self, address: str, amount: int) -> None:
        """Add *amount* to the balance of *address* (journaled)."""
        account = self.get_or_create_account(address)
        self._record(("balance", address, account.balance))
        account.credit(amount)
        self._touch(address)

    def debit(self, address: str, amount: int) -> None:
        """Remove *amount* from the balance of *address* (journaled)."""
        account = self.get_account(address)
        self._record(("balance", address, account.balance))
        account.debit(amount)
        self._touch(address)

    def set_balance(self, address: str, balance: int) -> None:
        """Overwrite the balance of *address* (journaled)."""
        if balance < 0:
            raise ValidationError("balance must be non-negative")
        account = self.get_account(address)
        self._record(("balance", address, account.balance))
        account.balance = balance
        self._touch(address)

    def bump_nonce(self, address: str) -> int:
        """Increment and return the nonce of *address* (journaled)."""
        account = self.get_account(address)
        self._record(("nonce", address, account.nonce))
        result = account.bump_nonce()
        self._touch(address)
        return result

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move *amount* from *sender* to *recipient*."""
        if amount < 0:
            raise ValidationError("transfer amount must be non-negative")
        if amount == 0:
            return
        self.debit(sender, amount)
        self.credit(recipient, amount)

    # -- contract storage -----------------------------------------------------

    def _contract_storage(self, address: str) -> Dict[str, Any]:
        """Return the live storage dictionary of contract *address*."""
        account = self.get_account(address)
        if not account.is_contract:
            raise ValidationError(f"account {address} is not a contract")
        return self._storage.setdefault(address, {})

    def storage_of(self, address: str) -> Dict[str, Any]:
        """Return a structural copy of the storage of contract *address*."""
        return copy_jsonlike(self._contract_storage(address))

    def storage_keys(self, address: str) -> List[str]:
        """Return the slot keys of contract *address* without copying values."""
        return list(self._contract_storage(address).keys())

    def storage_read(self, address: str, key: str, default: Any = None) -> Any:
        """Read a storage slot; the returned value is a structural copy."""
        storage = self._contract_storage(address)
        if key not in storage:
            return default
        return copy_jsonlike(storage[key])

    def storage_write(self, address: str, key: str, value: Any) -> bool:
        """Write a storage slot; returns True when the slot was previously empty."""
        storage = self._contract_storage(address)
        is_new = key not in storage
        self._record(("slot", address, key, _MISSING if is_new else storage[key]))
        storage[key] = copy_jsonlike(value)
        self._touch(address)
        return is_new

    def storage_delete(self, address: str, key: str) -> bool:
        """Delete a storage slot; returns True when the slot existed."""
        storage = self._contract_storage(address)
        if key in storage:
            self._record(("slot", address, key, storage[key]))
            del storage[key]
            self._touch(address)
            return True
        return False

    # -- snapshots and roots ----------------------------------------------------

    def snapshot(self) -> "WorldState":
        """Return a full deep copy of the state.

        Retained as a checkpoint utility for tools and tests; the
        per-transaction execution path uses the O(touched-slots) journal
        (:meth:`begin` / :meth:`commit` / :meth:`rollback`) instead.
        """
        clone = WorldState()
        clone._accounts = {addr: Account.from_dict(acc.to_dict()) for addr, acc in self._accounts.items()}
        clone._storage = copy.deepcopy(self._storage)
        clone._dirty = set(clone._accounts)
        return clone

    def restore(self, snapshot: "WorldState") -> None:
        """Restore this state to a previously taken *snapshot*.

        Discards any open journal frames and invalidates every cached
        digest (the snapshot's content replaces the world wholesale).
        """
        self._accounts = snapshot._accounts
        self._storage = snapshot._storage
        self._journal.clear()
        self._frames.clear()
        self._digests.clear()
        self._root_acc = 0
        self._dirty = set(self._accounts)
        self._root_value = None

    def _account_digest(self, address: str) -> str:
        """Digest committing to one account's record and storage."""
        account = self._accounts[address]
        return stable_hash(
            {
                "address": address,
                "account": account.to_dict(),
                "storage": self._storage.get(address),
            }
        )

    def state_root(self) -> str:
        """Return a hash committing to every account and storage slot.

        Only accounts touched since the previous call are re-hashed; with no
        intervening mutation the cached root string is returned as-is.
        """
        if self._root_value is None:
            for address in self._dirty:
                previous = self._digests.pop(address, None)
                if previous is not None:
                    self._root_acc = (self._root_acc - int(previous, 16)) % _ROOT_MODULUS
                if address in self._accounts:
                    digest = self._account_digest(address)
                    self._digests[address] = digest
                    self._root_acc = (self._root_acc + int(digest, 16)) % _ROOT_MODULUS
            self._dirty.clear()
            self._root_value = stable_hash(
                {
                    "accounts": len(self._accounts),
                    "digest": format(self._root_acc, "064x"),
                }
            )
        return self._root_value

    def to_dict(self) -> dict:
        return {
            "accounts": {addr: acc.to_dict() for addr, acc in self._accounts.items()},
            "storage": copy.deepcopy(self._storage),
        }
