"""World state: accounts, contract storage, change journal, and cached roots.

The world state is the mapping every full node maintains and agrees on via
consensus.  Contract storage is a per-address dictionary of JSON-serializable
values; a state root (hash committing to every account and storage slot) is
included in every block header so tampering with state is detectable.

Three properties keep the hot paths independent of the world size:

* **Change journal** — every mutation made through the :class:`WorldState`
  API records an undo entry while a frame opened by :meth:`begin` is active.
  A failed transaction calls :meth:`rollback` and reverts in O(touched
  slots); the seed implementation deep-copied the entire state per
  transaction instead.
* **Per-entry slot operations** — :meth:`storage_read_entry`,
  :meth:`storage_write_entry`, :meth:`storage_delete_entry`, and
  :meth:`storage_append` touch a single entry of a dict- or list-valued
  slot.  They copy and journal O(one entry), so contracts that keep an
  index in one slot (``pending requests``, ``round responses``) pay for the
  entry they touch, not for the whole collection.
* **Incremental state root** — :meth:`state_root` keeps a digest per
  *storage slot* plus a per-account commutative accumulator over those slot
  digests, and a second accumulator over the account digests.  Mutations
  mark (account, slot) pairs dirty; recomputing the root only re-hashes the
  dirty slots, so producing a block costs O(slots touched since the last
  block), not O(world) and not O(an account's whole storage).  Repeated
  calls with no intervening mutation return the cached root string without
  any hashing at all.

Storage values have **value semantics**: reads return structural copies and
writes store structural copies.  Contract code therefore cannot alias the
canonical storage and mutate it behind the journal's back — the only way to
change state is through the journaled API.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.common.errors import NotFoundError, ValidationError
from repro.common.serialization import stable_hash
from repro.blockchain.account import Account

_MISSING = object()

# The accumulators add digests modulo 2**256.  Addition is commutative, which
# is what makes the root incrementally maintainable: replacing one slot's
# digest subtracts the old leaf and adds the new one without touching the
# rest of the world.
#
# Trade-off: a commutative sum is NOT collision-resistant against an
# adversary who controls account contents (a generalized-birthday / k-sum
# search can find digest deltas summing to zero well below 2**128 effort).
# For this simulation the root is a cheap integrity commitment, not a
# cryptographic accumulator; full semantic tamper-evidence comes from
# Blockchain.verify_chain(replay=True), which re-executes every transaction
# and does not rely on root collision resistance.  A production chain would
# use a Merkle trie here.
_ROOT_MODULUS = 1 << 256


def copy_jsonlike(value: Any) -> Any:
    """Structural copy of a JSON-like value (dicts, lists, tuples, scalars)."""
    if isinstance(value, dict):
        return {key: copy_jsonlike(item) for key, item in value.items()}
    if isinstance(value, list):
        return [copy_jsonlike(item) for item in value]
    if isinstance(value, tuple):
        return tuple(copy_jsonlike(item) for item in value)
    return value


class WorldState:
    """Accounts, balances, nonces, and contract storage."""

    def __init__(self):
        self._accounts: Dict[str, Account] = {}
        self._storage: Dict[str, Dict[str, Any]] = {}
        # Undo log: tuples describing how to revert each mutation, recorded
        # only while at least one frame is open.
        self._journal: List[Tuple] = []
        # Stack of journal lengths, one entry per open frame.
        self._frames: List[int] = []
        # Addresses whose cached digest is stale.
        self._dirty: Set[str] = set()
        # address -> set of slot keys whose digest is stale.  An address
        # dirty with no entry here has only account-level changes (balance/
        # nonce); the "recompute every slot" path triggers when the address
        # is missing from _slot_digests (fresh account, or after restore()
        # cleared the caches).
        self._dirty_slots: Dict[str, Set[str]] = {}
        # address -> slot key -> integer digest of (key, value).
        self._slot_digests: Dict[str, Dict[str, int]] = {}
        # address -> sum of its slot digests, mod _ROOT_MODULUS.
        self._storage_acc: Dict[str, int] = {}
        # address -> integer digest of (account record, storage accumulator).
        self._digests: Dict[str, int] = {}
        # Sum of the digest integers of every account, mod _ROOT_MODULUS.
        self._root_acc: int = 0
        # Cached state_root() string; None whenever any account is dirty.
        self._root_value: Optional[str] = None

    # -- journal ------------------------------------------------------------

    def begin(self) -> int:
        """Open a journal frame; returns the new frame depth."""
        self._frames.append(len(self._journal))
        return len(self._frames)

    def commit(self) -> None:
        """Close the innermost frame, keeping its changes.

        Changes merge into the enclosing frame; committing the outermost
        frame discards the undo entries (they can no longer be rolled back).
        """
        if not self._frames:
            raise ValidationError("commit() without a matching begin()")
        self._frames.pop()
        if not self._frames:
            self._journal.clear()

    def commit_oldest(self) -> None:
        """Finalize the *outermost* open frame, keeping its changes.

        Used by the chain's bounded-reorg window: one journal frame stays
        open per non-final canonical block, and when a block sinks past the
        reorg horizon its frame — the bottom of the stack — is finalized.
        The undo entries belonging to that frame are discarded and the marks
        of the remaining frames shift down accordingly.
        """
        if not self._frames:
            raise ValidationError("commit_oldest() without a matching begin()")
        self._frames.pop(0)
        if not self._frames:
            self._journal.clear()
            return
        drop = self._frames[0]
        if drop:
            del self._journal[:drop]
            self._frames = [mark - drop for mark in self._frames]

    def rollback(self) -> None:
        """Revert every change made since the innermost :meth:`begin`."""
        if not self._frames:
            raise ValidationError("rollback() without a matching begin()")
        mark = self._frames.pop()
        while len(self._journal) > mark:
            entry = self._journal.pop()
            kind = entry[0]
            address = entry[1]
            if kind == "create":
                del self._accounts[address]
                self._storage.pop(address, None)
                self._touch(address)
            elif kind == "balance":
                self._accounts[address].balance = entry[2]
                self._touch(address)
            elif kind == "nonce":
                self._accounts[address].nonce = entry[2]
                self._touch(address)
            elif kind == "slot":
                _, _, key, old = entry
                storage = self._storage.get(address)
                if storage is not None:
                    if old is _MISSING:
                        storage.pop(key, None)
                    else:
                        storage[key] = old
                self._touch(address, key)
            elif kind == "entry":
                _, _, key, entry_key, old = entry
                storage = self._storage.get(address)
                if storage is not None and isinstance(storage.get(key), dict):
                    if old is _MISSING:
                        storage[key].pop(entry_key, None)
                    else:
                        storage[key][entry_key] = old
                self._touch(address, key)
            elif kind == "pop":
                _, _, key = entry
                storage = self._storage.get(address)
                if storage is not None and isinstance(storage.get(key), list) and storage[key]:
                    storage[key].pop()
                self._touch(address, key)
            elif kind == "item":
                _, _, key, index, old = entry
                storage = self._storage.get(address)
                if storage is not None and isinstance(storage.get(key), list) \
                        and 0 <= index < len(storage[key]):
                    storage[key][index] = old
                self._touch(address, key)

    @property
    def journal_depth(self) -> int:
        """Number of currently open journal frames."""
        return len(self._frames)

    def _record(self, entry: Tuple) -> None:
        if self._frames:
            self._journal.append(entry)

    def _touch(self, address: str, key: Optional[str] = None) -> None:
        self._dirty.add(address)
        if key is not None and address in self._dirty_slots:
            self._dirty_slots[address].add(key)
        elif key is not None:
            self._dirty_slots[address] = {key}
        self._root_value = None

    # -- accounts -----------------------------------------------------------

    def create_account(self, address: str, balance: int = 0,
                       contract_class: Optional[str] = None) -> Account:
        """Create an account; raises if the address already exists."""
        if address in self._accounts:
            raise ValidationError(f"account {address} already exists")
        account = Account(address=address, balance=balance, contract_class=contract_class)
        self._record(("create", address))
        self._accounts[address] = account
        if contract_class is not None:
            self._storage[address] = {}
        self._touch(address)
        return account

    def get_or_create_account(self, address: str) -> Account:
        """Return the account at *address*, creating an empty one if needed."""
        if address not in self._accounts:
            return self.create_account(address)
        return self._accounts[address]

    def get_account(self, address: str) -> Account:
        """Return the account at *address* or raise :class:`NotFoundError`.

        The returned object is the live account record; mutate it only
        through the journaled :meth:`credit` / :meth:`debit` /
        :meth:`bump_nonce` / :meth:`set_balance` methods so rollback and the
        root cache stay correct.
        """
        if address not in self._accounts:
            raise NotFoundError(f"unknown account {address}")
        return self._accounts[address]

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def accounts(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def account_count(self) -> int:
        return len(self._accounts)

    def balance_of(self, address: str) -> int:
        """Return the balance of *address* (0 for unknown accounts)."""
        account = self._accounts.get(address)
        return account.balance if account else 0

    def credit(self, address: str, amount: int) -> None:
        """Add *amount* to the balance of *address* (journaled)."""
        account = self.get_or_create_account(address)
        self._record(("balance", address, account.balance))
        account.credit(amount)
        self._touch(address)

    def debit(self, address: str, amount: int) -> None:
        """Remove *amount* from the balance of *address* (journaled)."""
        account = self.get_account(address)
        self._record(("balance", address, account.balance))
        account.debit(amount)
        self._touch(address)

    def set_balance(self, address: str, balance: int) -> None:
        """Overwrite the balance of *address* (journaled)."""
        if balance < 0:
            raise ValidationError("balance must be non-negative")
        account = self.get_account(address)
        self._record(("balance", address, account.balance))
        account.balance = balance
        self._touch(address)

    def bump_nonce(self, address: str) -> int:
        """Increment and return the nonce of *address* (journaled)."""
        account = self.get_account(address)
        self._record(("nonce", address, account.nonce))
        result = account.bump_nonce()
        self._touch(address)
        return result

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move *amount* from *sender* to *recipient*."""
        if amount < 0:
            raise ValidationError("transfer amount must be non-negative")
        if amount == 0:
            return
        self.debit(sender, amount)
        self.credit(recipient, amount)

    # -- contract storage -----------------------------------------------------

    def _contract_storage(self, address: str) -> Dict[str, Any]:
        """Return the live storage dictionary of contract *address*."""
        account = self.get_account(address)
        if not account.is_contract:
            raise ValidationError(f"account {address} is not a contract")
        return self._storage.setdefault(address, {})

    def storage_of(self, address: str) -> Dict[str, Any]:
        """Return a structural copy of the storage of contract *address*."""
        return copy_jsonlike(self._contract_storage(address))

    def storage_keys(self, address: str) -> List[str]:
        """Return the slot keys of contract *address* without copying values."""
        return list(self._contract_storage(address).keys())

    def storage_read(self, address: str, key: str, default: Any = None) -> Any:
        """Read a storage slot; the returned value is a structural copy."""
        storage = self._contract_storage(address)
        if key not in storage:
            return default
        return copy_jsonlike(storage[key])

    def storage_write(self, address: str, key: str, value: Any) -> bool:
        """Write a storage slot; returns True when the slot was previously empty."""
        storage = self._contract_storage(address)
        is_new = key not in storage
        self._record(("slot", address, key, _MISSING if is_new else storage[key]))
        storage[key] = copy_jsonlike(value)
        self._touch(address, key)
        return is_new

    def storage_delete(self, address: str, key: str) -> bool:
        """Delete a storage slot; returns True when the slot existed."""
        storage = self._contract_storage(address)
        if key in storage:
            self._record(("slot", address, key, storage[key]))
            del storage[key]
            self._touch(address, key)
            return True
        return False

    # -- per-entry slot operations ---------------------------------------------

    def _mapping_slot(self, address: str, key: str, create: bool) -> Optional[Dict[str, Any]]:
        """Return the live dict behind a mapping-valued slot (or None)."""
        storage = self._contract_storage(address)
        if key not in storage:
            if not create:
                return None
            self._record(("slot", address, key, _MISSING))
            storage[key] = {}
        slot = storage[key]
        if not isinstance(slot, dict):
            raise ValidationError(f"storage slot {key!r} of {address} does not hold a mapping")
        return slot

    def storage_read_entry(self, address: str, key: str, entry_key: str,
                           default: Any = None) -> Any:
        """Read one entry of a dict-valued slot; copies O(that entry)."""
        slot = self._mapping_slot(address, key, create=False)
        if slot is None or entry_key not in slot:
            return default
        return copy_jsonlike(slot[entry_key])

    def storage_has_entry(self, address: str, key: str, entry_key: str) -> bool:
        """Membership test on a dict-valued slot without copying any value."""
        slot = self._mapping_slot(address, key, create=False)
        return slot is not None and entry_key in slot

    def storage_entry_count(self, address: str, key: str) -> int:
        """Number of entries of a dict- or list-valued slot (0 when absent)."""
        storage = self._contract_storage(address)
        slot = storage.get(key)
        if slot is None:
            return 0
        if not isinstance(slot, (dict, list)):
            raise ValidationError(f"storage slot {key!r} of {address} is not a collection")
        return len(slot)

    def storage_write_entry(self, address: str, key: str, entry_key: str, value: Any) -> bool:
        """Write one entry of a dict-valued slot; returns True when the entry is new.

        Journals only the previous entry value, so rollback and the root
        cache cost O(one entry) instead of O(the whole slot).
        """
        slot = self._mapping_slot(address, key, create=True)
        assert slot is not None
        is_new = entry_key not in slot
        self._record(("entry", address, key, entry_key, _MISSING if is_new else slot[entry_key]))
        slot[entry_key] = copy_jsonlike(value)
        self._touch(address, key)
        return is_new

    def storage_delete_entry(self, address: str, key: str, entry_key: str) -> bool:
        """Delete one entry of a dict-valued slot; returns True when it existed."""
        slot = self._mapping_slot(address, key, create=False)
        if slot is None or entry_key not in slot:
            return False
        self._record(("entry", address, key, entry_key, slot[entry_key]))
        del slot[entry_key]
        self._touch(address, key)
        return True

    def storage_read_item(self, address: str, key: str, index: int, default: Any = None) -> Any:
        """Read one element of a list-valued slot; copies O(that element)."""
        storage = self._contract_storage(address)
        slot = storage.get(key)
        if slot is None:
            return default
        if not isinstance(slot, list):
            raise ValidationError(f"storage slot {key!r} of {address} does not hold a list")
        if not 0 <= index < len(slot):
            return default
        return copy_jsonlike(slot[index])

    def storage_write_item(self, address: str, key: str, index: int, value: Any) -> None:
        """Overwrite one element of a list-valued slot (journaled O(one element)).

        The index must address an existing element — list slots only grow
        through :meth:`storage_append`, so an item write never changes the
        slot's length and its undo entry restores exactly one element.
        """
        storage = self._contract_storage(address)
        slot = storage.get(key)
        if not isinstance(slot, list):
            raise ValidationError(f"storage slot {key!r} of {address} does not hold a list")
        if not 0 <= index < len(slot):
            raise ValidationError(
                f"list slot {key!r} of {address} has no index {index} (length {len(slot)})"
            )
        self._record(("item", address, key, index, slot[index]))
        slot[index] = copy_jsonlike(value)
        self._touch(address, key)

    def storage_append(self, address: str, key: str, value: Any) -> Tuple[int, bool]:
        """Append to a list-valued slot; returns ``(new length, slot was new)``.

        The undo entry is a single "pop", so appending to a long on-chain
        list never copies or journals the existing elements.
        """
        storage = self._contract_storage(address)
        is_new_slot = key not in storage
        if is_new_slot:
            self._record(("slot", address, key, _MISSING))
            storage[key] = []
        slot = storage[key]
        if not isinstance(slot, list):
            raise ValidationError(f"storage slot {key!r} of {address} does not hold a list")
        self._record(("pop", address, key))
        slot.append(copy_jsonlike(value))
        self._touch(address, key)
        return len(slot), is_new_slot

    # -- snapshots and roots ----------------------------------------------------

    def snapshot(self) -> "WorldState":
        """Return a full deep copy of the state.

        Retained as a checkpoint utility for tools and tests; the
        per-transaction execution path uses the O(touched-slots) journal
        (:meth:`begin` / :meth:`commit` / :meth:`rollback`) instead.
        """
        clone = WorldState()
        clone._accounts = {addr: Account.from_dict(acc.to_dict()) for addr, acc in self._accounts.items()}
        clone._storage = copy.deepcopy(self._storage)
        clone._dirty = set(clone._accounts)
        return clone

    def restore(self, snapshot: "WorldState") -> None:
        """Restore this state to a previously taken *snapshot*.

        Discards any open journal frames and invalidates every cached
        digest (the snapshot's content replaces the world wholesale).
        """
        self._accounts = snapshot._accounts
        self._storage = snapshot._storage
        self._journal.clear()
        self._frames.clear()
        self._digests.clear()
        self._slot_digests.clear()
        self._storage_acc.clear()
        self._dirty_slots.clear()
        self._root_acc = 0
        self._dirty = set(self._accounts)
        self._root_value = None

    @staticmethod
    def _slot_digest(key: str, value: Any) -> int:
        """Integer digest committing to one storage slot."""
        return int(stable_hash({"key": key, "value": value}), 16)

    def _refresh_storage_accumulator(self, address: str) -> int:
        """Bring the per-slot digests of *address* up to date; return the sum."""
        storage = self._storage.get(address, {})
        slot_digests = self._slot_digests.get(address)
        acc = self._storage_acc.get(address, 0)
        if slot_digests is None:
            # No cache yet (fresh account or post-restore): hash every slot.
            slot_digests = {key: self._slot_digest(key, value) for key, value in storage.items()}
            self._slot_digests[address] = slot_digests
            acc = sum(slot_digests.values()) % _ROOT_MODULUS
        else:
            dirty_keys = self._dirty_slots.get(address, ())
            for key in dirty_keys:
                previous = slot_digests.pop(key, None)
                if previous is not None:
                    acc = (acc - previous) % _ROOT_MODULUS
                if key in storage:
                    digest = self._slot_digest(key, storage[key])
                    slot_digests[key] = digest
                    acc = (acc + digest) % _ROOT_MODULUS
        self._storage_acc[address] = acc
        self._dirty_slots.pop(address, None)
        return acc

    def _account_digest(self, address: str) -> int:
        """Digest committing to one account's record and storage."""
        account = self._accounts[address]
        storage_acc = self._refresh_storage_accumulator(address)
        return int(
            stable_hash(
                {
                    "address": address,
                    "account": account.to_dict(),
                    "storage": format(storage_acc, "064x"),
                }
            ),
            16,
        )

    def _drop_account_digest(self, address: str) -> None:
        previous = self._digests.pop(address, None)
        if previous is not None:
            self._root_acc = (self._root_acc - previous) % _ROOT_MODULUS
        self._slot_digests.pop(address, None)
        self._storage_acc.pop(address, None)
        self._dirty_slots.pop(address, None)

    def state_root(self) -> str:
        """Return a hash committing to every account and storage slot.

        Only the slots and accounts touched since the previous call are
        re-hashed; with no intervening mutation the cached root string is
        returned as-is.
        """
        if self._root_value is None:
            for address in self._dirty:
                previous = self._digests.pop(address, None)
                if previous is not None:
                    self._root_acc = (self._root_acc - previous) % _ROOT_MODULUS
                if address in self._accounts:
                    digest = self._account_digest(address)
                    self._digests[address] = digest
                    self._root_acc = (self._root_acc + digest) % _ROOT_MODULUS
                else:
                    self._drop_account_digest(address)
            self._dirty.clear()
            self._root_value = stable_hash(
                {
                    "accounts": len(self._accounts),
                    "digest": format(self._root_acc, "064x"),
                }
            )
        return self._root_value

    def to_dict(self) -> dict:
        return {
            "accounts": {addr: acc.to_dict() for addr, acc in self._accounts.items()},
            "storage": copy.deepcopy(self._storage),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorldState":
        """Rebuild a state from a :meth:`to_dict` dump (snapshot loading).

        The returned state has no open journal frames and every digest
        cache cold, so the first :meth:`state_root` call hashes the whole
        world — which is exactly what a snapshot loader wants: the rebuilt
        root can be compared against the snapshot's claimed root before the
        state is trusted.
        """
        state = cls()
        for address, record in data.get("accounts", {}).items():
            state._accounts[address] = Account.from_dict(record)
        state._storage = copy.deepcopy(data.get("storage", {}))
        state._dirty = set(state._accounts)
        return state
