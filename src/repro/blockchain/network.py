"""Multi-validator blockchain network backed by full nodes.

Section V-2 of the paper argues that "the availability of the DE app is
preserved by the distributed nature of the blockchain.  If an attack succeeds
in bringing down one of the nodes, the blockchain ecosystem can continue to
operate by relying on the rest of the nodes."

Each validator here is a complete :class:`~repro.blockchain.node.BlockchainNode`
— its own mempool, event filters, receipts, deferred-verification batching,
and chain replica with a block tree.  Transactions are broadcast to every
online replica; block production walks the Aura-style round-robin schedule
(the slot is recorded in the sealed header, so every replica checks the seal
against the rotation), and produced blocks are shipped to the other replicas
as sealed wire copies that each node re-executes and validates before
adopting (:meth:`~repro.blockchain.chain.Blockchain.receive_block`).

Three fault classes are injectable:

* **crash** — :meth:`fail_validator` takes a node offline: it misses its
  slots (a liveness hit, counted in :attr:`skipped_slots`), receives neither
  transactions nor blocks, and resyncs block-by-block on
  :meth:`recover_validator`.  On a durable network (``persist_root`` set)
  :meth:`crash_validator` goes further — a kill -9 that destroys the
  in-memory replica and abandons its chain store mid-append;
  :meth:`restart_validator` rebuilds the node from disk (verifying every
  record checksum, truncating the torn tail, cold-starting from the best
  finality snapshot) and resyncs the rest from peers;
* **partition** — :meth:`partition` splits block delivery into two islands
  that keep producing on diverging branches; :meth:`heal_partition` lets
  deterministic fork-choice (longest chain, lowest-hash tie-break) converge
  everyone onto one head;
* **Byzantine equivocation** — :meth:`equivocate_validator` makes a
  validator seal *two* conflicting blocks for its next slot and show
  different ones to different replicas.  Every replica's
  :class:`~repro.blockchain.consensus.EquivocationDetector` records the
  double-seal as a slashable proof naming the proposer, the network stops
  scheduling the slashed validator, and fork-choice converges the honest
  replicas onto a single head.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.clock import Clock, SimulatedClock
from repro.common.errors import NotFoundError, SignatureError, ValidationError
from repro.blockchain.block import Block
from repro.blockchain.consensus import EquivocationProof, ProofOfAuthority
from repro.blockchain.crypto import KeyPair
from repro.blockchain.gas import GasSchedule
from repro.blockchain.node import BlockchainNode
from repro.blockchain.state import copy_jsonlike
from repro.blockchain.storage import validator_store_path
from repro.blockchain.transaction import Transaction
from repro.blockchain.vm import ContractRegistry


class NetworkValidator:
    """One validator: a key, a full node replica, and its fault status."""

    def __init__(self, keypair: KeyPair, node: BlockchainNode,
                 persist_dir: Optional[str] = None):
        self.keypair = keypair
        self.node = node
        self.persist_dir = persist_dir
        self.online = True
        self.slashed = False
        self.pending_equivocation = False
        # A *crashed* validator lost its process, not just its connectivity:
        # ``node`` is None until restart_validator rebuilds it from disk.
        self.crashed = False

    @property
    def address(self) -> str:
        return self.keypair.address

    @property
    def chain(self):
        return self.node.chain

    @property
    def schedulable(self) -> bool:
        """Whether the rotation should hand this validator its slot."""
        return self.online and not self.slashed


class BlockchainNetwork:
    """A set of PoA validators, each running a full :class:`BlockchainNode`.

    The first validator is the *primary*: architecture deployments point
    their interaction modules at its node, and its canonical chain is the
    one reports and invariants are read from (all honest replicas converge
    to the same head, so the choice is cosmetic).
    """

    def __init__(self, num_validators: int = 4, block_interval: float = 5.0,
                 registry_factory=None, schedule: Optional[GasSchedule] = None,
                 clock: Optional[Clock] = None,
                 genesis_balances: Optional[Dict[str, int]] = None,
                 keypairs: Optional[List[KeyPair]] = None,
                 require_signatures: bool = True,
                 persist_root: Optional[str] = None,
                 max_reorg_depth: Optional[int] = None,
                 snapshot_interval: int = 0,
                 epoch_length: int = 0):
        if keypairs is not None:
            num_validators = len(keypairs)
        if num_validators < 1:
            raise ValidationError("a network needs at least one validator")
        self.clock = clock if clock is not None else SimulatedClock()
        if keypairs is None:
            keypairs = [KeyPair.from_name(f"validator-{index}") for index in range(num_validators)]
        # The genesis template.  Every node runs its OWN engine clone (a
        # replica's rotation history is chain state, derived from the blocks
        # it adopted) — sharing one engine would let a replica that reorged
        # through an epoch boundary corrupt the schedule its peers validate
        # against.
        self.consensus = ProofOfAuthority(
            validators=[kp.address for kp in keypairs], block_interval=block_interval,
            epoch_length=epoch_length,
        )
        # Held so restart_validator / join_validator can build replicas the
        # same way the originals were built.
        self._registry_factory = registry_factory
        self._schedule = schedule
        self._persist_root = persist_root
        self._genesis_balances = dict(genesis_balances or {})
        self._require_signatures = require_signatures
        self._max_reorg_depth = max_reorg_depth
        self._snapshot_interval = snapshot_interval
        self.validators: List[NetworkValidator] = []
        for index, keypair in enumerate(keypairs):
            registry = registry_factory() if registry_factory else ContractRegistry()
            persist_dir = (
                validator_store_path(persist_root, index)
                if persist_root is not None else None
            )
            node = BlockchainNode(
                self.consensus.with_validators(self.consensus.validators),
                keypair,
                registry=registry,
                schedule=schedule,
                clock=self.clock,
                genesis_balances=genesis_balances,
                require_signatures=require_signatures,
                persist_dir=persist_dir,
                max_reorg_depth=max_reorg_depth,
                snapshot_interval=snapshot_interval,
            )
            node.network = self
            self.validators.append(NetworkValidator(keypair, node, persist_dir=persist_dir))
        # Later replicas must rebuild a bit-identical genesis block even
        # though the shared clock has advanced (see join_validator).
        self._genesis_timestamp = self.validators[0].chain.blocks[0].header.timestamp
        # Dynamic validator set: the registry contract every replica derives
        # its rotation from, and the slash transactions already submitted
        # (one per distinct proof).
        self.validator_registry_address: Optional[str] = None
        self._slash_submitted: Set[Tuple[int, str]] = set()
        self.skipped_slots = 0
        self.current_slot = 0
        # One record per slot the rotation visited: the liveness trace the
        # scenario conformance suite checks (a slot is skipped if and only
        # if its proposer was crashed or slashed when the slot came up).
        self.slot_log: List[Dict] = []
        # Equivocation proofs aggregated from the replicas' detectors,
        # deduplicated by (height, proposer).
        self.equivocation_proofs: List[EquivocationProof] = []
        self._proof_keys: Set[Tuple[int, str]] = set()
        # Indices isolated from the rest while a partition is active.
        self._partition: Optional[Set[int]] = None

    # -- membership / failures ----------------------------------------------------

    @property
    def primary(self) -> BlockchainNode:
        """The node architecture deployments submit through (validator 0)."""
        return self.validators[0].node

    def validator_by_address(self, address: str) -> NetworkValidator:
        for validator in self.validators:
            if validator.address == address:
                return validator
        raise NotFoundError(f"no validator with address {address}")

    def _check_index(self, index: int) -> None:
        """Range-check a fault-injection target (no negative-index aliasing)."""
        if not 0 <= index < len(self.validators):
            raise ValidationError(
                f"validator index {index} out of range "
                f"(deployment has {len(self.validators)} validators)"
            )

    def fail_validator(self, index: int) -> None:
        """Take the validator at *index* offline (crash fault)."""
        self._check_index(index)
        validator = self.validators[index]
        validator.online = False
        # A queued equivocation dies with the process that was meant to
        # perform it — recovery must not act on the stale instruction.
        validator.pending_equivocation = False

    def recover_validator(self, index: int) -> None:
        """Bring the validator at *index* back online and resync its replica."""
        self._check_index(index)
        validator = self.validators[index]
        if validator.crashed:
            raise ValidationError(
                f"validator {index} hard-crashed; restart_validator must "
                f"rebuild it from its chain store"
            )
        validator.online = True
        self._sync_to_best(validator)

    def crash_validator(self, index: int, torn_tail: bool = True) -> None:
        """Hard-crash the validator at *index* (kill -9, not a clean stop).

        The replica's in-memory state is lost entirely: its chain store is
        abandoned un-synced (the manifest lags the log, leaving an unsynced
        tail) and, with *torn_tail*, a half-written record is left at the
        end of the log — exactly what a power cut mid-append produces.
        Only :meth:`restart_validator` can bring it back.
        """
        self._check_index(index)
        validator = self.validators[index]
        if validator.crashed:
            raise ValidationError(f"validator {index} is already crashed")
        if validator.persist_dir is None:
            raise ValidationError(
                "hard crashes need a durable network (persist_root unset)"
            )
        validator.node.hard_crash(torn_tail=torn_tail)
        validator.node = None
        validator.online = False
        validator.crashed = True
        # Same rationale as fail_validator: the equivocation instruction does
        # not survive the crash.
        validator.pending_equivocation = False

    def restart_validator(self, index: int) -> Dict[str, object]:
        """Rebuild a hard-crashed validator from its chain store and resync.

        The store is re-opened with every record checksum verified and any
        torn tail truncated; the chain cold-starts from the best promoted
        snapshot plus a re-executed tail, the durable registry and
        equivocation proofs are restored, and whatever the truncation lost
        is fetched back from the best online peer.  Returns the recovery
        report (camelCase keys) plus ``resyncedBlocks``.
        """
        self._check_index(index)
        validator = self.validators[index]
        if not validator.crashed:
            raise ValidationError(f"validator {index} is not crashed")
        registry = self._registry_factory() if self._registry_factory else None
        node = BlockchainNode.open_from_disk(
            validator.persist_dir,
            validator.keypair,
            registry=registry,
            schedule=self._schedule,
            clock=self.clock,
            consensus=self.consensus,
        )
        node.network = self
        if (
            self.validator_registry_address is not None
            and node.chain.validator_registry_address is None
        ):
            # The rotation sidecar normally restores this; a store crashed
            # before its first epoch boundary has no sidecar yet.
            node.chain.use_validator_registry(self.validator_registry_address)
        validator.node = node
        validator.crashed = False
        validator.online = True
        recovered_height = node.chain.height
        self._sync_to_best(validator)
        report: Dict[str, object] = dict(node.recovery.to_dict())
        report["recoveredHeight"] = recovered_height
        report["resyncedBlocks"] = node.chain.height - recovered_height
        return report

    def close(self) -> None:
        """Cleanly sync and close every live replica's chain store."""
        for validator in self.validators:
            if validator.node is not None:
                validator.node.close()

    def partition(self, indices: Iterable[int]) -> None:
        """Split block delivery: *indices* form one island, the rest the other."""
        island = set(indices)
        if not all(0 <= index < len(self.validators) for index in island):
            raise ValidationError("partition indices out of range")
        self._partition = island

    def heal_partition(self) -> None:
        """Reconnect the islands and converge every replica via fork-choice."""
        self._partition = None
        for validator in self.online_validators():
            self._sync_to_best(validator)

    def equivocate_validator(self, index: int) -> None:
        """Make the validator at *index* double-seal its next proposing slot.

        An unschedulable target is rejected outright: latching the flag on a
        crashed, offline, or already-slashed validator would leave a stale
        instruction that fires on a later recovery.
        """
        self._check_index(index)
        validator = self.validators[index]
        if not validator.schedulable or validator.crashed:
            if validator.crashed:
                state = "crashed"
            elif not validator.online:
                state = "offline"
            else:
                state = "slashed"
            raise ValidationError(
                f"validator {index} is {state} and will never reach a "
                f"proposing slot; refusing to queue an equivocation"
            )
        validator.pending_equivocation = True

    # -- dynamic membership (validator-registry contract) -------------------------

    def use_validator_registry(self, address: str) -> None:
        """Derive every replica's rotation from the registry contract at *address*."""
        if self.consensus.epoch_length <= 0:
            raise ValidationError(
                "a validator registry needs an epoch-aware network "
                "(epoch_length > 0)"
            )
        self.validator_registry_address = address
        for validator in self.validators:
            if validator.node is not None:
                validator.node.chain.use_validator_registry(address)

    def join_validator(self, keypair: Optional[KeyPair] = None) -> NetworkValidator:
        """Spin up a new replica and submit its bonded ``join`` transaction.

        The replica is built against the same genesis (bit-identical genesis
        block), synced from the best peer, and starts following immediately;
        it only receives proposing slots once the epoch boundary after its
        join settles it into the derived rotation.  The join transaction is
        signed by the candidate itself and carries the registry's bond as
        its value, so the caller must have funded the candidate's address.
        """
        if self.validator_registry_address is None:
            raise ValidationError(
                "joining needs a validator registry (static committees are closed)"
            )
        index = len(self.validators)
        if keypair is None:
            keypair = KeyPair.from_name(f"validator-{index}")
        for validator in self.validators:
            if validator.address == keypair.address:
                raise ValidationError(f"{keypair.address} already runs a replica")
        registry = self._registry_factory() if self._registry_factory else ContractRegistry()
        persist_dir = (
            validator_store_path(self._persist_root, index)
            if self._persist_root is not None else None
        )
        node = BlockchainNode(
            self.consensus.with_validators(self.consensus.validators),
            keypair,
            registry=registry,
            schedule=self._schedule,
            clock=self.clock,
            genesis_balances=self._genesis_balances,
            require_signatures=self._require_signatures,
            persist_dir=persist_dir,
            max_reorg_depth=self._max_reorg_depth,
            snapshot_interval=self._snapshot_interval,
            genesis_timestamp=self._genesis_timestamp,
        )
        node.network = self
        node.chain.use_validator_registry(self.validator_registry_address)
        validator = NetworkValidator(keypair, node, persist_dir=persist_dir)
        self.validators.append(validator)
        self._sync_to_best(validator)
        bond = self.primary.call(self.validator_registry_address, "bond_amount")
        tx = Transaction(
            sender=keypair.address,
            to=self.validator_registry_address,
            data={"method": "join", "args": {}},
            value=bond,
            nonce=node.next_nonce(keypair.address),
        ).sign(keypair)
        self.broadcast_transaction(tx)
        return validator

    def leave_validator(self, index: int) -> str:
        """Submit the validator's ``leave`` transaction (rotation exit).

        The replica keeps running — it still validates and serves queries —
        but the derived rotation stops handing it slots at the next epoch
        boundary.  Returns the transaction hash.
        """
        self._check_index(index)
        if self.validator_registry_address is None:
            raise ValidationError(
                "leaving needs a validator registry (static committees are closed)"
            )
        validator = self.validators[index]
        if validator.node is None:
            raise ValidationError(f"validator {index} is crashed; nothing to sign with")
        tx = Transaction(
            sender=validator.address,
            to=self.validator_registry_address,
            data={"method": "leave", "args": {}},
            nonce=validator.node.next_nonce(validator.address),
        ).sign(validator.keypair)
        return self.broadcast_transaction(tx)

    def withdraw_bond(self, index: int) -> str:
        """Submit an exited validator's ``withdraw`` (cool-down bond refund)."""
        self._check_index(index)
        if self.validator_registry_address is None:
            raise ValidationError("withdrawing needs a validator registry")
        validator = self.validators[index]
        if validator.node is None:
            raise ValidationError(f"validator {index} is crashed; nothing to sign with")
        tx = Transaction(
            sender=validator.address,
            to=self.validator_registry_address,
            data={"method": "withdraw", "args": {}},
            nonce=validator.node.next_nonce(validator.address),
        ).sign(validator.keypair)
        return self.broadcast_transaction(tx)

    def online_validators(self) -> List[NetworkValidator]:
        return [validator for validator in self.validators if validator.online]

    def honest_validators(self) -> List[NetworkValidator]:
        """Validators with no recorded equivocation proof against them."""
        byzantine = {proof.proposer for proof in self.equivocation_proofs}
        return [v for v in self.validators if v.address not in byzantine]

    @property
    def is_available(self) -> bool:
        """The DE App remains available while at least one validator is online."""
        return bool(self.online_validators())

    # -- transaction flow -----------------------------------------------------------

    def broadcast_transaction(self, tx: Transaction) -> str:
        """Gossip a transaction into every online replica's mempool.

        The first online replica verifies the signature immediately (or
        defers it to its active batch); the others always defer — their
        amortized pre-production pass re-checks from the shared verdict
        cache, so a forged transaction still never reaches any chain.
        """
        online = self.online_validators()
        if not online:
            raise ValidationError("no online validator can accept transactions")
        first, rest = online[0], online[1:]
        tx_hash = first.node.enqueue_transaction(tx)
        for validator in rest:
            validator.node.enqueue_transaction(tx, defer_verification=True)
        return tx_hash

    # -- block production -----------------------------------------------------------

    def produce_next_block(self) -> Optional[Block]:
        """Advance one slot of the round-robin schedule.

        Returns the block that became canonical on the primary, or ``None``
        when the slot was skipped (crashed or slashed proposer).  Pending
        transactions stay queued for the next schedulable proposer.
        """
        if not self.is_available:
            return None
        self.current_slot += 1
        slot = self.current_slot
        rotation = self._active_rotation()
        address = rotation[(slot - 1) % len(rotation)]
        proposer = self.validator_by_address(address)
        index = self.validators.index(proposer)
        self._advance_clock()
        entry = {
            "slot": slot,
            "proposer": proposer.address,
            "proposerIndex": index,
            "online": proposer.online,
            "slashed": proposer.slashed,
            "produced": False,
            "equivocated": False,
            "blockHash": None,
        }
        self.slot_log.append(entry)
        if not proposer.schedulable:
            self.skipped_slots += 1
            entry["reason"] = "slashed" if proposer.slashed else "crashed"
            return None
        invalid = proposer.node.verify_deferred()
        if invalid:
            hashes = [tx.hash for tx in invalid]
            for validator in self.online_validators():
                if validator is not proposer:
                    validator.node.drop_transactions(hashes)
            # The slot aborts before anything is mined; not a liveness fault.
            entry["reason"] = "forged-transactions"
            raise SignatureError(
                f"{len(invalid)} batched transaction(s) carry invalid signatures "
                f"(first: {hashes[0]})"
            )
        timestamp = self.clock.now()
        if proposer.pending_equivocation:
            proposer.pending_equivocation = False
            block = self._produce_equivocating(proposer, slot, timestamp)
            entry["equivocated"] = True
        else:
            block = proposer.node.propose_block(slot, timestamp)
            self._deliver(block, proposer)
        self._collect_proofs()
        entry["produced"] = True
        entry["blockHash"] = block.hash
        return block

    def produce_blocks(self, count: int) -> List[Block]:
        """Run *count* slots and return the blocks actually produced."""
        produced = []
        for _ in range(count):
            block = self.produce_next_block()
            if block is not None:
                produced.append(block)
        return produced

    def produce_until_block(self, max_slots: Optional[int] = None) -> Block:
        """Advance slots until one produces a block (the auto-mining hook)."""
        limit = max_slots if max_slots is not None else 2 * len(self.validators)
        for _ in range(limit):
            block = self.produce_next_block()
            if block is not None:
                return block
        raise ValidationError(
            f"no schedulable proposer produced a block within {limit} slots"
        )

    def _active_rotation(self) -> Tuple[str, ...]:
        """The rotation slots currently iterate: the active set, in join order.

        Derived from the best online replica's engine at the height it would
        seal next, so a slash or membership change settled on-chain takes
        scheduling effect at the epoch boundary that follows it.  Static
        deployments (epoch_length == 0) always get the genesis order.
        """
        source = self._best_source()
        if source is not None:
            return source.node.consensus.rotation_for_height(source.chain.height + 1)
        return tuple(validator.address for validator in self.validators)

    def _advance_clock(self) -> None:
        if isinstance(self.clock, SimulatedClock):
            self.clock.advance(self.consensus.block_interval)

    # Backwards-compatible alias (pre-node-backed network API).
    clock_advance = _advance_clock

    # -- replication ------------------------------------------------------------

    @staticmethod
    def _wire(block: Block) -> Block:
        """A deep copy of a sealed block, as a peer would receive it."""
        return Block.from_dict(copy_jsonlike(block.to_dict()))

    def _reachable(self, a_index: int, b_index: int) -> bool:
        if self._partition is None:
            return True
        return (a_index in self._partition) == (b_index in self._partition)

    def _deliver(self, block: Block, proposer: NetworkValidator) -> None:
        """Ship a sealed block to every online replica reachable from the proposer."""
        proposer_index = self.validators.index(proposer)
        for index, validator in enumerate(self.validators):
            if validator is proposer or not validator.online:
                continue
            if not self._reachable(proposer_index, index):
                continue
            validator.node.import_block(self._wire(block))

    def _produce_equivocating(self, proposer: NetworkValidator, slot: int,
                              timestamp: float) -> Block:
        """Seal two conflicting blocks for one slot and split their delivery.

        The proposer signs a second, empty header at the same height (a
        perfectly valid block on its own — only the *pair* is damning),
        shows each half of the network a different one, and then the
        conflicting headers gossip everywhere: every replica's detector
        records the slashable proof and deterministic fork-choice converges
        the honest replicas onto the lower-hash branch.
        """
        node = proposer.node
        # The conflicting sibling: built first so its (empty) state frame is
        # discarded before the real block executes the pending pool.
        sibling = node.chain.build_block([], proposer.address, timestamp)
        sibling.header.extra["slot"] = slot
        sibling.header.extra["equivocation"] = "sibling"
        node.consensus.seal(sibling, proposer.keypair)
        block = node.propose_block(slot, timestamp)
        node.chain.observe_seal(sibling)

        proposer_index = self.validators.index(proposer)
        recipients = [
            (index, validator)
            for index, validator in enumerate(self.validators)
            if validator is not proposer and validator.online
            and self._reachable(proposer_index, index)
        ]
        for position, (_, validator) in enumerate(recipients):
            first = block if position % 2 == 0 else sibling
            validator.node.import_block(self._wire(first))
        # Gossip: the conflicting headers spread to everyone (including the
        # equivocator's own replica), so detection and convergence follow.
        for _, validator in recipients:
            validator.node.import_block(self._wire(block))
            validator.node.import_block(self._wire(sibling))
        node.import_block(self._wire(sibling))
        winner_hash = min(block.hash, sibling.hash)
        return block if winner_hash == block.hash else sibling

    def _collect_proofs(self) -> None:
        """Aggregate new equivocation proofs and slash their proposers.

        The local ``slashed`` flag stops the rotation from handing the
        culprit another slot immediately (static deployments have nothing
        else).  With a validator registry the proof is ALSO submitted as an
        ordinary signed transaction — the contract re-verifies it, burns the
        bond, and the next epoch's derived rotation drops the culprit on
        every replica, making the slash a replayable state transition.
        """
        for validator in self.validators:
            if validator.node is None:
                continue
            for proof in validator.chain.equivocation.proofs:
                key = (proof.height, proof.proposer)
                if key in self._proof_keys:
                    continue
                self._proof_keys.add(key)
                self.equivocation_proofs.append(proof)
        for proof in self.equivocation_proofs:
            culprit = self.validator_by_address(proof.proposer)
            culprit.slashed = True
            # A queued equivocation must not survive the slash (the stale
            # instruction would fire if the culprit were ever re-admitted).
            culprit.pending_equivocation = False
            if self.validator_registry_address is not None:
                self._submit_slash(proof)

    def _submit_slash(self, proof: EquivocationProof) -> None:
        """Broadcast the slash transaction for *proof* (once per proof).

        Any funded, honest, online validator may submit — the proof is
        self-authenticating, so the contract trusts nothing about the
        sender.  The submission is deduplicated locally AND idempotent
        on-chain (the contract rejects an already-settled (height, proposer)
        pair), so replayed proofs after a restart cannot double-burn.
        """
        key = (proof.height, proof.proposer)
        if key in self._slash_submitted:
            return
        submitter = None
        for validator in self.online_validators():
            if validator.slashed:
                continue
            if validator.node.get_balance(validator.address) > 0:
                submitter = validator
                break
        if submitter is None:
            return  # retried on the next _collect_proofs pass
        tx = Transaction(
            sender=submitter.address,
            to=self.validator_registry_address,
            data={"method": "slash", "args": {"proof": proof.to_wire()}},
            nonce=submitter.node.next_nonce(submitter.address),
        ).sign(submitter.keypair)
        self.broadcast_transaction(tx)
        self._slash_submitted.add(key)

    # -- replica management ------------------------------------------------------------

    def _best_source(self, exclude: Optional[NetworkValidator] = None) -> Optional[NetworkValidator]:
        """The online replica whose head wins fork-choice network-wide."""
        best: Optional[NetworkValidator] = None
        for validator in self.online_validators():
            if validator is exclude:
                continue
            if best is None:
                best = validator
                continue
            head, best_head = validator.chain.head, best.chain.head
            if (head.number, head.hash) != (best_head.number, best_head.hash) and (
                head.number > best_head.number
                or (head.number == best_head.number and head.hash < best_head.hash)
            ):
                best = validator
        return best

    def _sync_to_best(self, validator: NetworkValidator) -> None:
        """Catch a replica up by importing the best peer's canonical blocks.

        Starts from the highest source-canonical block the target already
        knows (walking down from the lagging height), so a recovery costs
        O(divergence + missing blocks), not O(chain).
        """
        source = self._best_source(exclude=validator)
        if source is None:
            return
        target = validator.node
        source_blocks = source.chain.blocks
        start = min(target.chain.height, source.chain.height)
        while start > 0 and not target.chain.knows_block(source_blocks[start].hash):
            start -= 1
        for block in source_blocks[start + 1:]:
            if target.chain.knows_block(block.hash):
                continue
            target.import_block(self._wire(block))
        self._collect_proofs()

    # Kept for API compatibility with the pre-node-backed network.
    def _resync(self, validator: NetworkValidator) -> None:
        self._sync_to_best(validator)

    # -- health ------------------------------------------------------------------------

    def heights(self) -> Dict[str, int]:
        """Chain height of every live validator (crashed replicas have none)."""
        return {
            validator.address: validator.chain.height
            for validator in self.validators if validator.node is not None
        }

    def heads(self) -> Dict[str, str]:
        """Canonical head hash of every live validator."""
        return {
            validator.address: validator.chain.head.hash
            for validator in self.validators if validator.node is not None
        }

    def consistent(self) -> bool:
        """True when every online replica agrees on the head block hash."""
        online = self.online_validators()
        if not online:
            return True
        heads = {validator.chain.head.hash for validator in online}
        return len(heads) == 1

    def honest_heads_converged(self) -> bool:
        """True when every *online, honest* replica agrees on the head hash."""
        heads = {
            validator.chain.head.hash
            for validator in self.honest_validators()
            if validator.online
        }
        return len(heads) <= 1

    def liveness_report(self) -> Dict[str, object]:
        """The liveness shadow: a slot is skipped iff its proposer was down.

        ``violations`` lists slots where production disagreed with the
        proposer's recorded availability — empty in a conforming run.
        """
        violations = [
            entry for entry in self.slot_log
            if entry.get("reason") != "forged-transactions"
            and entry["produced"] != (entry["online"] and not entry["slashed"])
        ]
        return {
            "slots": len(self.slot_log),
            "produced": sum(1 for entry in self.slot_log if entry["produced"]),
            "skipped": self.skipped_slots,
            "violations": violations,
        }
