"""Multi-node blockchain network simulation.

Section V-2 of the paper argues that "the availability of the DE app is
preserved by the distributed nature of the blockchain.  If an attack succeeds
in bringing down one of the nodes, the blockchain ecosystem can continue to
operate by relying on the rest of the nodes."  The robustness benchmark (E9)
exercises exactly that: a network of PoA validators where some nodes are
failed and the remaining ones keep producing and replicating blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.clock import Clock, SimulatedClock
from repro.common.errors import NotFoundError, ValidationError
from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.crypto import KeyPair
from repro.blockchain.gas import GasSchedule
from repro.blockchain.transaction import Transaction
from repro.blockchain.vm import ContractRegistry


class NetworkValidator:
    """One validator in the simulated network: a key, a chain replica, and a status."""

    def __init__(self, keypair: KeyPair, chain: Blockchain):
        self.keypair = keypair
        self.chain = chain
        self.online = True

    @property
    def address(self) -> str:
        return self.keypair.address


class BlockchainNetwork:
    """A set of PoA validators replicating the same chain.

    Transactions are broadcast to every online validator's mempool; block
    production walks the round-robin schedule, skipping validators that are
    offline (their slot is simply missed, modelling the liveness hit), and
    every produced block is replicated to all online replicas.
    """

    def __init__(self, num_validators: int = 4, block_interval: float = 5.0,
                 registry_factory=None, schedule: Optional[GasSchedule] = None,
                 clock: Optional[Clock] = None,
                 genesis_balances: Optional[Dict[str, int]] = None):
        if num_validators < 1:
            raise ValidationError("a network needs at least one validator")
        self.clock = clock if clock is not None else SimulatedClock()
        keypairs = [KeyPair.from_name(f"validator-{index}") for index in range(num_validators)]
        self.consensus = ProofOfAuthority(
            validators=[kp.address for kp in keypairs], block_interval=block_interval
        )
        self.validators: List[NetworkValidator] = []
        for keypair in keypairs:
            registry = registry_factory() if registry_factory else ContractRegistry()
            chain = Blockchain(self.consensus, registry, schedule, self.clock, genesis_balances)
            self.validators.append(NetworkValidator(keypair, chain))
        self.mempool: List[Transaction] = []
        self.skipped_slots = 0
        self.current_slot = 0

    # -- membership / failures ----------------------------------------------------

    def validator_by_address(self, address: str) -> NetworkValidator:
        for validator in self.validators:
            if validator.address == address:
                return validator
        raise NotFoundError(f"no validator with address {address}")

    def fail_validator(self, index: int) -> None:
        """Take the validator at *index* offline (crash fault)."""
        self.validators[index].online = False

    def recover_validator(self, index: int) -> None:
        """Bring the validator at *index* back online and resync its replica."""
        validator = self.validators[index]
        validator.online = True
        self._resync(validator)

    def online_validators(self) -> List[NetworkValidator]:
        return [validator for validator in self.validators if validator.online]

    @property
    def is_available(self) -> bool:
        """The DE App remains available while at least one validator is online."""
        return bool(self.online_validators())

    # -- transaction flow -----------------------------------------------------------

    def broadcast_transaction(self, tx: Transaction) -> str:
        """Add a transaction to the shared mempool (gossip is instantaneous)."""
        self.mempool.append(tx)
        return tx.hash

    def produce_next_block(self) -> Optional[Block]:
        """Advance one slot of the round-robin schedule.

        Returns the produced block, or ``None`` when the scheduled proposer is
        offline (a skipped slot).  The pending mempool stays queued for the
        next online proposer.
        """
        reference = self._reference_chain()
        if reference is None:
            return None
        # Aura-style slot assignment: every block interval has a designated
        # proposer regardless of how many previous slots were missed.
        self.current_slot += 1
        proposer_address = self.consensus.validators[
            (self.current_slot - 1) % len(self.consensus.validators)
        ]
        self.clock_advance()
        proposer = self.validator_by_address(proposer_address)
        if not proposer.online:
            self.skipped_slots += 1
            return None
        transactions = list(self.mempool)
        self.mempool.clear()
        block = proposer.chain.build_block(transactions, proposer_address, self.clock.now())
        self.consensus.seal(block, proposer.keypair)
        proposer.chain.append_block(block)
        # Replicate to the other online validators by replaying the same
        # transactions; PoA determinism guarantees identical blocks.
        for validator in self.online_validators():
            if validator is proposer:
                continue
            replica_block = validator.chain.build_block(transactions, proposer_address, block.header.timestamp)
            self.consensus.seal(replica_block, proposer.keypair)
            validator.chain.append_block(replica_block)
        return block

    def produce_blocks(self, count: int) -> List[Block]:
        """Run *count* slots and return the blocks actually produced."""
        produced = []
        for _ in range(count):
            block = self.produce_next_block()
            if block is not None:
                produced.append(block)
        return produced

    def clock_advance(self) -> None:
        if isinstance(self.clock, SimulatedClock):
            self.clock.advance(self.consensus.block_interval)

    # -- replica management ------------------------------------------------------------

    def _reference_chain(self) -> Optional[Blockchain]:
        online = self.online_validators()
        if not online:
            return None
        return max(online, key=lambda validator: validator.chain.height).chain

    def _resync(self, validator: NetworkValidator) -> None:
        """Catch a recovered validator up by replaying the reference chain."""
        reference = self._reference_chain()
        if reference is None or reference is validator.chain:
            return
        local_height = validator.chain.height
        for number in range(local_height + 1, reference.height + 1):
            block = reference.block_by_number(number)
            replica = validator.chain.build_block(
                list(block.transactions), block.header.proposer, block.header.timestamp
            )
            replica.seal = block.seal
            replica.proposer_public_key = block.proposer_public_key
            validator.chain.append_block(replica)

    # -- health ------------------------------------------------------------------------

    def heights(self) -> Dict[str, int]:
        """Chain height of every validator (offline replicas lag behind)."""
        return {validator.address: validator.chain.height for validator in self.validators}

    def consistent(self) -> bool:
        """True when every online replica agrees on the head block hash."""
        online = self.online_validators()
        if not online:
            return True
        heads = {validator.chain.head.hash for validator in online}
        return len(heads) == 1
