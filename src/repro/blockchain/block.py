"""Blocks and block headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import IntegrityError, ValidationError
from repro.common.serialization import canonical_json
from repro.blockchain.crypto import merkle_root, sha256_hex, verify
from repro.blockchain.transaction import Receipt, Transaction


@dataclass
class BlockHeader:
    """Header fields covered by the block hash and the sealer's signature."""

    number: int
    parent_hash: str
    timestamp: float
    transactions_root: str
    receipts_root: str
    state_root: str
    proposer: str
    gas_used: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.number < 0:
            raise ValidationError("block number must be non-negative")
        if self.gas_used < 0:
            raise ValidationError("gas used must be non-negative")

    def signing_payload(self) -> bytes:
        return canonical_json(
            {
                "number": self.number,
                "parentHash": self.parent_hash,
                "timestamp": self.timestamp,
                "transactionsRoot": self.transactions_root,
                "receiptsRoot": self.receipts_root,
                "stateRoot": self.state_root,
                "proposer": self.proposer,
                "gasUsed": self.gas_used,
                "extra": self.extra,
            }
        )

    @property
    def hash(self) -> str:
        return sha256_hex(self.signing_payload())

    def to_dict(self) -> dict:
        return {
            "number": self.number,
            "parentHash": self.parent_hash,
            "timestamp": self.timestamp,
            "transactionsRoot": self.transactions_root,
            "receiptsRoot": self.receipts_root,
            "stateRoot": self.state_root,
            "proposer": self.proposer,
            "gasUsed": self.gas_used,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BlockHeader":
        return cls(
            number=data["number"],
            parent_hash=data["parentHash"],
            timestamp=data["timestamp"],
            transactions_root=data["transactionsRoot"],
            receipts_root=data["receiptsRoot"],
            state_root=data["stateRoot"],
            proposer=data["proposer"],
            gas_used=data.get("gasUsed", 0),
            extra=data.get("extra", {}),
        )


@dataclass
class Block:
    """A sealed block: header, transactions, receipts, and the seal signature."""

    header: BlockHeader
    transactions: List[Transaction] = field(default_factory=list)
    receipts: List[Receipt] = field(default_factory=list)
    seal: Optional[Tuple[int, int]] = None
    proposer_public_key: Optional[Tuple[int, int]] = None

    @property
    def hash(self) -> str:
        return self.header.hash

    @property
    def number(self) -> int:
        return self.header.number

    @staticmethod
    def compute_transactions_root(transactions: List[Transaction]) -> str:
        return merkle_root(canonical_json(tx.to_dict()) for tx in transactions)

    @staticmethod
    def compute_receipts_root(receipts: List[Receipt]) -> str:
        return merkle_root(canonical_json(receipt.to_dict()) for receipt in receipts)

    def verify_roots(self) -> None:
        """Check the header's Merkle roots against the block body."""
        expected_tx_root = self.compute_transactions_root(self.transactions)
        if expected_tx_root != self.header.transactions_root:
            raise IntegrityError(
                f"transactions root mismatch in block {self.number}: "
                f"{expected_tx_root} != {self.header.transactions_root}"
            )
        expected_receipts_root = self.compute_receipts_root(self.receipts)
        if expected_receipts_root != self.header.receipts_root:
            raise IntegrityError(
                f"receipts root mismatch in block {self.number}: "
                f"{expected_receipts_root} != {self.header.receipts_root}"
            )

    def verify_seal(self) -> None:
        """Check the proposer's signature over the header."""
        if self.seal is None or self.proposer_public_key is None:
            raise IntegrityError(f"block {self.number} is not sealed")
        from repro.blockchain.crypto import address_from_public_key

        if address_from_public_key(self.proposer_public_key) != self.header.proposer:
            raise IntegrityError(f"block {self.number} seal key does not match proposer")
        if not verify(self.proposer_public_key, self.header.signing_payload(), self.seal):
            raise IntegrityError(f"block {self.number} seal signature is invalid")

    def to_dict(self) -> dict:
        return {
            "header": self.header.to_dict(),
            "transactions": [tx.to_dict() for tx in self.transactions],
            "receipts": [receipt.to_dict() for receipt in self.receipts],
            "seal": list(self.seal) if self.seal else None,
            "proposerPublicKey": list(self.proposer_public_key) if self.proposer_public_key else None,
            "hash": self.hash,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Block":
        block = cls(
            header=BlockHeader.from_dict(data["header"]),
            transactions=[Transaction.from_dict(tx) for tx in data.get("transactions", [])],
            receipts=[Receipt.from_dict(receipt) for receipt in data.get("receipts", [])],
        )
        if data.get("seal"):
            block.seal = tuple(data["seal"])  # type: ignore[assignment]
        if data.get("proposerPublicKey"):
            block.proposer_public_key = tuple(data["proposerPublicKey"])  # type: ignore[assignment]
        return block
