"""Accelerated secp256k1 group arithmetic.

The reference implementation in :mod:`repro.blockchain.crypto` works in
affine coordinates, paying one modular inversion (~20µs) per point addition
— a full scalar multiplication costs ~9ms, which dominates every signed
transaction and caps scenario populations at a few dozen participants.

This module provides the fast path the reference is pinned against:

* **Jacobian projective coordinates** — additions and doublings become a
  handful of modular multiplications; the single inversion happens when a
  result is converted back to affine.
* **Fixed-base precomputed tables** for the generator ``G`` — a comb of
  64 × 15 affine multiples (4-bit windows), so ``k·G`` (signing, key
  generation) is ~64 mixed additions and **zero doublings**.
* **wNAF / Shamir's trick** for verification — ``u1·G + u2·Q`` is computed
  in one interleaved ladder sharing its doublings, with a width-7 wNAF
  table for ``G`` (precomputed once) and a width-5 odd-multiples table for
  ``Q`` (cached per public key, LRU).
* **Montgomery batch inversion** to normalize whole tables with a single
  modular inversion.

Everything here is exact integer arithmetic over the same curve, so results
are bit-identical to the reference — a guarantee the Hypothesis suite in
``tests/blockchain/test_bc_crypto_fast_property.py`` pins.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

# secp256k1 domain parameters (duplicated from crypto.py to keep this module
# dependency-free; crypto.py asserts the two agree at import time).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

AffinePoint = Tuple[int, int]
# Jacobian (X, Y, Z) with x = X/Z^2, y = Y/Z^3; None is the point at infinity.
JacobianPoint = Optional[Tuple[int, int, int]]

_COMB_WINDOW = 4
_COMB_WINDOWS = 64  # 256 bits / 4-bit windows
_G_NAF_WIDTH = 7    # wNAF width for the fixed generator table (32 odd multiples)
_Q_NAF_WIDTH = 5    # wNAF width for per-public-key tables (8 odd multiples)

# Must exceed the number of distinct signers a scenario re-verifies in a
# cycle: an LRU cycled over more keys than it holds misses on every lookup,
# so each verification silently rebuilds its table and per-participant cost
# goes superlinear right past the limit (observed at 5k consumers when this
# was 4096).  Sized for the 10k-consumer sweep plus validators/owners;
# a width-5 table is 8 affine points (~1 KB), so the cap is ~16 MB.
_PUBKEY_TABLE_LIMIT = 16384


# -- Jacobian primitives -------------------------------------------------------


def jac_double(point: JacobianPoint) -> JacobianPoint:
    """Double a Jacobian point (a = 0 curve)."""
    if point is None:
        return None
    x1, y1, z1 = point
    if y1 == 0:
        return None
    yy = y1 * y1 % P
    s = 4 * x1 * yy % P
    m = 3 * x1 * x1 % P
    x3 = (m * m - 2 * s) % P
    y3 = (m * (s - x3) - 8 * yy * yy) % P
    z3 = 2 * y1 * z1 % P
    return (x3, y3, z3)


def jac_add(a: JacobianPoint, b: JacobianPoint) -> JacobianPoint:
    """General Jacobian + Jacobian addition (used only to build tables)."""
    if a is None:
        return b
    if b is None:
        return a
    x1, y1, z1 = a
    x2, y2, z2 = b
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2 * z2z2 % P
    s2 = y2 * z1 * z1z1 % P
    if u1 == u2:
        if s1 != s2:
            return None
        return jac_double(a)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    hh = h * h % P
    hhh = hh * h % P
    v = u1 * hh % P
    x3 = (r * r - hhh - 2 * v) % P
    y3 = (r * (v - x3) - s1 * hhh) % P
    z3 = z1 * z2 % P * h % P
    return (x3, y3, z3)


def jac_add_affine(a: JacobianPoint, b: AffinePoint) -> JacobianPoint:
    """Mixed addition: Jacobian accumulator + affine table entry (Z2 = 1)."""
    x2, y2 = b
    if a is None:
        return (x2, y2, 1)
    x1, y1, z1 = a
    z1z1 = z1 * z1 % P
    u2 = x2 * z1z1 % P
    s2 = y2 * z1 % P * z1z1 % P
    if u2 == x1:
        if s2 != y1:
            return None
        return jac_double(a)
    h = (u2 - x1) % P
    r = (s2 - y1) % P
    hh = h * h % P
    hhh = hh * h % P
    v = x1 * hh % P
    x3 = (r * r - hhh - 2 * v) % P
    y3 = (r * (v - x3) - y1 * hhh) % P
    z3 = z1 * h % P
    return (x3, y3, z3)


def jac_to_affine(point: JacobianPoint) -> Optional[AffinePoint]:
    """Convert back to affine coordinates (one modular inversion)."""
    if point is None:
        return None
    x, y, z = point
    z_inv = pow(z, -1, P)
    z_inv2 = z_inv * z_inv % P
    return (x * z_inv2 % P, y * z_inv2 % P * z_inv % P)


def batch_to_affine(points: List[Tuple[int, int, int]]) -> List[AffinePoint]:
    """Normalize many Jacobian points with one inversion (Montgomery's trick)."""
    if not points:
        return []
    prefix: List[int] = []
    acc = 1
    for _, _, z in points:
        acc = acc * z % P
        prefix.append(acc)
    inv = pow(acc, -1, P)
    out: List[Optional[AffinePoint]] = [None] * len(points)
    for i in range(len(points) - 1, -1, -1):
        x, y, z = points[i]
        z_inv = inv * (prefix[i - 1] if i else 1) % P
        inv = inv * z % P
        z_inv2 = z_inv * z_inv % P
        out[i] = (x * z_inv2 % P, y * z_inv2 % P * z_inv % P)
    return out  # type: ignore[return-value]


def is_on_curve(point: Optional[AffinePoint]) -> bool:
    """Check that an affine point satisfies y^2 = x^3 + 7 over the field."""
    if point is None:
        return False
    try:
        x, y = point
    except (TypeError, ValueError):
        return False
    if not (isinstance(x, int) and isinstance(y, int)):
        return False
    if not (0 <= x < P and 0 <= y < P):
        return False
    return (y * y - (x * x * x + 7)) % P == 0


# -- precomputed tables --------------------------------------------------------

_comb_table: Optional[List[List[AffinePoint]]] = None
_g_naf_table: Optional[List[AffinePoint]] = None
# public key (affine tuple) -> width-5 odd-multiples table, LRU-evicted.
_pubkey_tables: "OrderedDict[AffinePoint, List[AffinePoint]]" = OrderedDict()


def _odd_multiples(point: AffinePoint, count: int) -> List[AffinePoint]:
    """[1P, 3P, 5P, ..., (2·count−1)P] as affine points (one inversion)."""
    base: JacobianPoint = (point[0], point[1], 1)
    step = jac_double(base)
    jacs: List[Tuple[int, int, int]] = [base]  # type: ignore[list-item]
    for _ in range(count - 1):
        jacs.append(jac_add(jacs[-1], step))  # type: ignore[arg-type]
    return batch_to_affine(jacs)


def comb_table() -> List[List[AffinePoint]]:
    """64 windows × 15 entries: table[w][d-1] = (d << 4w)·G, affine."""
    global _comb_table
    if _comb_table is None:
        rows: List[Tuple[int, int, int]] = []
        base: JacobianPoint = (GX, GY, 1)
        for _ in range(_COMB_WINDOWS):
            row = [base]
            for _ in range(14):
                row.append(jac_add(row[-1], base))
            rows.extend(row)  # type: ignore[arg-type]
            # next window's base is 16× this one: row[7] = 8·base, doubled.
            base = jac_double(row[7])
        flat = batch_to_affine(rows)
        _comb_table = [flat[i * 15:(i + 1) * 15] for i in range(_COMB_WINDOWS)]
    return _comb_table


def g_naf_table() -> List[AffinePoint]:
    """Odd multiples of G for width-7 wNAF: [G, 3G, ..., 63G] (digits ≤ ±63)."""
    global _g_naf_table
    if _g_naf_table is None:
        _g_naf_table = _odd_multiples((GX, GY), 1 << (_G_NAF_WIDTH - 2))
    return _g_naf_table


def table_for_pubkey(point: AffinePoint) -> List[AffinePoint]:
    """Width-5 odd-multiples table for *point*, built once per key (LRU).

    This is the amortization behind batched verification: a monitoring block
    carrying K transactions from M distinct senders builds M tables, not K.
    """
    table = _pubkey_tables.get(point)
    if table is None:
        table = _odd_multiples(point, 1 << (_Q_NAF_WIDTH - 2))
        _pubkey_tables[point] = table
        if len(_pubkey_tables) > _PUBKEY_TABLE_LIMIT:
            _pubkey_tables.popitem(last=False)
    else:
        _pubkey_tables.move_to_end(point)
    return table


def clear_tables() -> None:
    """Drop every cached table (tests and memory-pressure hooks)."""
    global _comb_table, _g_naf_table
    _comb_table = None
    _g_naf_table = None
    _pubkey_tables.clear()


# -- scalar multiplication -----------------------------------------------------


def wnaf(k: int, width: int) -> List[int]:
    """Non-adjacent form of *k* with the given window width (LSB first)."""
    digits: List[int] = []
    mask = (1 << width) - 1
    half = 1 << (width - 1)
    full = 1 << width
    while k:
        if k & 1:
            digit = k & mask
            if digit >= half:
                digit -= full
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits


def mul_g(k: int) -> Optional[AffinePoint]:
    """k·G via the fixed-base comb: ~64 mixed additions, no doublings."""
    k %= N
    if k == 0:
        return None
    table = comb_table()
    acc: JacobianPoint = None
    window = 0
    while k:
        digit = k & 15
        if digit:
            acc = jac_add_affine(acc, table[window][digit - 1])
        k >>= _COMB_WINDOW
        window += 1
    return jac_to_affine(acc)


def mul_point(k: int, point: Optional[AffinePoint]) -> Optional[AffinePoint]:
    """k·P for an arbitrary (on-curve) point via width-5 wNAF."""
    k %= N
    if k == 0 or point is None:
        return None
    table = table_for_pubkey(point)
    digits = wnaf(k, _Q_NAF_WIDTH)
    acc: JacobianPoint = None
    for i in range(len(digits) - 1, -1, -1):
        acc = jac_double(acc)
        digit = digits[i]
        if digit:
            px, py = table[abs(digit) >> 1]
            acc = jac_add_affine(acc, (px, py if digit > 0 else P - py))
    return jac_to_affine(acc)


def shamir_mul(u1: int, u2: int, point: Optional[AffinePoint],
               point_table: Optional[List[AffinePoint]] = None) -> Optional[AffinePoint]:
    """u1·G + u2·P in one interleaved wNAF ladder (shared doublings).

    *point_table* lets a caller that already fetched the per-key table (the
    batch verifier) skip the cache lookup.
    """
    u1 %= N
    u2 %= N
    if u2 == 0 or point is None:
        return mul_g(u1)
    g_digits = wnaf(u1, _G_NAF_WIDTH)
    q_digits = wnaf(u2, _Q_NAF_WIDTH)
    g_table = g_naf_table()
    q_table = point_table if point_table is not None else table_for_pubkey(point)
    acc: JacobianPoint = None
    for i in range(max(len(g_digits), len(q_digits)) - 1, -1, -1):
        acc = jac_double(acc)
        if i < len(g_digits) and g_digits[i]:
            digit = g_digits[i]
            px, py = g_table[abs(digit) >> 1]
            acc = jac_add_affine(acc, (px, py if digit > 0 else P - py))
        if i < len(q_digits) and q_digits[i]:
            digit = q_digits[i]
            px, py = q_table[abs(digit) >> 1]
            acc = jac_add_affine(acc, (px, py if digit > 0 else P - py))
    return jac_to_affine(acc)
