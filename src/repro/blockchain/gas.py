"""Gas schedule and metering.

Section V-4 of the paper (affordability) hinges on the cost of on-chain code:
"The execution of on-chain code requires that cryptocurrencies are spent,
depending on the computational effort required by the run of the code."  The
gas schedule below is calibrated on the same order of magnitude as Ethereum's
(21k base transaction cost, 20k per fresh storage slot, 5k per update), so
the affordability benchmark produces cost figures with a realistic shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import OutOfGasError, ValidationError


@dataclass(frozen=True)
class GasSchedule:
    """Per-operation gas costs charged by the contract VM."""

    tx_base: int = 21_000
    tx_data_per_byte: int = 16
    contract_creation: int = 32_000
    storage_set: int = 20_000       # writing a fresh storage slot
    storage_update: int = 5_000     # overwriting an existing slot
    storage_clear_refund: int = 4_800
    storage_read: int = 2_100
    log_base: int = 375
    log_per_byte: int = 8
    call: int = 700
    transfer: int = 9_000
    compute_step: int = 3           # generic unit of computation

    def intrinsic_gas(self, data_size: int, creates_contract: bool) -> int:
        """Gas charged before the contract code even runs."""
        gas = self.tx_base + self.tx_data_per_byte * data_size
        if creates_contract:
            gas += self.contract_creation
        return gas


class GasMeter:
    """Tracks the gas consumed by a single transaction execution."""

    def __init__(self, gas_limit: int, schedule: GasSchedule | None = None):
        if gas_limit <= 0:
            raise ValidationError("gas limit must be positive")
        self.gas_limit = gas_limit
        self.schedule = schedule if schedule is not None else GasSchedule()
        self.gas_used = 0
        self.refund = 0

    @property
    def gas_remaining(self) -> int:
        return self.gas_limit - self.gas_used

    def charge(self, amount: int, reason: str = "") -> None:
        """Consume *amount* gas, raising :class:`OutOfGasError` past the limit."""
        if amount < 0:
            raise ValidationError("gas amounts must be non-negative")
        self.gas_used += amount
        if self.gas_used > self.gas_limit:
            raise OutOfGasError(
                f"out of gas: limit {self.gas_limit}, needed {self.gas_used}"
                + (f" ({reason})" if reason else "")
            )

    def charge_storage_write(self, is_new_slot: bool) -> None:
        self.charge(self.schedule.storage_set if is_new_slot else self.schedule.storage_update, "sstore")

    def charge_storage_read(self) -> None:
        self.charge(self.schedule.storage_read, "sload")

    def charge_storage_clear(self) -> None:
        self.charge(self.schedule.storage_update, "sclear")
        self.refund += self.schedule.storage_clear_refund

    def charge_log(self, payload_size: int) -> None:
        self.charge(self.schedule.log_base + self.schedule.log_per_byte * payload_size, "log")

    def charge_compute(self, steps: int = 1) -> None:
        self.charge(self.schedule.compute_step * steps, "compute")

    def charge_call(self) -> None:
        self.charge(self.schedule.call, "call")

    def finalize(self) -> int:
        """Return the final gas figure after applying the capped refund."""
        applied_refund = min(self.refund, self.gas_used // 5)
        return self.gas_used - applied_refund
