"""Contract execution environment.

Smart contracts are Python classes registered with a :class:`ContractRegistry`
(the reproduction's analogue of deploying bytecode).  The VM executes them
deterministically against the :class:`~repro.blockchain.state.WorldState`
under gas metering:

* every storage read/write/delete goes through a :class:`StorageProxy` that
  charges the gas schedule;
* events are emitted through the execution context and become receipt logs;
* any exception raised by contract code reverts the transaction — the
  journal frame opened before execution is rolled back (O(touched slots),
  see :meth:`~repro.blockchain.state.WorldState.rollback`) and the receipt
  carries the revert reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Type

from repro.common.errors import (
    ContractError,
    InsufficientFundsError,
    NotFoundError,
    OutOfGasError,
    ValidationError,
)
from repro.common.serialization import canonical_json
from repro.blockchain.crypto import sha256_hex
from repro.blockchain.gas import GasMeter, GasSchedule
from repro.blockchain.state import WorldState
from repro.blockchain.transaction import LogEntry, Receipt, Transaction


@dataclass
class BlockContext:
    """Block-level values visible to contract code."""

    number: int = 0
    timestamp: float = 0.0
    proposer: str = "0x" + "00" * 20


@dataclass
class ExecutionContext:
    """Per-call context: message sender, value, block info, gas, and logs."""

    sender: str
    contract_address: str
    value: int = 0
    block: BlockContext = field(default_factory=BlockContext)
    gas_meter: Optional[GasMeter] = None
    logs: List[LogEntry] = field(default_factory=list)
    read_only: bool = False


class StorageProxy:
    """Dictionary-like view over a contract's storage that meters gas."""

    def __init__(self, state: WorldState, address: str, context: ExecutionContext):
        self._state = state
        self._address = address
        self._context = context

    def _charge(self, kind: str, is_new: bool = False, payload: Any = None) -> None:
        meter = self._context.gas_meter
        if meter is None:
            return
        if kind == "read":
            meter.charge_storage_read()
        elif kind == "write":
            meter.charge_storage_write(is_new)
        elif kind == "delete":
            meter.charge_storage_clear()

    def get(self, key: str, default: Any = None) -> Any:
        self._charge("read")
        return self._state.storage_read(self._address, key, default)

    def __getitem__(self, key: str) -> Any:
        self._charge("read")
        value = self._state.storage_read(self._address, key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __setitem__(self, key: str, value: Any) -> None:
        if self._context.read_only:
            raise ContractError("storage writes are not allowed in read-only calls")
        is_new = self._state.storage_write(self._address, key, value)
        self._charge("write", is_new=is_new)

    def __delitem__(self, key: str) -> None:
        if self._context.read_only:
            raise ContractError("storage writes are not allowed in read-only calls")
        existed = self._state.storage_delete(self._address, key)
        if not existed:
            raise KeyError(key)
        self._charge("delete")

    def __contains__(self, key: str) -> bool:
        self._charge("read")
        return self._state.storage_read(self._address, key, _MISSING) is not _MISSING

    def keys(self) -> List[str]:
        """Return every slot key, **deterministically sorted**.

        Ordering contract: :meth:`keys` and :meth:`items` sort by slot key,
        so the order contract code observes is a pure function of the slot
        *contents* and can never depend on dict insertion history — which
        may differ between a replica that replayed the chain and one that
        restored a snapshot or ran a storage migration.
        """
        self._charge("read")
        return sorted(self._state.storage_keys(self._address))

    def items(self) -> List[tuple]:
        """Return every ``(slot key, value)`` pair, sorted by slot key.

        See :meth:`keys` for the ordering contract.
        """
        self._charge("read")
        return sorted(self._state.storage_of(self._address).items())

    def setdefault(self, key: str, default: Any) -> Any:
        """Return the stored value for *key*, writing *default* on a miss.

        Charges exactly one storage read on a hit, and one read plus one
        write on a miss.  (The seed routed this through ``__contains__``
        followed by ``__getitem__``, metering the read twice on a hit.)
        """
        self._charge("read")
        value = self._state.storage_read(self._address, key, _MISSING)
        if value is not _MISSING:
            return value
        if self._context.read_only:
            raise ContractError("storage writes are not allowed in read-only calls")
        is_new = self._state.storage_write(self._address, key, default)
        self._charge("write", is_new=is_new)
        return default

    # -- per-entry operations ---------------------------------------------------
    #
    # These touch one entry of a dict- or list-valued slot.  They cost the
    # same gas as a whole-slot access (one read, or one write priced by
    # entry freshness) but copy and journal O(one entry), which is what
    # keeps contract methods that maintain large on-chain collections
    # independent of the collection size.

    def get_entry(self, key: str, entry_key: str, default: Any = None) -> Any:
        """Read one entry of a dict-valued slot (one metered read)."""
        self._charge("read")
        return self._state.storage_read_entry(self._address, key, str(entry_key), default)

    def has_entry(self, key: str, entry_key: str) -> bool:
        """Membership test on a dict-valued slot (one metered read)."""
        self._charge("read")
        return self._state.storage_has_entry(self._address, key, str(entry_key))

    def entry_count(self, key: str) -> int:
        """Number of entries in a dict- or list-valued slot (one metered read)."""
        self._charge("read")
        return self._state.storage_entry_count(self._address, key)

    def set_entry(self, key: str, entry_key: str, value: Any) -> bool:
        """Write one entry of a dict-valued slot; returns True when it is new.

        A fresh entry is priced like a fresh slot; overwriting an existing
        entry is priced like a slot update.
        """
        if self._context.read_only:
            raise ContractError("storage writes are not allowed in read-only calls")
        is_new = self._state.storage_write_entry(self._address, key, str(entry_key), value)
        self._charge("write", is_new=is_new)
        return is_new

    def delete_entry(self, key: str, entry_key: str) -> bool:
        """Delete one entry of a dict-valued slot; returns True when it existed."""
        if self._context.read_only:
            raise ContractError("storage writes are not allowed in read-only calls")
        existed = self._state.storage_delete_entry(self._address, key, str(entry_key))
        self._charge("delete" if existed else "read")
        return existed

    def append(self, key: str, value: Any) -> int:
        """Append to a list-valued slot; returns the new length.

        Journals a single "pop" undo entry, so appending to a long list
        never copies the existing elements.
        """
        if self._context.read_only:
            raise ContractError("storage writes are not allowed in read-only calls")
        length, is_new_slot = self._state.storage_append(self._address, key, value)
        self._charge("write", is_new=is_new_slot)
        return length

    def get_item(self, key: str, index: int, default: Any = None) -> Any:
        """Read one element of a list-valued slot (one metered read)."""
        self._charge("read")
        return self._state.storage_read_item(self._address, key, int(index), default)

    def set_item(self, key: str, index: int, value: Any) -> None:
        """Overwrite one existing element of a list-valued slot.

        Priced like a slot update; the journal records only the replaced
        element, so patching one entry of a long on-chain list never copies
        or re-journals the rest of it.
        """
        if self._context.read_only:
            raise ContractError("storage writes are not allowed in read-only calls")
        self._state.storage_write_item(self._address, key, int(index), value)
        self._charge("write", is_new=False)


_MISSING = object()


class SmartContract:
    """Base class for every smart contract of the reproduction.

    Subclasses implement public methods; a method name starting with an
    underscore is internal and cannot be invoked through a transaction.
    Contract code interacts with the chain exclusively through:

    * ``self.storage`` — metered persistent storage;
    * ``self.msg_sender`` / ``self.msg_value`` — the transaction context;
    * ``self.block_timestamp`` / ``self.block_number`` — block context;
    * ``self.emit(event, **data)`` — event logs picked up by oracles;
    * ``self.require(condition, message)`` — revert helper;
    * ``self.transfer(recipient, amount)`` — move contract-held funds.
    """

    def __init__(self, address: str, state: WorldState, context: ExecutionContext):
        self.address = address
        self._state = state
        self._context = context
        self.storage = StorageProxy(state, address, context)

    # -- transaction / block context ---------------------------------------

    @property
    def msg_sender(self) -> str:
        return self._context.sender

    @property
    def msg_value(self) -> int:
        return self._context.value

    @property
    def block_timestamp(self) -> float:
        return self._context.block.timestamp

    @property
    def block_number(self) -> int:
        return self._context.block.number

    # -- helpers -------------------------------------------------------------

    def require(self, condition: bool, message: str = "requirement failed") -> None:
        """Revert the transaction when *condition* does not hold."""
        if not condition:
            raise ContractError(message)

    def emit(self, event: str, **data: Any) -> LogEntry:
        """Emit an event log (push-out oracles subscribe to these)."""
        entry = LogEntry(address=self.address, event=event, data=data)
        if self._context.gas_meter is not None:
            self._context.gas_meter.charge_log(len(canonical_json(data)))
        if self._context.read_only:
            raise ContractError("events cannot be emitted in read-only calls")
        self._context.logs.append(entry)
        return entry

    def transfer(self, recipient: str, amount: int) -> None:
        """Transfer funds held by the contract account to *recipient*."""
        if self._context.read_only:
            raise ContractError("transfers are not allowed in read-only calls")
        if self._context.gas_meter is not None:
            self._context.gas_meter.charge(self._context.gas_meter.schedule.transfer, "transfer")
        self._state.transfer(self.address, recipient, amount)

    def balance(self) -> int:
        """Return the contract account's current balance."""
        return self._state.balance_of(self.address)

    # -- lifecycle -------------------------------------------------------------

    def constructor(self, **kwargs: Any) -> None:
        """Initialization hook executed once at deployment."""

    # -- entrypoint metadata ---------------------------------------------------

    @classmethod
    def public_entrypoints(cls) -> List[str]:
        """Names of the methods invocable through a transaction, sorted.

        A transaction entrypoint is a public method *defined by the contract
        subclass* (or an intermediate subclass).  Framework methods inherited
        from :class:`SmartContract` itself — ``transfer``, ``emit``,
        ``require``, ``balance``, ``constructor`` — are not entrypoints: a
        transaction naming them is rejected by the VM.  The static analyzer
        (``repro.analysis``) keys on this resolution when deciding which
        methods form a contract's public attack surface.
        """
        base = set(vars(SmartContract))
        names = set()
        for klass in cls.__mro__:
            if klass in (SmartContract, object):
                continue
            for name, attr in vars(klass).items():
                if name.startswith("_") or name in base:
                    continue
                if callable(attr):
                    names.add(name)
        return sorted(names)


#: Callable methods the framework base class provides to contract code.
#: ``_invoke`` refuses transactions naming them (a caller-chosen ``transfer``
#: would drain contract funds; ``constructor`` would re-initialize state) and
#: the static analyzer excludes them from entrypoint resolution.
CONTRACT_FRAMEWORK_METHODS = frozenset(
    name
    for name, attr in vars(SmartContract).items()
    if not name.startswith("_") and callable(attr)
)

#: Every attribute the base class defines on contract instances.  Contract
#: subclasses must keep persistent state in ``self.storage`` only; the
#: analyzer flags assignments to any other ``self.`` attribute.
CONTRACT_FRAMEWORK_ATTRIBUTES = frozenset(
    name for name in vars(SmartContract) if not name.startswith("__")
) | {"address", "storage", "_state", "_context"}

#: Deterministic context reads contract code may use instead of ambient
#: nondeterminism (``self.block_timestamp`` instead of ``time.time()``, …).
CONTRACT_CONTEXT_READS = frozenset(
    {"msg_sender", "msg_value", "block_timestamp", "block_number"}
)


class ContractRegistry:
    """Registry mapping contract class names to classes (the 'code store')."""

    def __init__(self):
        self._classes: Dict[str, Type[SmartContract]] = {}

    def register(self, contract_class: Type[SmartContract], name: Optional[str] = None) -> str:
        key = name or contract_class.__name__
        if not issubclass(contract_class, SmartContract):
            raise ValidationError("contract classes must derive from SmartContract")
        self._classes[key] = contract_class
        return key

    def get(self, name: str) -> Type[SmartContract]:
        if name not in self._classes:
            raise NotFoundError(f"unknown contract class {name!r}")
        return self._classes[name]

    def known(self) -> List[str]:
        return sorted(self._classes)


class ContractVM:
    """Executes transactions against the world state."""

    def __init__(self, state: WorldState, registry: Optional[ContractRegistry] = None,
                 schedule: Optional[GasSchedule] = None):
        self.state = state
        self.registry = registry if registry is not None else ContractRegistry()
        self.schedule = schedule if schedule is not None else GasSchedule()

    # -- address derivation ----------------------------------------------------

    @staticmethod
    def contract_address(sender: str, nonce: int) -> str:
        """Derive a deterministic contract address from the creator and nonce."""
        return "0x" + sha256_hex(canonical_json({"sender": sender, "nonce": nonce}))[:40]

    # -- execution ----------------------------------------------------------------

    def execute_transaction(self, tx: Transaction, block: BlockContext) -> Receipt:
        """Apply *tx* to the state and return its receipt.

        Failed executions (revert, out of gas, invalid call) consume the gas
        used up to the failure point but leave the rest of the state
        untouched.
        """
        sender_account = self.state.get_or_create_account(tx.sender)
        if tx.nonce != sender_account.nonce:
            # A mismatched nonce is rejected outright: no state change, no gas,
            # and the account nonce stays put so the correct transaction can
            # still be processed.
            return Receipt(
                transaction_hash=tx.hash,
                status=False,
                gas_used=0,
                logs=[],
                error=(
                    f"bad nonce for {tx.sender}: transaction has {tx.nonce}, "
                    f"account is at {sender_account.nonce}"
                ),
            )

        meter = GasMeter(tx.gas_limit, self.schedule)
        context = ExecutionContext(
            sender=tx.sender,
            contract_address=tx.to or "",
            value=tx.value,
            block=block,
            gas_meter=meter,
        )
        contract_address: Optional[str] = None
        frame_depth = self.state.begin()
        try:
            meter.charge(self.schedule.intrinsic_gas(tx.data_size, tx.is_contract_creation), "intrinsic")
            self.state.bump_nonce(tx.sender)

            if tx.is_contract_creation:
                contract_address = self._deploy(tx, context)
                return_value = contract_address
            else:
                return_value = self._call(tx, context)

            gas_used = meter.finalize()
            self._charge_gas_fee(tx, gas_used)
            # Built before commit() so nothing in the try block can raise
            # once the frame is closed.
            receipt = Receipt(
                transaction_hash=tx.hash,
                status=True,
                gas_used=gas_used,
                logs=list(context.logs),
                contract_address=contract_address,
                return_value=_jsonable(return_value),
            )
            self.state.commit()
            return receipt
        except (ContractError, ValidationError, NotFoundError, InsufficientFundsError, OutOfGasError) as exc:
            self.state.rollback()
            # The sender still pays for the gas burned by the failed attempt
            # (re-applied on the reverted state), and its nonce advances so
            # the transaction cannot be replayed.
            gas_used = min(meter.gas_used, tx.gas_limit)
            self.state.bump_nonce(tx.sender)
            try:
                self._charge_gas_fee(tx, gas_used)
            except InsufficientFundsError:
                self.state.set_balance(tx.sender, 0)
            return Receipt(
                transaction_hash=tx.hash,
                status=False,
                gas_used=gas_used,
                logs=[],
                contract_address=None,
                error=str(exc),
            )
        except BaseException:
            # An exception outside the revert taxonomy (a bug in contract
            # code or the VM) must not leak an open journal frame: undo the
            # partial execution — including any frames the contract itself
            # leaked — before propagating.  Frames below ours (e.g. after a
            # successful commit) are left alone.
            while self.state.journal_depth >= frame_depth:
                self.state.rollback()
            raise

    def _deploy(self, tx: Transaction, context: ExecutionContext) -> str:
        class_name = tx.data.get("contract_class")
        if not class_name:
            raise ValidationError("contract creation transactions must name a contract_class")
        contract_class = self.registry.get(class_name)
        sender_account = self.state.get_account(tx.sender)
        address = self.contract_address(tx.sender, sender_account.nonce)
        self.state.create_account(address, contract_class=class_name)
        if tx.value:
            self.state.transfer(tx.sender, address, tx.value)
        context.contract_address = address
        instance = contract_class(address, self.state, context)
        instance.constructor(**tx.data.get("init_args", {}))
        return address

    def _call(self, tx: Transaction, context: ExecutionContext) -> Any:
        assert tx.to is not None
        target = self.state.get_or_create_account(tx.to)
        if tx.value:
            self.state.transfer(tx.sender, tx.to, tx.value)
        if not target.is_contract:
            # Plain value transfer to an externally owned account.
            context.gas_meter.charge(self.schedule.transfer, "transfer")  # type: ignore[union-attr]
            return None
        method_name = tx.data.get("method")
        if not method_name:
            raise ValidationError("contract call transactions must name a method")
        return self._invoke(tx.to, method_name, tx.data.get("args", {}), context)

    def _invoke(self, address: str, method_name: str, args: Dict[str, Any],
                context: ExecutionContext) -> Any:
        account = self.state.get_account(address)
        if not account.is_contract:
            raise ValidationError(f"account {address} is not a contract")
        contract_class = self.registry.get(account.contract_class)  # type: ignore[arg-type]
        context.contract_address = address
        instance = contract_class(address, self.state, context)
        if method_name in CONTRACT_FRAMEWORK_METHODS:
            # Framework helpers (transfer, emit, require, balance,
            # constructor, …) are part of the execution environment, not of
            # the contract's ABI: letting a transaction name them would let
            # any caller drain contract funds or re-run the constructor.
            raise ContractError(
                f"{method_name!r} is a framework method, not an entrypoint of "
                f"{account.contract_class}"
            )
        if method_name.startswith("_") or not hasattr(instance, method_name):
            raise ContractError(f"contract {account.contract_class} has no public method {method_name!r}")
        method = getattr(instance, method_name)
        if not callable(method):
            raise ContractError(f"{method_name!r} is not callable")
        if context.gas_meter is not None:
            context.gas_meter.charge_call()
        return method(**args)

    def call_readonly(self, address: str, method_name: str, args: Optional[Dict[str, Any]] = None,
                      caller: Optional[str] = None, block: Optional[BlockContext] = None) -> Any:
        """Execute a read-only call (no gas fee, no state mutation allowed)."""
        context = ExecutionContext(
            sender=caller or "0x" + "00" * 20,
            contract_address=address,
            block=block if block is not None else BlockContext(),
            gas_meter=None,
            read_only=True,
        )
        return self._invoke(address, method_name, args or {}, context)

    def _charge_gas_fee(self, tx: Transaction, gas_used: int) -> None:
        fee = gas_used * tx.gas_price
        if fee:
            self.state.debit(tx.sender, fee)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of contract return values to JSON-compatible data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return str(value)
