"""Blockchain node: transaction pool, block production, and an RPC-like facade.

Off-chain components (pod managers' blockchain interaction modules, the
oracle components, the TEE's evidence publisher) never touch the chain
internals directly; they talk to a :class:`BlockchainNode`, which mirrors the
surface a JSON-RPC endpoint would expose: submit signed transactions, query
receipts and logs, perform read-only contract calls, and register event
filters.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.common.clock import Clock
from repro.common.errors import IntegrityError, SignatureError, ValidationError
from repro.blockchain.block import Block
from repro.blockchain.chain import DEFAULT_MAX_REORG_DEPTH, Blockchain
from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.crypto import KeyPair
from repro.blockchain.gas import GasSchedule
from repro.blockchain.storage import ChainStore, RecoveryReport
from repro.blockchain.transaction import LogEntry, Receipt, Transaction, verify_transactions
from repro.blockchain.vm import BlockContext, ContractRegistry


@dataclass
class EventFilter:
    """A subscription over contract event logs.

    ``address`` and ``event`` narrow the logs delivered; ``callback`` (when
    given) is invoked synchronously for each matching log as blocks are
    produced — this is exactly the hook the push-out oracle's off-chain
    component uses.
    """

    address: Optional[str] = None
    event: Optional[str] = None
    callback: Optional[Callable[[LogEntry], None]] = None
    from_block: int = 0
    collected: List[LogEntry] = field(default_factory=list)
    active: bool = True

    def matches(self, log: LogEntry) -> bool:
        if not self.active:
            return False
        if self.address is not None and log.address != self.address:
            return False
        if self.event is not None and log.event != self.event:
            return False
        if log.block_number is not None and log.block_number < self.from_block:
            return False
        return True

    def deliver(self, log: LogEntry) -> None:
        self.collected.append(log)
        if self.callback is not None:
            self.callback(log)

    def stop(self) -> None:
        self.active = False


class BlockchainNode:
    """A validating node with a pending-transaction pool and event filters."""

    def __init__(self, consensus: ProofOfAuthority, validator_key: KeyPair,
                 registry: Optional[ContractRegistry] = None,
                 schedule: Optional[GasSchedule] = None,
                 clock: Optional[Clock] = None,
                 genesis_balances: Optional[Dict[str, int]] = None,
                 require_signatures: bool = True,
                 persist_dir: Optional[str] = None,
                 max_reorg_depth: Optional[int] = None,
                 snapshot_interval: int = 0,
                 genesis_timestamp: Optional[float] = None,
                 root_scheme: Optional[int] = None):
        # A static committee is closed: the node's key must be in it.  An
        # epoch-aware deployment admits keys outside the genesis set — a
        # joiner's authority comes from the registry contract, and the slot
        # schedule (not node construction) decides who may seal.
        if consensus.epoch_length <= 0 and not consensus.is_validator(validator_key.address):
            raise ValidationError("the node's key must belong to the validator set")
        self.consensus = consensus
        self.validator_key = validator_key
        self.chain = Blockchain(
            consensus, registry, schedule, clock, genesis_balances,
            max_reorg_depth=(
                max_reorg_depth if max_reorg_depth is not None
                else DEFAULT_MAX_REORG_DEPTH
            ),
            genesis_timestamp=genesis_timestamp,
            root_scheme=root_scheme,
        )
        # Populated by open_from_disk with what recovery found on disk.
        self.recovery: Optional[RecoveryReport] = None
        if persist_dir is not None:
            store = ChainStore.create(
                persist_dir,
                genesis_balances or {},
                list(consensus.validators),
                consensus.block_interval,
                self.chain.max_reorg_depth,
                epoch_length=consensus.epoch_length,
                snapshot_interval=snapshot_interval,
                require_signatures=require_signatures,
                genesis_timestamp=self.chain.blocks[0].header.timestamp,
                root_scheme=self.chain.root_scheme,
            )
            self.chain.attach_store(store)
            for name in self.registry.known():
                store.record_contract(name, self.registry.get(name))
        self.pending: List[Transaction] = []
        self._pending_by_sender: Dict[str, int] = {}
        # Transactions enqueued while a batch is active; their signatures are
        # checked in one amortized verify_batch pass at block production.
        self._deferred_verification: List[Transaction] = []
        # The TransactionBatch currently deferring submissions, if any;
        # batches are exclusive per node (see BlockchainInteractionModule.batch).
        self.active_batch: Optional[object] = None
        self.filters: List[EventFilter] = []
        # Filters indexed by their (address, event) narrowing, so delivering
        # a log consults only the filters that could match it — with one
        # filter per consumer device (policy-update subscriptions), scanning
        # every filter for every log made log dispatch O(devices x logs).
        self._filters_by_key: Dict[tuple, List[EventFilter]] = {}
        self.require_signatures = require_signatures
        self.blocks_produced = 0
        # Back-reference set by a BlockchainNetwork when this node is one
        # replica of a multi-validator deployment.  Submissions are then
        # broadcast to every replica and block production goes through the
        # network's proposer rotation instead of this node's key alone.
        self.network = None

    # -- registry / deployment helpers ----------------------------------------

    @property
    def registry(self) -> ContractRegistry:
        return self.chain.vm.registry

    def register_contract(self, contract_class, name: Optional[str] = None) -> str:
        """Make a contract class deployable on this node."""
        key = self.registry.register(contract_class, name)
        if self.chain.store is not None:
            self.chain.store.record_contract(key, contract_class)
        return key

    # -- durability -------------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: sync the chain store and release its handles."""
        if self.chain.store is not None:
            self.chain.store.close()

    def hard_crash(self, torn_tail: bool = False) -> None:
        """Simulate kill -9: drop the store handle without syncing.

        The manifest is left stale (records past its committed count form
        the unsynced tail) and *torn_tail* leaves a half-written record at
        the end of the log — both of which recovery must handle.
        """
        if self.chain.store is not None:
            self.chain.store.abandon(torn_tail=torn_tail)

    @staticmethod
    def _restore_registry(registry: ContractRegistry, store: ChainStore) -> None:
        """Make every durably recorded contract resolvable again.

        A class the caller already provided (the deployment's registry
        factory) wins; missing names are imported by their recorded
        module/qualname.  A recorded contract that can no longer be
        resolved is fatal — the chain's transactions would not replay.
        """
        known = set(registry.known())
        for entry in store.read_registry():
            name = entry.get("name")
            if name in known:
                continue
            try:
                target: Any = importlib.import_module(entry["module"])
                for part in entry["qualname"].split("."):
                    target = getattr(target, part)
            except Exception as exc:
                raise IntegrityError(
                    f"durable registry entry {name!r} -> "
                    f"{entry.get('module')}.{entry.get('qualname')} cannot be "
                    f"resolved: {exc}"
                ) from exc
            registry.register(target, name)

    @classmethod
    def open_from_disk(cls, persist_dir: str, validator_key: KeyPair,
                       registry: Optional[ContractRegistry] = None,
                       schedule: Optional[GasSchedule] = None,
                       clock: Optional[Clock] = None,
                       consensus: Optional[ProofOfAuthority] = None) -> "BlockchainNode":
        """Rebuild a node from its persist directory after a (hard) crash.

        Opens the store (verifying every record checksum and truncating any
        torn tail), reconstructs the consensus engine from the manifest —
        or cross-checks a provided one against it — restores the durable
        contract registry, and cold-starts the chain from the best valid
        snapshot plus a re-executed tail.  The resulting
        :class:`~repro.blockchain.storage.RecoveryReport` is left on
        ``node.recovery``.
        """
        store, report = ChainStore.open(persist_dir)
        if consensus is None:
            consensus = ProofOfAuthority(
                validators=store.validators,
                block_interval=store.block_interval,
                epoch_length=store.epoch_length,
            )
        else:
            if (
                list(consensus.validators) != store.validators
                or consensus.block_interval != store.block_interval
                or consensus.epoch_length != store.epoch_length
            ):
                raise IntegrityError(
                    f"chain store at {persist_dir} was written for a different "
                    f"genesis validator set, block interval, or epoch length "
                    f"than the provided consensus"
                )
            # The manifest cross-check covers genesis CONFIG only.  Rotation
            # history is chain STATE: start from a fresh engine and let
            # load_from_store re-derive the active set from restored contract
            # state instead of inheriting whatever the caller's engine holds.
            consensus = consensus.with_validators(store.validators)
        registry = registry if registry is not None else ContractRegistry()
        cls._restore_registry(registry, store)
        node = cls(
            consensus,
            validator_key,
            registry=registry,
            schedule=schedule,
            clock=clock,
            genesis_balances=store.genesis_balances,
            require_signatures=store.require_signatures,
            max_reorg_depth=store.max_reorg_depth,
            genesis_timestamp=store.genesis_timestamp,
            root_scheme=store.root_scheme,
        )
        node.chain.load_from_store(store, report)
        node.recovery = report
        return node

    # -- transaction submission --------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> str:
        """Validate and enqueue a signed transaction; returns its hash.

        On a networked node the transaction is broadcast to every online
        replica's mempool; otherwise it is enqueued locally.  Outside a
        batch the signature is checked immediately.  While a
        :class:`~repro.oracles.base.TransactionBatch` is active (a
        monitoring round confirming thousands of fulfillments in one
        block), verification is deferred and performed as a single
        amortized pass when the block is produced — an invalid signature
        still never reaches the chain, the error just surfaces at flush.
        """
        if self.network is not None:
            return self.network.broadcast_transaction(tx)
        return self.enqueue_transaction(tx)

    def enqueue_transaction(self, tx: Transaction, defer_verification: bool = False) -> str:
        """Add a transaction to this node's own pending pool.

        With *defer_verification* (replicas receiving a broadcast) the
        signature check is postponed to the amortized pre-production pass;
        the transaction can never reach the chain unverified.
        """
        if self.require_signatures:
            if defer_verification or self.active_batch is not None:
                self._deferred_verification.append(tx)
            elif not tx.verify_signature():
                raise SignatureError(f"transaction {tx.hash} carries an invalid signature")
        self.pending.append(tx)
        self._pending_by_sender[tx.sender] = self._pending_by_sender.get(tx.sender, 0) + 1
        return tx.hash

    def next_nonce(self, address: str) -> int:
        """Nonce the next transaction from *address* should carry.

        Accounts for transactions already sitting in the pending pool (via a
        per-sender counter, so queueing N transactions costs O(N), not
        O(N^2)) so a sender can queue several transactions for one block.
        """
        on_chain = 0
        if self.chain.state.has_account(address):
            on_chain = self.chain.state.get_account(address).nonce
        return on_chain + self._pending_by_sender.get(address, 0)

    # -- block production ------------------------------------------------------------

    def verify_deferred(self) -> List[Transaction]:
        """Batch-verify deferred signatures; drop and return the invalid ones.

        Invalid transactions are removed from the pending pool (so a later
        block cannot include them); the caller decides how to surface the
        failure (the single-node path raises, the network additionally
        drops them from every replica before raising).
        """
        if not self._deferred_verification:
            return []
        deferred, self._deferred_verification = self._deferred_verification, []
        invalid = [
            tx for tx, ok in zip(deferred, verify_transactions(deferred)) if not ok
        ]
        if invalid:
            self._remove_from_pending({id(tx) for tx in invalid}, by_identity=True)
        return invalid

    def _verify_deferred_signatures(self) -> None:
        """Verify deferred signatures, raising when any transaction is forged."""
        invalid = self.verify_deferred()
        if invalid:
            raise SignatureError(
                f"{len(invalid)} batched transaction(s) carry invalid signatures "
                f"(first: {invalid[0].hash})"
            )

    def drop_transactions(self, tx_hashes) -> None:
        """Remove the given transactions from the pending pool (by hash)."""
        hashes = set(tx_hashes)
        if not hashes:
            return
        self._remove_from_pending(hashes, by_identity=False)
        self._deferred_verification = [
            tx for tx in self._deferred_verification if tx.hash not in hashes
        ]

    def _remove_from_pending(self, keys, by_identity: bool) -> None:
        marker = (lambda tx: id(tx)) if by_identity else (lambda tx: tx.hash)
        removed = [tx for tx in self.pending if marker(tx) in keys]
        if not removed:
            return
        self.pending = [tx for tx in self.pending if marker(tx) not in keys]
        for tx in removed:
            remaining = self._pending_by_sender.get(tx.sender, 0) - 1
            if remaining > 0:
                self._pending_by_sender[tx.sender] = remaining
            else:
                self._pending_by_sender.pop(tx.sender, None)

    def produce_block(self, timestamp: Optional[float] = None) -> Block:
        """Execute the pending pool into a sealed block and append it.

        On a networked node this drives the network's proposer rotation
        until this node's pending transactions are canonically mined (a
        reorg can momentarily return them to the pool), mirroring the
        auto-mining contract the interaction modules rely on.
        """
        if self.network is not None:
            network = self.network
            me = network.validator_by_address(self.validator_key.address)
            if not me.online:
                raise ValidationError(
                    "an offline validator cannot drive block production"
                )
            block = network.produce_until_block()
            stalled_rounds = 0
            while self.pending:
                before = len(self.pending)
                block = network.produce_until_block()
                if len(self.pending) >= before:
                    # A reorg can momentarily return transactions to the
                    # pool; sustained lack of progress means they are not
                    # being mined at all (do not spin forever).
                    stalled_rounds += 1
                    if stalled_rounds > 2 * len(network.validators):
                        raise ValidationError(
                            f"{len(self.pending)} pending transaction(s) are "
                            f"not being mined by any proposer"
                        )
                else:
                    stalled_rounds = 0
            return block
        self._verify_deferred_signatures()
        proposer = self.consensus.expected_proposer(self.chain.height + 1)
        if proposer != self.validator_key.address:
            # Single-node deployments simply rotate through the schedule; a
            # node only refuses when it genuinely lacks the proposer's key.
            raise ValidationError(
                f"not this node's turn: block {self.chain.height + 1} expects {proposer}"
            )
        transactions = list(self.pending)
        self.pending.clear()
        self._pending_by_sender.clear()
        block = self.chain.build_block(transactions, proposer, timestamp)
        self.consensus.seal(block, self.validator_key)
        self.chain.append_block(block)
        self.blocks_produced += 1
        self._dispatch_logs(block)
        return block

    def propose_block(self, slot: int, timestamp: Optional[float] = None) -> Block:
        """Seal the pending pool into the block for rotation *slot*.

        Used by the network's production loop: the slot is recorded in the
        header extra (and therefore covered by the seal), so every replica
        can check the seal against the rotation schedule.  The caller is
        responsible for having verified deferred signatures first.
        """
        transactions = list(self.pending)
        self.pending.clear()
        self._pending_by_sender.clear()
        block = self.chain.build_block(transactions, self.validator_key.address, timestamp)
        block.header.extra["slot"] = slot
        self.consensus.seal(block, self.validator_key)
        self.chain.append_block(block)
        self.blocks_produced += 1
        self._dispatch_logs(block)
        return block

    def import_block(self, block: Block) -> str:
        """Accept a sealed block from a peer replica.

        The chain validates and executes it (possibly reorging to the
        branch it completes); transactions that became canonical leave the
        pending pool, transactions a reorg detached return to it, and event
        filters see the logs of every newly canonical block.
        """
        if self.require_signatures:
            # The chain re-verifies every *carried* signature; a node that
            # requires signatures must additionally refuse blocks smuggling
            # unsigned transactions (which carry nothing to verify).
            unsigned = [
                tx.hash for tx in block.transactions
                if tx.signature is None or tx.public_key is None
            ]
            if unsigned:
                raise IntegrityError(
                    f"block {block.number} carries unsigned transaction(s): "
                    f"{unsigned[:3]}"
                )
        status, applied, detached = self.chain.receive_block(block)
        if applied:
            included = {tx.hash for b in applied for tx in b.transactions}
            if included:
                self.drop_transactions(included)
            returned = [
                tx for b in detached for tx in b.transactions if tx.hash not in included
            ]
            pending_hashes = {tx.hash for tx in self.pending}
            for tx in returned:
                if tx.hash not in pending_hashes:
                    self.enqueue_transaction(tx, defer_verification=True)
            for b in applied:
                self._dispatch_logs(b)
        return status

    def _dispatch_logs(self, block: Block) -> None:
        for receipt in block.receipts:
            for log in receipt.logs:
                for key in (
                    (log.address, log.event),
                    (log.address, None),
                    (None, log.event),
                    (None, None),
                ):
                    for event_filter in self._filters_by_key.get(key, ()):
                        if event_filter.matches(log):
                            event_filter.deliver(log)

    # -- queries ----------------------------------------------------------------------

    def get_receipt(self, transaction_hash: str) -> Receipt:
        return self.chain.receipt_for(transaction_hash)

    def get_balance(self, address: str) -> int:
        return self.chain.state.balance_of(address)

    def call(self, address: str, method: str, args: Optional[Dict[str, Any]] = None,
             caller: Optional[str] = None) -> Any:
        """Read-only contract call evaluated against the current head state."""
        block = BlockContext(
            number=self.chain.height,
            timestamp=self.chain.head.header.timestamp,
            proposer=self.chain.head.header.proposer,
        )
        return self.chain.vm.call_readonly(address, method, args, caller, block)

    def get_logs(self, address: Optional[str] = None, event: Optional[str] = None,
                 from_block: int = 0) -> List[LogEntry]:
        """Return historical logs matching the given criteria.

        Served from the chain's per-address / per-event log indexes instead
        of scanning every block.
        """
        return self.chain.logs_for(address=address, event=event, from_block=from_block)

    def add_filter(self, address: Optional[str] = None, event: Optional[str] = None,
                   callback: Optional[Callable[[LogEntry], None]] = None,
                   from_block: Optional[int] = None) -> EventFilter:
        """Register a live event filter (the push-out oracle's subscription)."""
        event_filter = EventFilter(
            address=address,
            event=event,
            callback=callback,
            from_block=from_block if from_block is not None else self.chain.height + 1,
        )
        self.filters.append(event_filter)
        self._filters_by_key.setdefault((address, event), []).append(event_filter)
        return event_filter

    def remove_filter(self, event_filter: EventFilter) -> None:
        event_filter.stop()
        if event_filter in self.filters:
            self.filters.remove(event_filter)
        bucket = self._filters_by_key.get((event_filter.address, event_filter.event))
        if bucket and event_filter in bucket:
            bucket.remove(event_filter)
