"""Blockchain node: transaction pool, block production, and an RPC-like facade.

Off-chain components (pod managers' blockchain interaction modules, the
oracle components, the TEE's evidence publisher) never touch the chain
internals directly; they talk to a :class:`BlockchainNode`, which mirrors the
surface a JSON-RPC endpoint would expose: submit signed transactions, query
receipts and logs, perform read-only contract calls, and register event
filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.common.clock import Clock
from repro.common.errors import SignatureError, ValidationError
from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.crypto import KeyPair
from repro.blockchain.gas import GasSchedule
from repro.blockchain.transaction import LogEntry, Receipt, Transaction, verify_transactions
from repro.blockchain.vm import BlockContext, ContractRegistry


@dataclass
class EventFilter:
    """A subscription over contract event logs.

    ``address`` and ``event`` narrow the logs delivered; ``callback`` (when
    given) is invoked synchronously for each matching log as blocks are
    produced — this is exactly the hook the push-out oracle's off-chain
    component uses.
    """

    address: Optional[str] = None
    event: Optional[str] = None
    callback: Optional[Callable[[LogEntry], None]] = None
    from_block: int = 0
    collected: List[LogEntry] = field(default_factory=list)
    active: bool = True

    def matches(self, log: LogEntry) -> bool:
        if not self.active:
            return False
        if self.address is not None and log.address != self.address:
            return False
        if self.event is not None and log.event != self.event:
            return False
        if log.block_number is not None and log.block_number < self.from_block:
            return False
        return True

    def deliver(self, log: LogEntry) -> None:
        self.collected.append(log)
        if self.callback is not None:
            self.callback(log)

    def stop(self) -> None:
        self.active = False


class BlockchainNode:
    """A validating node with a pending-transaction pool and event filters."""

    def __init__(self, consensus: ProofOfAuthority, validator_key: KeyPair,
                 registry: Optional[ContractRegistry] = None,
                 schedule: Optional[GasSchedule] = None,
                 clock: Optional[Clock] = None,
                 genesis_balances: Optional[Dict[str, int]] = None,
                 require_signatures: bool = True):
        if not consensus.is_validator(validator_key.address):
            raise ValidationError("the node's key must belong to the validator set")
        self.consensus = consensus
        self.validator_key = validator_key
        self.chain = Blockchain(consensus, registry, schedule, clock, genesis_balances)
        self.pending: List[Transaction] = []
        self._pending_by_sender: Dict[str, int] = {}
        # Transactions enqueued while a batch is active; their signatures are
        # checked in one amortized verify_batch pass at block production.
        self._deferred_verification: List[Transaction] = []
        # The TransactionBatch currently deferring submissions, if any;
        # batches are exclusive per node (see BlockchainInteractionModule.batch).
        self.active_batch: Optional[object] = None
        self.filters: List[EventFilter] = []
        # Filters indexed by their (address, event) narrowing, so delivering
        # a log consults only the filters that could match it — with one
        # filter per consumer device (policy-update subscriptions), scanning
        # every filter for every log made log dispatch O(devices x logs).
        self._filters_by_key: Dict[tuple, List[EventFilter]] = {}
        self.require_signatures = require_signatures
        self.blocks_produced = 0

    # -- registry / deployment helpers ----------------------------------------

    @property
    def registry(self) -> ContractRegistry:
        return self.chain.vm.registry

    def register_contract(self, contract_class, name: Optional[str] = None) -> str:
        """Make a contract class deployable on this node."""
        return self.registry.register(contract_class, name)

    # -- transaction submission --------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> str:
        """Validate and enqueue a signed transaction; returns its hash.

        Outside a batch the signature is checked immediately.  While a
        :class:`~repro.oracles.base.TransactionBatch` is active (a
        monitoring round confirming thousands of fulfillments in one
        block), verification is deferred and performed as a single
        amortized pass when the block is produced — an invalid signature
        still never reaches the chain, the error just surfaces at flush.
        """
        if self.require_signatures:
            if self.active_batch is not None:
                self._deferred_verification.append(tx)
            elif not tx.verify_signature():
                raise SignatureError(f"transaction {tx.hash} carries an invalid signature")
        self.pending.append(tx)
        self._pending_by_sender[tx.sender] = self._pending_by_sender.get(tx.sender, 0) + 1
        return tx.hash

    def next_nonce(self, address: str) -> int:
        """Nonce the next transaction from *address* should carry.

        Accounts for transactions already sitting in the pending pool (via a
        per-sender counter, so queueing N transactions costs O(N), not
        O(N^2)) so a sender can queue several transactions for one block.
        """
        on_chain = 0
        if self.chain.state.has_account(address):
            on_chain = self.chain.state.get_account(address).nonce
        return on_chain + self._pending_by_sender.get(address, 0)

    # -- block production ------------------------------------------------------------

    def _verify_deferred_signatures(self) -> None:
        """Batch-verify signatures deferred during a transaction batch.

        Invalid transactions are dropped from the pending pool (so a later
        block cannot include them) and a :class:`SignatureError` naming
        them is raised before anything is mined.
        """
        if not self._deferred_verification:
            return
        deferred, self._deferred_verification = self._deferred_verification, []
        invalid = [
            tx for tx, ok in zip(deferred, verify_transactions(deferred)) if not ok
        ]
        if not invalid:
            return
        dropped = {id(tx) for tx in invalid}
        self.pending = [tx for tx in self.pending if id(tx) not in dropped]
        for tx in invalid:
            remaining = self._pending_by_sender.get(tx.sender, 0) - 1
            if remaining > 0:
                self._pending_by_sender[tx.sender] = remaining
            else:
                self._pending_by_sender.pop(tx.sender, None)
        raise SignatureError(
            f"{len(invalid)} batched transaction(s) carry invalid signatures "
            f"(first: {invalid[0].hash})"
        )

    def produce_block(self, timestamp: Optional[float] = None) -> Block:
        """Execute the pending pool into a sealed block and append it."""
        self._verify_deferred_signatures()
        proposer = self.consensus.expected_proposer(self.chain.height + 1)
        if proposer != self.validator_key.address:
            # Single-node deployments simply rotate through the schedule; a
            # node only refuses when it genuinely lacks the proposer's key.
            raise ValidationError(
                f"not this node's turn: block {self.chain.height + 1} expects {proposer}"
            )
        transactions = list(self.pending)
        self.pending.clear()
        self._pending_by_sender.clear()
        block = self.chain.build_block(transactions, proposer, timestamp)
        self.consensus.seal(block, self.validator_key)
        self.chain.append_block(block)
        self.blocks_produced += 1
        self._dispatch_logs(block)
        return block

    def _dispatch_logs(self, block: Block) -> None:
        for receipt in block.receipts:
            for log in receipt.logs:
                for key in (
                    (log.address, log.event),
                    (log.address, None),
                    (None, log.event),
                    (None, None),
                ):
                    for event_filter in self._filters_by_key.get(key, ()):
                        if event_filter.matches(log):
                            event_filter.deliver(log)

    # -- queries ----------------------------------------------------------------------

    def get_receipt(self, transaction_hash: str) -> Receipt:
        return self.chain.receipt_for(transaction_hash)

    def get_balance(self, address: str) -> int:
        return self.chain.state.balance_of(address)

    def call(self, address: str, method: str, args: Optional[Dict[str, Any]] = None,
             caller: Optional[str] = None) -> Any:
        """Read-only contract call evaluated against the current head state."""
        block = BlockContext(
            number=self.chain.height,
            timestamp=self.chain.head.header.timestamp,
            proposer=self.chain.head.header.proposer,
        )
        return self.chain.vm.call_readonly(address, method, args, caller, block)

    def get_logs(self, address: Optional[str] = None, event: Optional[str] = None,
                 from_block: int = 0) -> List[LogEntry]:
        """Return historical logs matching the given criteria.

        Served from the chain's per-address / per-event log indexes instead
        of scanning every block.
        """
        return self.chain.logs_for(address=address, event=event, from_block=from_block)

    def add_filter(self, address: Optional[str] = None, event: Optional[str] = None,
                   callback: Optional[Callable[[LogEntry], None]] = None,
                   from_block: Optional[int] = None) -> EventFilter:
        """Register a live event filter (the push-out oracle's subscription)."""
        event_filter = EventFilter(
            address=address,
            event=event,
            callback=callback,
            from_block=from_block if from_block is not None else self.chain.height + 1,
        )
        self.filters.append(event_filter)
        self._filters_by_key.setdefault((address, event), []).append(event_filter)
        return event_filter

    def remove_filter(self, event_filter: EventFilter) -> None:
        event_filter.stop()
        if event_filter in self.filters:
            self.filters.remove(event_filter)
        bucket = self._filters_by_key.get((event_filter.address, event_filter.event))
        if bucket and event_filter in bucket:
            bucket.remove(event_filter)
