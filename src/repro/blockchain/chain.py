"""Chain storage and validation.

The :class:`Blockchain` owns the ordered list of blocks, the canonical world
state, and the contract VM.  It exposes exactly the operations the node and
the benchmarks need: append validated blocks, look up blocks/transactions/
receipts, verify the whole chain (the tamper-evidence property of
Section V-2), and rebuild the state by replaying blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.errors import IntegrityError, NotFoundError, ValidationError
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.gas import GasSchedule
from repro.blockchain.state import WorldState
from repro.blockchain.transaction import Receipt, Transaction
from repro.blockchain.vm import BlockContext, ContractRegistry, ContractVM

GENESIS_PARENT_HASH = "0x" + "00" * 32


class Blockchain:
    """An append-only chain of validated blocks plus the world state."""

    def __init__(self, consensus: ProofOfAuthority, registry: Optional[ContractRegistry] = None,
                 schedule: Optional[GasSchedule] = None, clock: Optional[Clock] = None,
                 genesis_balances: Optional[Dict[str, int]] = None):
        self.consensus = consensus
        self.clock = clock if clock is not None else SystemClock()
        self.state = WorldState()
        self.vm = ContractVM(self.state, registry, schedule)
        self.blocks: List[Block] = []
        self._receipts_by_tx: Dict[str, Receipt] = {}
        self._blocks_by_hash: Dict[str, Block] = {}
        self._genesis_balances = dict(genesis_balances or {})
        self._create_genesis()

    # -- genesis -----------------------------------------------------------

    def _create_genesis(self) -> None:
        for address, balance in self._genesis_balances.items():
            self.state.create_account(address, balance=balance)
        header = BlockHeader(
            number=0,
            parent_hash=GENESIS_PARENT_HASH,
            timestamp=self.clock.now(),
            transactions_root=Block.compute_transactions_root([]),
            receipts_root=Block.compute_receipts_root([]),
            state_root=self.state.state_root(),
            proposer=self.consensus.validators[0],
        )
        genesis = Block(header=header)
        self.blocks.append(genesis)
        self._blocks_by_hash[genesis.hash] = genesis

    # -- accessors ------------------------------------------------------------

    @property
    def height(self) -> int:
        return self.blocks[-1].number

    @property
    def head(self) -> Block:
        return self.blocks[-1]

    def block_by_number(self, number: int) -> Block:
        if not 0 <= number < len(self.blocks):
            raise NotFoundError(f"no block at height {number}")
        return self.blocks[number]

    def block_by_hash(self, block_hash: str) -> Block:
        if block_hash not in self._blocks_by_hash:
            raise NotFoundError(f"no block with hash {block_hash}")
        return self._blocks_by_hash[block_hash]

    def receipt_for(self, transaction_hash: str) -> Receipt:
        if transaction_hash not in self._receipts_by_tx:
            raise NotFoundError(f"no receipt for transaction {transaction_hash}")
        return self._receipts_by_tx[transaction_hash]

    def transaction_by_hash(self, transaction_hash: str) -> Transaction:
        for block in self.blocks:
            for tx in block.transactions:
                if tx.hash == transaction_hash:
                    return tx
        raise NotFoundError(f"no transaction with hash {transaction_hash}")

    # -- block production ---------------------------------------------------------

    def build_block(self, transactions: List[Transaction], proposer: str,
                    timestamp: Optional[float] = None) -> Block:
        """Execute *transactions* on the state and assemble the next block.

        The caller (the node's consensus loop) is responsible for sealing the
        returned block and handing it to :meth:`append_block`.
        """
        if not self.consensus.is_validator(proposer):
            raise ValidationError(f"{proposer} is not an authorized validator")
        block_number = self.height + 1
        block_timestamp = timestamp if timestamp is not None else self.clock.now()
        block_context = BlockContext(number=block_number, timestamp=block_timestamp, proposer=proposer)
        receipts: List[Receipt] = []
        included: List[Transaction] = []
        gas_used = 0
        for tx in transactions:
            receipt = self.vm.execute_transaction(tx, block_context)
            receipt.block_number = block_number
            for index, log in enumerate(receipt.logs):
                log.block_number = block_number
                log.transaction_hash = tx.hash
                log.log_index = index
            receipts.append(receipt)
            included.append(tx)
            gas_used += receipt.gas_used
        header = BlockHeader(
            number=block_number,
            parent_hash=self.head.hash,
            timestamp=block_timestamp,
            transactions_root=Block.compute_transactions_root(included),
            receipts_root=Block.compute_receipts_root(receipts),
            state_root=self.state.state_root(),
            proposer=proposer,
            gas_used=gas_used,
        )
        return Block(header=header, transactions=included, receipts=receipts)

    def append_block(self, block: Block) -> Block:
        """Validate a sealed block against the head and append it."""
        self.consensus.validate_block(block, self.head.header)
        if block.header.state_root != self.state.state_root():
            raise IntegrityError(
                f"block {block.number} commits to a state root that does not match the local state"
            )
        self.blocks.append(block)
        self._blocks_by_hash[block.hash] = block
        for receipt in block.receipts:
            self._receipts_by_tx[receipt.transaction_hash] = receipt
        return block

    # -- verification ----------------------------------------------------------

    def verify_chain(self) -> bool:
        """Re-validate every block link, Merkle root, and seal.

        Raises :class:`IntegrityError` on the first inconsistency; returns
        True when the whole chain checks out.  This is the mechanism behind
        the paper's tamper-evidence claim: any retroactive modification of a
        recorded resource location or usage policy breaks a hash or a seal.
        """
        parent: Optional[BlockHeader] = None
        for block in self.blocks:
            self.consensus.validate_block(block, parent)
            parent = block.header
        return True

    def all_logs(self) -> List:
        """Return every event log recorded on the chain, in order."""
        logs = []
        for block in self.blocks:
            for receipt in block.receipts:
                logs.extend(receipt.logs)
        return logs

    def total_gas_used(self) -> int:
        """Sum of the gas consumed by every block (the affordability metric)."""
        return sum(block.header.gas_used for block in self.blocks)
