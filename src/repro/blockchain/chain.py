"""Chain storage and validation.

The :class:`Blockchain` owns the ordered list of blocks, the canonical world
state, and the contract VM.  It exposes exactly the operations the node and
the benchmarks need: append validated blocks, look up blocks/transactions/
receipts, verify the whole chain (the tamper-evidence property of
Section V-2), and rebuild the state by replaying blocks.

Appending a block maintains a set of indexes so lookups never scan the chain:

* ``tx hash -> (block number, position)`` behind :meth:`transaction_by_hash`;
* per-sender and per-recipient ``(transaction, receipt)`` lists behind
  :meth:`transactions_with_receipts` (the explorer's audit queries);
* per-address and per-event log lists behind :meth:`logs_for`;
* running aggregates (transaction/failure/gas counters, gas grouped by
  sender and by method) behind the O(1) statistics accessors.

The chain is no longer a bare list: sealed blocks received from peers are
kept in a **block tree** keyed by parent hash, so a node can hold competing
tips (the fallout of an equivocating validator).  Fork-choice is
deterministic — longest valid chain, ties broken by lowest header hash —
and switching branches is a bounded :meth:`reorg`: the journaled world
state rolls back to the fork point (one open journal frame per non-final
canonical block) and the winning branch is executed and fully validated in
its place.  A branch whose execution does not match its headers (forged
``gas_used``, stale ``state_root``) is rejected and marked invalid, and the
previous canonical chain is restored.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common.clock import Clock, SystemClock
from repro.common.errors import IntegrityError, NotFoundError, ValidationError
from repro.common.serialization import from_canonical_json
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.consensus import EquivocationDetector, EquivocationProof, ProofOfAuthority
from repro.blockchain.gas import GasSchedule
from repro.blockchain.state import WorldState
from repro.blockchain.storage import read_checked_json
from repro.blockchain.transaction import LogEntry, Receipt, Transaction, verify_transactions
from repro.blockchain.vm import BlockContext, ContractRegistry, ContractVM

GENESIS_PARENT_HASH = "0x" + "00" * 32

# Canonical blocks deeper than this are final: their journal frames are
# discarded and no reorg can cross them.
DEFAULT_MAX_REORG_DEPTH = 64


class Blockchain:
    """A chain of validated blocks, a block tree of competing tips, and state."""

    def __init__(self, consensus: ProofOfAuthority, registry: Optional[ContractRegistry] = None,
                 schedule: Optional[GasSchedule] = None, clock: Optional[Clock] = None,
                 genesis_balances: Optional[Dict[str, int]] = None,
                 max_reorg_depth: int = DEFAULT_MAX_REORG_DEPTH,
                 genesis_timestamp: Optional[float] = None,
                 root_scheme: Optional[int] = None):
        self.consensus = consensus
        self.clock = clock if clock is not None else SystemClock()
        # A restart must rebuild a bit-identical genesis even though the
        # shared clock has advanced; the store's manifest carries the
        # original timestamp and passes it back through here.
        self._genesis_timestamp = genesis_timestamp
        # State-root scheme: the genesis header commits to a root, so a
        # restart must construct the state with the scheme the store was
        # created under (the manifest carries it, like the timestamp above).
        # None means "current default" — fresh chains use binary roots.
        self.state = WorldState() if root_scheme is None else WorldState(root_scheme=root_scheme)
        self.root_scheme = self.state.root_scheme
        self.vm = ContractVM(self.state, registry, schedule)
        self.blocks: List[Block] = []
        self._receipts_by_tx: Dict[str, Receipt] = {}
        self._blocks_by_hash: Dict[str, Block] = {}
        self._genesis_balances = dict(genesis_balances or {})
        # -- block tree / fork choice -----------------------------------------
        if max_reorg_depth < 1:
            raise ValidationError("max_reorg_depth must be at least 1")
        self.max_reorg_depth = max_reorg_depth
        self.equivocation = EquivocationDetector(consensus)
        self._children: Dict[str, List[str]] = {}
        self._tips: Set[str] = set()
        self._invalid_blocks: Set[str] = set()
        # One open journal frame per non-final canonical block; True while a
        # block built by build_block awaits its append_block.
        self._open_frames = 0
        self._pending_frame = False
        # -- durability (see repro.blockchain.storage) ------------------------
        # When a ChainStore is attached, every canonical adoption appends a
        # checksummed record, reorgs rewind the log, cadence heights emit
        # pending state snapshots, and finality promotes them.  _restoring
        # suppresses the hooks while the chain is being rebuilt FROM the
        # store (the records are already on disk).
        self.store = None
        self.snapshot_interval = 0
        self._restoring = False
        # -- dynamic validator set (see repro.contracts.validator_registry) ---
        # When a registry contract address is set and the consensus engine is
        # epoch-aware (epoch_length > 0), every adopted block at an epoch
        # boundary derives the next rotation from contract state via a
        # read-only call, and reorgs roll recorded rotations back with the
        # blocks that produced them.
        self.validator_registry_address: Optional[str] = None
        # -- chain indexes, maintained by _index_block -----------------------
        self._tx_locations: Dict[str, Tuple[int, int]] = {}
        self._tx_receipts: List[Tuple[Transaction, Receipt]] = []
        self._tx_receipts_by_sender: Dict[str, List[Tuple[Transaction, Receipt]]] = {}
        self._tx_receipts_by_recipient: Dict[str, List[Tuple[Transaction, Receipt]]] = {}
        self._logs: List[LogEntry] = []
        self._logs_by_address: Dict[str, List[LogEntry]] = {}
        self._logs_by_event: Dict[str, List[LogEntry]] = {}
        self._transaction_count = 0
        self._failed_transaction_count = 0
        self._total_gas = 0
        self._gas_by_sender: Dict[str, int] = {}
        self._gas_by_method: Dict[str, int] = {}
        self._create_genesis()

    # -- genesis -----------------------------------------------------------

    def _create_genesis(self) -> None:
        for address, balance in self._genesis_balances.items():
            self.state.create_account(address, balance=balance)
        header = BlockHeader(
            number=0,
            parent_hash=GENESIS_PARENT_HASH,
            timestamp=(
                self._genesis_timestamp
                if self._genesis_timestamp is not None
                else self.clock.now()
            ),
            transactions_root=Block.compute_transactions_root([]),
            receipts_root=Block.compute_receipts_root([]),
            state_root=self.state.state_root(),
            proposer=self.consensus.validators[0],
        )
        genesis = Block(header=header)
        self.blocks.append(genesis)
        self._blocks_by_hash[genesis.hash] = genesis
        self._tips.add(genesis.hash)

    # -- accessors ------------------------------------------------------------

    @property
    def height(self) -> int:
        return self.blocks[-1].number

    @property
    def head(self) -> Block:
        return self.blocks[-1]

    def block_by_number(self, number: int) -> Block:
        if not 0 <= number < len(self.blocks):
            raise NotFoundError(f"no block at height {number}")
        return self.blocks[number]

    def block_by_hash(self, block_hash: str) -> Block:
        """Return a block from the tree (canonical or competing branch)."""
        if block_hash not in self._blocks_by_hash:
            raise NotFoundError(f"no block with hash {block_hash}")
        return self._blocks_by_hash[block_hash]

    def knows_block(self, block_hash: str) -> bool:
        """Whether the block is in the tree (canonical or not)."""
        return block_hash in self._blocks_by_hash

    def receipt_for(self, transaction_hash: str) -> Receipt:
        if transaction_hash not in self._receipts_by_tx:
            raise NotFoundError(f"no receipt for transaction {transaction_hash}")
        return self._receipts_by_tx[transaction_hash]

    def transaction_by_hash(self, transaction_hash: str) -> Transaction:
        location = self._tx_locations.get(transaction_hash)
        if location is None:
            raise NotFoundError(f"no transaction with hash {transaction_hash}")
        number, position = location
        return self.blocks[number].transactions[position]

    def transaction_location(self, transaction_hash: str) -> Tuple[int, int]:
        """Return ``(block number, position in block)`` of a transaction."""
        location = self._tx_locations.get(transaction_hash)
        if location is None:
            raise NotFoundError(f"no transaction with hash {transaction_hash}")
        return location

    # -- indexed queries -------------------------------------------------------

    def transactions_with_receipts(self, sender: Optional[str] = None,
                                   to: Optional[str] = None) -> List[Tuple[Transaction, Receipt]]:
        """Return ``(transaction, receipt)`` pairs in chain order.

        Uses the per-sender / per-recipient indexes, so filtered queries cost
        O(matching transactions) instead of O(chain).
        """
        if sender is not None:
            pairs = self._tx_receipts_by_sender.get(sender, [])
            if to is not None:
                return [(tx, receipt) for tx, receipt in pairs if tx.to == to]
            return list(pairs)
        if to is not None:
            return list(self._tx_receipts_by_recipient.get(to, []))
        return list(self._tx_receipts)

    def logs_for(self, address: Optional[str] = None, event: Optional[str] = None,
                 from_block: int = 0) -> List[LogEntry]:
        """Return logs in chain order, narrowed via the log indexes."""
        if address is not None and event is not None:
            by_address = self._logs_by_address.get(address, [])
            by_event = self._logs_by_event.get(event, [])
            candidates = by_address if len(by_address) <= len(by_event) else by_event
        elif address is not None:
            candidates = self._logs_by_address.get(address, [])
        elif event is not None:
            candidates = self._logs_by_event.get(event, [])
        else:
            candidates = self._logs
        return [
            log for log in candidates
            if (address is None or log.address == address)
            and (event is None or log.event == event)
            and (log.block_number is None or log.block_number >= from_block)
        ]

    def all_logs(self) -> List[LogEntry]:
        """Return every event log recorded on the chain, in order."""
        return list(self._logs)

    def total_gas_used(self) -> int:
        """Sum of the gas consumed by every block (the affordability metric)."""
        return self._total_gas

    def transaction_count(self) -> int:
        return self._transaction_count

    def failed_transaction_count(self) -> int:
        return self._failed_transaction_count

    def log_count(self) -> int:
        return len(self._logs)

    def gas_by_sender(self) -> Dict[str, int]:
        """Total gas consumed, grouped by transaction sender (O(senders))."""
        return dict(self._gas_by_sender)

    def gas_by_method(self) -> Dict[str, int]:
        """Total gas consumed, grouped by called method (O(methods))."""
        return dict(self._gas_by_method)

    @staticmethod
    def method_key(tx: Transaction) -> str:
        """Grouping key used by the per-method gas aggregates."""
        return tx.data.get("method") or ("<deploy>" if tx.is_contract_creation else "<transfer>")

    # -- block production ---------------------------------------------------------

    def build_block(self, transactions: List[Transaction], proposer: str,
                    timestamp: Optional[float] = None) -> Block:
        """Execute *transactions* on the state and assemble the next block.

        The caller (the node's consensus loop) is responsible for sealing the
        returned block and handing it to :meth:`append_block`.
        """
        if not self.consensus.is_validator(proposer):
            raise ValidationError(f"{proposer} is not an authorized validator")
        if self._pending_frame:
            # An earlier build was abandoned (never appended); discard its
            # state effects so this build starts from the head state.
            self.state.rollback()
            self._pending_frame = False
        self.state.begin()
        self._pending_frame = True
        block_number = self.height + 1
        block_timestamp = timestamp if timestamp is not None else self.clock.now()
        block_context = BlockContext(number=block_number, timestamp=block_timestamp, proposer=proposer)
        receipts: List[Receipt] = []
        included: List[Transaction] = []
        gas_used = 0
        for tx in transactions:
            receipt = self.vm.execute_transaction(tx, block_context)
            receipt.block_number = block_number
            for index, log in enumerate(receipt.logs):
                log.block_number = block_number
                log.transaction_hash = tx.hash
                log.log_index = index
            receipts.append(receipt)
            included.append(tx)
            gas_used += receipt.gas_used
        header = BlockHeader(
            number=block_number,
            parent_hash=self.head.hash,
            timestamp=block_timestamp,
            transactions_root=Block.compute_transactions_root(included),
            receipts_root=Block.compute_receipts_root(receipts),
            # The incremental root only re-hashes accounts touched by the
            # transactions above; append_block then reuses the cached value.
            state_root=self.state.state_root(),
            proposer=proposer,
            gas_used=gas_used,
        )
        return Block(header=header, transactions=included, receipts=receipts)

    def append_block(self, block: Block) -> Block:
        """Validate a sealed block against the head and append it.

        Pairs with :meth:`build_block`, which executed the block's
        transactions and left their journal frame open; a validation
        failure rolls that frame back, so a rejected block leaves no trace
        on the state.
        """
        try:
            self.consensus.validate_block(block, self.head.header)
            # state_root() returns the root cached by build_block — no state
            # is re-hashed here as long as nothing mutated it in between.
            if block.header.state_root != self.state.state_root():
                raise IntegrityError(
                    f"block {block.number} commits to a state root that does not match the local state"
                )
        except IntegrityError:
            if self._pending_frame:
                self.state.rollback()
                self._pending_frame = False
            raise
        if not self._pending_frame:
            # Hand-assembled block (tests appending an empty block without
            # build_block): open an empty frame so every canonical non-final
            # block owns exactly one frame.
            self.state.begin()
        self._pending_frame = False
        self._adopt_canonical(block)
        return block

    def attach_store(self, store) -> None:
        """Persist every canonical block (and snapshot cadence) to *store*."""
        self.store = store
        self.snapshot_interval = store.snapshot_interval

    def use_validator_registry(self, address: str) -> None:
        """Derive the rotation from the registry contract at *address*.

        Takes effect at the next epoch boundary; heights already adopted
        keep the rotations they were validated under.
        """
        self.validator_registry_address = address
        if self.store is not None and not self._restoring:
            self._save_rotations()

    def _save_rotations(self) -> None:
        """Persist the registry address and derived rotations as a sidecar.

        The sidecar is pure recovery acceleration: a cold start seeds the
        consensus engine from it so the fast-adopted final prefix validates
        under the rotations it was sealed under, then re-derives the live
        rotation from the restored contract state.
        """
        if self.store is None:
            return
        epoch_length = self.consensus.epoch_length
        self.store.save_rotations({
            "registryAddress": self.validator_registry_address,
            "rotations": {
                str(epoch): {
                    "height": epoch * epoch_length,
                    "validators": list(validators),
                }
                for epoch, validators in self.consensus.rotation_history().items()
            },
        })

    def _maybe_derive_rotation(self, block: Block) -> None:
        """At an epoch boundary, derive the next rotation from contract state.

        Runs for every adopted block — live production, peer import, reorg
        re-application, and cold-start tail re-execution all converge on the
        same state-derived schedule.  The read-only call sees the post-block
        state (the block's journal frame is open on the head state), so the
        rotation for epoch ``e`` reflects every join/leave/slash settled up
        to and including boundary block ``e * epoch_length``.
        """
        epoch_length = self.consensus.epoch_length
        if (
            epoch_length <= 0
            or self.validator_registry_address is None
            or block.number <= 0
            or block.number % epoch_length != 0
        ):
            return
        active = self.vm.call_readonly(
            self.validator_registry_address,
            "active_validators",
            block=BlockContext(
                number=block.number,
                timestamp=block.header.timestamp,
                proposer=block.header.proposer,
            ),
        )
        if not active:
            # An empty committee cannot seal anything; keep the previous
            # rotation rather than bricking the chain.
            return
        self.consensus.record_rotation(block.number // epoch_length, list(active))
        if self.store is not None and not self._restoring:
            self._save_rotations()

    def observe_seal(self, block: Block):
        """Feed a sealed block to the equivocation detector, persisting proofs.

        Every observation site (local production, peer import, gossiped
        siblings) goes through here so a slashable double-seal reaches the
        durable proof file the moment it is detected — the rotation/slash
        state then survives a hard crash.
        """
        proof = self.equivocation.observe(block)
        if proof is not None and self.store is not None and not self._restoring:
            self.store.append_proof(proof)
        return proof

    def _adopt_canonical(self, block: Block) -> None:
        """Make an executed, validated block the new canonical head."""
        self.blocks.append(block)
        self._blocks_by_hash[block.hash] = block
        self._add_to_tree(block)
        self.observe_seal(block)
        self._index_block(block)
        self._maybe_derive_rotation(block)
        self._open_frames += 1
        persisting = self.store is not None and not self._restoring
        if persisting:
            self.store.append_block(block)
            if self.snapshot_interval and block.number % self.snapshot_interval == 0:
                # The head state right now IS the state at this height; the
                # snapshot stays pending until the height finalizes below.
                # The block's root was just computed, so the digest caches
                # are warm — persist them next to the state as a sidecar the
                # loader cross-checks after verifying the snapshot.
                self.store.write_pending_snapshot(
                    block.number, block.header.state_root, self.state.to_dict(),
                    digests=self.state.digests_payload(),
                )
        while self._open_frames > self.max_reorg_depth:
            finalized = self.height - self._open_frames + 1
            self.state.commit_oldest()
            self._open_frames -= 1
            if persisting:
                self.store.promote_snapshots_up_to(finalized)

    def _add_to_tree(self, block: Block) -> None:
        siblings = self._children.setdefault(block.header.parent_hash, [])
        if block.hash not in siblings:
            siblings.append(block.hash)
        self._tips.discard(block.header.parent_hash)
        if block.hash not in self._children or not self._children[block.hash]:
            self._tips.add(block.hash)

    def _index_block(self, block: Block) -> None:
        """Fold a newly appended block into the chain indexes."""
        self._total_gas += block.header.gas_used
        for position, (tx, receipt) in enumerate(zip(block.transactions, block.receipts)):
            self._receipts_by_tx[receipt.transaction_hash] = receipt
            self._tx_locations[tx.hash] = (block.number, position)
            pair = (tx, receipt)
            self._tx_receipts.append(pair)
            self._tx_receipts_by_sender.setdefault(tx.sender, []).append(pair)
            if tx.to is not None:
                self._tx_receipts_by_recipient.setdefault(tx.to, []).append(pair)
            self._transaction_count += 1
            if not receipt.status:
                self._failed_transaction_count += 1
            self._gas_by_sender[tx.sender] = self._gas_by_sender.get(tx.sender, 0) + receipt.gas_used
            key = self.method_key(tx)
            self._gas_by_method[key] = self._gas_by_method.get(key, 0) + receipt.gas_used
            for log in receipt.logs:
                self._logs.append(log)
                self._logs_by_address.setdefault(log.address, []).append(log)
                self._logs_by_event.setdefault(log.event, []).append(log)

    def _unindex_block(self, block: Block) -> None:
        """Remove the most recently indexed block from every chain index.

        Only ever called for the block at the canonical head, so every list
        entry to remove sits at the end of its list and removal is O(block
        contents).
        """
        self._total_gas -= block.header.gas_used
        for tx, receipt in zip(reversed(block.transactions), reversed(block.receipts)):
            self._receipts_by_tx.pop(receipt.transaction_hash, None)
            self._tx_locations.pop(tx.hash, None)
            self._tx_receipts.pop()
            sender_pairs = self._tx_receipts_by_sender.get(tx.sender)
            if sender_pairs:
                sender_pairs.pop()
                if not sender_pairs:
                    del self._tx_receipts_by_sender[tx.sender]
            if tx.to is not None:
                recipient_pairs = self._tx_receipts_by_recipient.get(tx.to)
                if recipient_pairs:
                    recipient_pairs.pop()
                    if not recipient_pairs:
                        del self._tx_receipts_by_recipient[tx.to]
            self._transaction_count -= 1
            if not receipt.status:
                self._failed_transaction_count -= 1
            self._gas_by_sender[tx.sender] -= receipt.gas_used
            if not self._gas_by_sender[tx.sender]:
                del self._gas_by_sender[tx.sender]
            key = self.method_key(tx)
            self._gas_by_method[key] -= receipt.gas_used
            if not self._gas_by_method[key]:
                del self._gas_by_method[key]
            for log in reversed(receipt.logs):
                self._logs.pop()
                self._logs_by_address[log.address].pop()
                self._logs_by_event[log.event].pop()

    # -- block tree: peer blocks, fork choice, reorgs ---------------------------

    def is_canonical(self, block_hash: str) -> bool:
        """True when the block is on the current canonical chain."""
        block = self._blocks_by_hash.get(block_hash)
        if block is None or block.number > self.height:
            return False
        return self.blocks[block.number].hash == block_hash

    def tips(self) -> List[str]:
        """Hashes of the current block-tree leaves (competing tips included)."""
        return sorted(self._tips)

    def receive_block(self, block: Block) -> Tuple[str, List[Block], List[Block]]:
        """Accept a sealed block from a peer.

        Validates the header, Merkle roots, seal (against the rotation
        schedule), and every transaction signature, records the header with
        the equivocation detector, and stores the block in the tree.  A
        block extending the canonical head is executed and fully validated
        against its header commitments; a block on a side branch triggers
        fork-choice and — when the side branch wins — a :meth:`reorg`.

        Returns ``(status, applied, detached)`` where *status* is one of
        ``"known"``, ``"extended"``, ``"side"``, or ``"reorged"``,
        *applied* lists the blocks that just became canonical, and
        *detached* lists the previously canonical blocks a reorg rolled
        back (their transactions may need re-queueing).
        """
        if block.hash in self._blocks_by_hash:
            return "known", [], []
        if self._pending_frame:
            # A locally built block was never appended; discard its state
            # effects before executing anything from the network.
            self.state.rollback()
            self._pending_frame = False
        parent = self._blocks_by_hash.get(block.header.parent_hash)
        if parent is None:
            raise NotFoundError(
                f"block {block.number} links to unknown parent {block.header.parent_hash}"
            )
        if parent.hash in self._invalid_blocks:
            self._invalid_blocks.add(block.hash)
            raise IntegrityError(f"block {block.number} extends an invalid branch")
        self.consensus.validate_block(block, parent.header)
        signed = [tx for tx in block.transactions
                  if tx.signature is not None or tx.public_key is not None]
        if signed:
            forged = [tx.hash for tx, ok in zip(signed, verify_transactions(signed)) if not ok]
            if forged:
                self._invalid_blocks.add(block.hash)
                raise IntegrityError(
                    f"block {block.number} carries transaction(s) with forged "
                    f"signatures: {forged[:3]}"
                )
        self._blocks_by_hash[block.hash] = block
        self._add_to_tree(block)
        self.observe_seal(block)
        if parent.hash == self.head.hash:
            try:
                self._apply_block(block)
            except IntegrityError:
                self._mark_invalid(block.hash)
                raise
            return "extended", [block], []
        winner = self.fork_choice_tip()
        if winner != self.head.hash:
            applied, detached = self.reorg(winner)
            return "reorged", applied, detached
        return "side", [], []

    def _apply_block(self, block: Block) -> None:
        """Execute a stored block on the head state, validate, and index it."""
        replayed = self._execute_block(block)
        block.receipts = replayed
        self._adopt_canonical(block)

    def _execute_block(self, block: Block) -> List[Receipt]:
        """Run a block's transactions in a fresh frame; validate the header.

        Raises :class:`IntegrityError` (after rolling the frame back) when
        the header's ``gas_used``, ``receipts_root``, or ``state_root`` do
        not match the execution — the defense that keeps a forged branch
        from ever becoming canonical.  On success the frame stays open (it
        becomes the block's reorg frame) and the replayed receipts are
        returned.
        """
        header = block.header
        self.state.begin()
        context = BlockContext(
            number=header.number, timestamp=header.timestamp, proposer=header.proposer
        )
        replayed: List[Receipt] = []
        gas_total = 0
        try:
            for tx in block.transactions:
                receipt = self.vm.execute_transaction(tx, context)
                receipt.block_number = header.number
                for index, log in enumerate(receipt.logs):
                    log.block_number = header.number
                    log.transaction_hash = tx.hash
                    log.log_index = index
                replayed.append(receipt)
                gas_total += receipt.gas_used
            if gas_total != header.gas_used:
                raise IntegrityError(
                    f"block {header.number} header claims gas_used={header.gas_used} "
                    f"but its transactions consume {gas_total}"
                )
            if Block.compute_receipts_root(replayed) != header.receipts_root:
                raise IntegrityError(
                    f"block {header.number} receipts do not match the local execution"
                )
            if header.state_root != self.state.state_root():
                raise IntegrityError(
                    f"block {header.number} commits to a state root that does not match "
                    f"the state its transactions produce"
                )
        except IntegrityError:
            self.state.rollback()
            raise
        return replayed

    def _mark_invalid(self, block_hash: str) -> None:
        """Mark a block and every stored descendant as permanently invalid."""
        frontier = [block_hash]
        while frontier:
            current = frontier.pop()
            if current in self._invalid_blocks:
                continue
            self._invalid_blocks.add(current)
            frontier.extend(self._children.get(current, ()))

    def _branch_from_canonical(self, tip_hash: str) -> Optional[Tuple[int, List[Block]]]:
        """Walk a tip back to the canonical chain.

        Returns ``(fork block number, branch blocks ascending)`` or ``None``
        when the branch is unusable (invalid block, or a fork point deeper
        than the open reorg window).
        """
        branch: List[Block] = []
        current = self._blocks_by_hash.get(tip_hash)
        while current is not None and not self.is_canonical(current.hash):
            if current.hash in self._invalid_blocks:
                return None
            branch.append(current)
            current = self._blocks_by_hash.get(current.header.parent_hash)
        if current is None:
            return None
        if self.height - current.number > self._open_frames:
            return None  # the fork point is already final
        branch.reverse()
        return current.number, branch

    def fork_choice_tip(self) -> str:
        """Deterministic fork choice over the stored tips.

        Longest valid chain wins; equal heights break toward the lowest
        header hash, so every replica holding the same tree picks the same
        winner without further communication.
        """
        best_hash = self.head.hash
        best_height = self.head.number
        for tip_hash in sorted(self._tips):
            if tip_hash == best_hash or tip_hash in self._invalid_blocks:
                continue
            block = self._blocks_by_hash[tip_hash]
            better = block.number > best_height or (
                block.number == best_height and tip_hash < best_hash
            )
            if not better or self._branch_from_canonical(tip_hash) is None:
                continue
            best_hash, best_height = tip_hash, block.number
        return best_hash

    def reorg(self, tip_hash: str) -> Tuple[List[Block], List[Block]]:
        """Switch the canonical chain to the branch ending at *tip_hash*.

        Rolls the journaled state back to the fork point — one frame per
        detached block, O(touched slots), no re-execution from genesis —
        then executes and fully validates the winning branch.  If any block
        of the new branch fails execution validation, the branch is marked
        invalid, the old chain is restored, and :class:`IntegrityError`
        propagates.  Returns ``(applied, detached)``.
        """
        if self.is_canonical(tip_hash):
            return [], []
        located = self._branch_from_canonical(tip_hash)
        if located is None:
            raise IntegrityError(f"no viable branch to {tip_hash} within the reorg window")
        fork_number, branch = located
        detached = self._rollback_to(fork_number)
        applied: List[Block] = []
        for block in branch:
            try:
                self._apply_block(block)
            except IntegrityError:
                self._mark_invalid(block.hash)
                for _ in applied:
                    self._detach_head()
                for old in detached:
                    self._apply_block(old)
                raise
            applied.append(block)
        return applied, detached

    def _rollback_to(self, fork_number: int) -> List[Block]:
        """Detach canonical blocks above *fork_number*; returns them ascending."""
        detached: List[Block] = []
        while self.height > fork_number:
            detached.append(self._detach_head())
        detached.reverse()
        return detached

    def _detach_head(self) -> Block:
        """Pop the canonical head: unindex it and roll back its state frame.

        The block stays in the tree (a later reorg may re-adopt it).
        """
        block = self.blocks.pop()
        self._unindex_block(block)
        self.state.rollback()
        self._open_frames -= 1
        # A detached boundary block takes its derived rotation with it; the
        # winning branch re-derives its own at the same height.
        if self.consensus.drop_rotations_above(block.number - 1):
            if self.store is not None and not self._restoring:
                self._save_rotations()
        if self.store is not None and not self._restoring:
            # Reorgs are bounded by the open-frame window, so the truncation
            # never crosses a committed finality boundary.
            self.store.rewind_to(block.number - 1)
            self.store.discard_pending_from(block.number)
        return block

    # -- verification ----------------------------------------------------------

    def verify_chain(self, replay: bool = False) -> bool:
        """Re-validate every block link, Merkle root, and seal.

        Raises :class:`IntegrityError` on the first inconsistency; returns
        True when the whole chain checks out.  This is the mechanism behind
        the paper's tamper-evidence claim: any retroactive modification of a
        recorded resource location or usage policy breaks a hash or a seal.

        With ``replay=True`` the chain is additionally re-executed from
        genesis (:meth:`replay`), which catches semantic forgeries that
        survive re-sealing — a header carrying a ``gas_used`` that does not
        match its receipts, or a ``state_root`` that does not match the
        state produced by its transactions.
        """
        parent: Optional[BlockHeader] = None
        for block in self.blocks:
            self.consensus.validate_block(block, parent)
            parent = block.header
        if replay:
            self.replay()
        return True

    def replay(self) -> WorldState:
        """Rebuild the world state from genesis, checking every header.

        Re-executes each block's transactions on a fresh state (sharing this
        chain's contract registry and gas schedule) and raises
        :class:`IntegrityError` when a header's ``gas_used`` differs from
        the replayed receipts, when the replayed receipts do not hash to the
        header's ``receipts_root``, or when the replayed state does not hash
        to the header's ``state_root``.  Returns the rebuilt state.

        Every transaction that carries signature material is additionally
        re-verified — one amortized :func:`verify_transactions` pass per
        block — so a forged signature smuggled into a block (e.g. by a
        deployment running with ``require_signatures=False``) is rejected
        even though its Merkle roots and seal are internally consistent.
        Unsigned transactions are tolerated for exactly those deployments.
        """
        state = WorldState(root_scheme=self.root_scheme)
        for address, balance in self._genesis_balances.items():
            state.create_account(address, balance=balance)
        vm = ContractVM(state, self.vm.registry, self.vm.schedule)
        genesis = self.blocks[0]
        if genesis.header.state_root != state.state_root():
            raise IntegrityError("genesis state_root does not match the genesis balances")
        for block in self.blocks[1:]:
            signed = [tx for tx in block.transactions
                      if tx.signature is not None or tx.public_key is not None]
            if signed:
                forged = [tx.hash for tx, ok in zip(signed, verify_transactions(signed))
                          if not ok]
                if forged:
                    raise IntegrityError(
                        f"block {block.number} contains transaction(s) with forged "
                        f"signatures: {forged[:3]}"
                    )
            context = BlockContext(
                number=block.number,
                timestamp=block.header.timestamp,
                proposer=block.header.proposer,
            )
            replayed: List[Receipt] = []
            gas_total = 0
            for tx in block.transactions:
                receipt = vm.execute_transaction(tx, context)
                receipt.block_number = block.number
                for index, log in enumerate(receipt.logs):
                    log.block_number = block.number
                    log.transaction_hash = tx.hash
                    log.log_index = index
                replayed.append(receipt)
                gas_total += receipt.gas_used
            if gas_total != block.header.gas_used:
                raise IntegrityError(
                    f"block {block.number} header claims gas_used={block.header.gas_used} "
                    f"but its transactions consume {gas_total}"
                )
            if Block.compute_receipts_root(replayed) != block.header.receipts_root:
                raise IntegrityError(
                    f"block {block.number} receipts do not match the replayed execution"
                )
            if block.header.state_root != state.state_root():
                raise IntegrityError(
                    f"block {block.number} commits to a state root that does not match "
                    f"the state produced by replaying its transactions"
                )
        return state

    # -- cold start from disk ----------------------------------------------------

    def load_from_store(self, store, report) -> None:
        """Rebuild this (genesis-only) chain from a :class:`ChainStore`.

        Every record's SHA-256 was already verified by ``ChainStore.open``;
        this pass additionally checks header linkage, truncating the log at
        the first record that does not extend the chain (garbage that
        happens to frame correctly).  Blocks at or below the best promoted
        snapshot's height are *final* and adopted without re-execution —
        their receipts come from the checksummed records and the snapshot
        provides the exact state at that height (verified by rebuilding its
        ``state_root`` before it is trusted).  Only the non-final tail is
        re-executed through the VM, so a cold start costs O(tail) execution
        plus O(chain) parsing instead of a full replay from genesis.
        ``verify_chain(replay=True)`` remains the full semantic check.
        """
        if self.height != 0:
            raise ValidationError("load_from_store needs a freshly created chain")
        self._restoring = True
        try:
            blocks = [
                Block.from_dict(from_canonical_json(payload))
                for payload in store.block_payloads
            ]
            # Linkage pre-scan: a record prefix is only usable while each
            # block extends the previous one.
            linked = 0
            parent = self.blocks[0].header
            for block in blocks:
                if (
                    block.header.parent_hash != parent.hash
                    or block.number != parent.number + 1
                ):
                    report.issues.append(
                        f"record {linked} does not extend the header chain; "
                        f"truncating the log there"
                    )
                    break
                parent = block.header
                linked += 1
            if linked < len(blocks):
                report.records_truncated += len(blocks) - linked
                report.records_loaded = linked
                blocks = blocks[:linked]
                store.rewind_to(linked)
            # Seed the rotation history from the sidecar so the fast-adopted
            # prefix validates under the rotations it was sealed under.  Only
            # boundaries within the recovered chain are trusted; the live
            # rotation is re-derived from restored contract state below.
            sidecar = store.read_rotations()
            registry_address = sidecar.get("registryAddress")
            if registry_address:
                self.validator_registry_address = registry_address
            epoch_length = self.consensus.epoch_length
            if epoch_length > 0:
                seeded = [
                    (int(epoch), entry)
                    for epoch, entry in sidecar.get("rotations", {}).items()
                ]
                for epoch, entry in sorted(seeded):
                    if 0 < epoch * epoch_length <= len(blocks):
                        self.consensus.record_rotation(
                            epoch, list(entry.get("validators", []))
                        )
            # Best usable snapshot: highest promoted height that matches the
            # chain's own commitment and whose contents rebuild to the
            # claimed state root.
            snapshot_state: Optional[WorldState] = None
            snapshot_height = 0
            for height, path in reversed(store.promoted_snapshots()):
                if height > len(blocks):
                    report.snapshots_rejected.append(
                        f"snapshot at height {height} is above the recovered chain"
                    )
                    continue
                try:
                    payload = read_checked_json(path)
                except IntegrityError as exc:
                    report.snapshots_rejected.append(str(exc))
                    continue
                claimed_root = payload.get("stateRoot")
                if (
                    payload.get("height") != height
                    or claimed_root != blocks[height - 1].header.state_root
                ):
                    report.snapshots_rejected.append(
                        f"snapshot at height {height} does not match the chain's "
                        f"state commitment"
                    )
                    continue
                candidate = WorldState.from_dict(
                    payload.get("state", {}), root_scheme=self.root_scheme
                )
                if candidate.state_root() != claimed_root:
                    report.snapshots_rejected.append(
                        f"snapshot at height {height} claims state_root "
                        f"{claimed_root} but its contents hash differently"
                    )
                    continue
                # Cross-check the persisted slot-digest sidecar (when the
                # snapshot carries one) against the digests the verification
                # pass just recomputed.  Old snapshots without a sidecar
                # stay loadable; a sidecar that disagrees with the state it
                # rode in with means corruption — reject the snapshot.
                digests = payload.get("digests")
                if digests is not None and not candidate.digests_match(digests):
                    report.snapshots_rejected.append(
                        f"snapshot at height {height} carries a slot-digest "
                        f"sidecar that does not match its own state"
                    )
                    continue
                snapshot_state, snapshot_height = candidate, height
                break
            # Fast-adopt the final prefix: header rules only (the record
            # checksum vouches for the bytes; seals were verified before
            # they were ever written).  No journal frames are opened —
            # final blocks own none.
            parent = self.blocks[0].header
            for block in blocks[:snapshot_height]:
                self.consensus.validate_header(block.header, parent)
                self.blocks.append(block)
                self._blocks_by_hash[block.hash] = block
                self._add_to_tree(block)
                self._index_block(block)
                parent = block.header
            if snapshot_state is not None:
                self.state.restore(snapshot_state)
                report.snapshot_height = snapshot_height
                report.fast_adopted_blocks = snapshot_height
                # The rotation is STATE, not config: re-derive it from the
                # restored contract state at the snapshot boundary rather
                # than trusting the sidecar, which is only an accelerator.
                if (
                    epoch_length > 0
                    and self.validator_registry_address is not None
                    and snapshot_height % epoch_length == 0
                ):
                    boundary = self.blocks[snapshot_height]
                    active = self.vm.call_readonly(
                        self.validator_registry_address,
                        "active_validators",
                        block=BlockContext(
                            number=boundary.number,
                            timestamp=boundary.header.timestamp,
                            proposer=boundary.header.proposer,
                        ),
                    )
                    if active:
                        self.consensus.record_rotation(
                            snapshot_height // epoch_length, list(active)
                        )
            # Re-execute the non-final tail with full validation; each block
            # opens its reorg frame exactly as live adoption would.
            for block in blocks[snapshot_height:]:
                self.consensus.validate_block(block, self.blocks[-1].header)
                self._apply_block(block)
                report.replayed_blocks += 1
            # Slash state survives the restart: recovered proofs are
            # re-verified from their own sealed-header material.
            for wire in store.read_proofs():
                try:
                    proof = EquivocationProof.from_wire(wire)
                except (KeyError, TypeError) as exc:
                    raise IntegrityError(
                        f"unreadable equivocation proof in {store.proofs_path}: {exc}"
                    ) from exc
                if self.equivocation.restore_proof(proof):
                    report.proofs_restored += 1
        finally:
            self._restoring = False
        self.attach_store(store)
        if self.validator_registry_address is not None:
            # Persist the reconciled view (sidecar rotations truncated to the
            # recovered chain, boundary re-derived from restored state).
            self._save_rotations()
