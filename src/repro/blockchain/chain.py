"""Chain storage and validation.

The :class:`Blockchain` owns the ordered list of blocks, the canonical world
state, and the contract VM.  It exposes exactly the operations the node and
the benchmarks need: append validated blocks, look up blocks/transactions/
receipts, verify the whole chain (the tamper-evidence property of
Section V-2), and rebuild the state by replaying blocks.

Appending a block maintains a set of indexes so lookups never scan the chain:

* ``tx hash -> (block number, position)`` behind :meth:`transaction_by_hash`;
* per-sender and per-recipient ``(transaction, receipt)`` lists behind
  :meth:`transactions_with_receipts` (the explorer's audit queries);
* per-address and per-event log lists behind :meth:`logs_for`;
* running aggregates (transaction/failure/gas counters, gas grouped by
  sender and by method) behind the O(1) statistics accessors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.clock import Clock, SystemClock
from repro.common.errors import IntegrityError, NotFoundError, ValidationError
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.gas import GasSchedule
from repro.blockchain.state import WorldState
from repro.blockchain.transaction import LogEntry, Receipt, Transaction, verify_transactions
from repro.blockchain.vm import BlockContext, ContractRegistry, ContractVM

GENESIS_PARENT_HASH = "0x" + "00" * 32


class Blockchain:
    """An append-only chain of validated blocks plus the world state."""

    def __init__(self, consensus: ProofOfAuthority, registry: Optional[ContractRegistry] = None,
                 schedule: Optional[GasSchedule] = None, clock: Optional[Clock] = None,
                 genesis_balances: Optional[Dict[str, int]] = None):
        self.consensus = consensus
        self.clock = clock if clock is not None else SystemClock()
        self.state = WorldState()
        self.vm = ContractVM(self.state, registry, schedule)
        self.blocks: List[Block] = []
        self._receipts_by_tx: Dict[str, Receipt] = {}
        self._blocks_by_hash: Dict[str, Block] = {}
        self._genesis_balances = dict(genesis_balances or {})
        # -- chain indexes, maintained by _index_block -----------------------
        self._tx_locations: Dict[str, Tuple[int, int]] = {}
        self._tx_receipts: List[Tuple[Transaction, Receipt]] = []
        self._tx_receipts_by_sender: Dict[str, List[Tuple[Transaction, Receipt]]] = {}
        self._tx_receipts_by_recipient: Dict[str, List[Tuple[Transaction, Receipt]]] = {}
        self._logs: List[LogEntry] = []
        self._logs_by_address: Dict[str, List[LogEntry]] = {}
        self._logs_by_event: Dict[str, List[LogEntry]] = {}
        self._transaction_count = 0
        self._failed_transaction_count = 0
        self._total_gas = 0
        self._gas_by_sender: Dict[str, int] = {}
        self._gas_by_method: Dict[str, int] = {}
        self._create_genesis()

    # -- genesis -----------------------------------------------------------

    def _create_genesis(self) -> None:
        for address, balance in self._genesis_balances.items():
            self.state.create_account(address, balance=balance)
        header = BlockHeader(
            number=0,
            parent_hash=GENESIS_PARENT_HASH,
            timestamp=self.clock.now(),
            transactions_root=Block.compute_transactions_root([]),
            receipts_root=Block.compute_receipts_root([]),
            state_root=self.state.state_root(),
            proposer=self.consensus.validators[0],
        )
        genesis = Block(header=header)
        self.blocks.append(genesis)
        self._blocks_by_hash[genesis.hash] = genesis

    # -- accessors ------------------------------------------------------------

    @property
    def height(self) -> int:
        return self.blocks[-1].number

    @property
    def head(self) -> Block:
        return self.blocks[-1]

    def block_by_number(self, number: int) -> Block:
        if not 0 <= number < len(self.blocks):
            raise NotFoundError(f"no block at height {number}")
        return self.blocks[number]

    def block_by_hash(self, block_hash: str) -> Block:
        if block_hash not in self._blocks_by_hash:
            raise NotFoundError(f"no block with hash {block_hash}")
        return self._blocks_by_hash[block_hash]

    def receipt_for(self, transaction_hash: str) -> Receipt:
        if transaction_hash not in self._receipts_by_tx:
            raise NotFoundError(f"no receipt for transaction {transaction_hash}")
        return self._receipts_by_tx[transaction_hash]

    def transaction_by_hash(self, transaction_hash: str) -> Transaction:
        location = self._tx_locations.get(transaction_hash)
        if location is None:
            raise NotFoundError(f"no transaction with hash {transaction_hash}")
        number, position = location
        return self.blocks[number].transactions[position]

    def transaction_location(self, transaction_hash: str) -> Tuple[int, int]:
        """Return ``(block number, position in block)`` of a transaction."""
        location = self._tx_locations.get(transaction_hash)
        if location is None:
            raise NotFoundError(f"no transaction with hash {transaction_hash}")
        return location

    # -- indexed queries -------------------------------------------------------

    def transactions_with_receipts(self, sender: Optional[str] = None,
                                   to: Optional[str] = None) -> List[Tuple[Transaction, Receipt]]:
        """Return ``(transaction, receipt)`` pairs in chain order.

        Uses the per-sender / per-recipient indexes, so filtered queries cost
        O(matching transactions) instead of O(chain).
        """
        if sender is not None:
            pairs = self._tx_receipts_by_sender.get(sender, [])
            if to is not None:
                return [(tx, receipt) for tx, receipt in pairs if tx.to == to]
            return list(pairs)
        if to is not None:
            return list(self._tx_receipts_by_recipient.get(to, []))
        return list(self._tx_receipts)

    def logs_for(self, address: Optional[str] = None, event: Optional[str] = None,
                 from_block: int = 0) -> List[LogEntry]:
        """Return logs in chain order, narrowed via the log indexes."""
        if address is not None and event is not None:
            by_address = self._logs_by_address.get(address, [])
            by_event = self._logs_by_event.get(event, [])
            candidates = by_address if len(by_address) <= len(by_event) else by_event
        elif address is not None:
            candidates = self._logs_by_address.get(address, [])
        elif event is not None:
            candidates = self._logs_by_event.get(event, [])
        else:
            candidates = self._logs
        return [
            log for log in candidates
            if (address is None or log.address == address)
            and (event is None or log.event == event)
            and (log.block_number is None or log.block_number >= from_block)
        ]

    def all_logs(self) -> List[LogEntry]:
        """Return every event log recorded on the chain, in order."""
        return list(self._logs)

    def total_gas_used(self) -> int:
        """Sum of the gas consumed by every block (the affordability metric)."""
        return self._total_gas

    def transaction_count(self) -> int:
        return self._transaction_count

    def failed_transaction_count(self) -> int:
        return self._failed_transaction_count

    def log_count(self) -> int:
        return len(self._logs)

    def gas_by_sender(self) -> Dict[str, int]:
        """Total gas consumed, grouped by transaction sender (O(senders))."""
        return dict(self._gas_by_sender)

    def gas_by_method(self) -> Dict[str, int]:
        """Total gas consumed, grouped by called method (O(methods))."""
        return dict(self._gas_by_method)

    @staticmethod
    def method_key(tx: Transaction) -> str:
        """Grouping key used by the per-method gas aggregates."""
        return tx.data.get("method") or ("<deploy>" if tx.is_contract_creation else "<transfer>")

    # -- block production ---------------------------------------------------------

    def build_block(self, transactions: List[Transaction], proposer: str,
                    timestamp: Optional[float] = None) -> Block:
        """Execute *transactions* on the state and assemble the next block.

        The caller (the node's consensus loop) is responsible for sealing the
        returned block and handing it to :meth:`append_block`.
        """
        if not self.consensus.is_validator(proposer):
            raise ValidationError(f"{proposer} is not an authorized validator")
        block_number = self.height + 1
        block_timestamp = timestamp if timestamp is not None else self.clock.now()
        block_context = BlockContext(number=block_number, timestamp=block_timestamp, proposer=proposer)
        receipts: List[Receipt] = []
        included: List[Transaction] = []
        gas_used = 0
        for tx in transactions:
            receipt = self.vm.execute_transaction(tx, block_context)
            receipt.block_number = block_number
            for index, log in enumerate(receipt.logs):
                log.block_number = block_number
                log.transaction_hash = tx.hash
                log.log_index = index
            receipts.append(receipt)
            included.append(tx)
            gas_used += receipt.gas_used
        header = BlockHeader(
            number=block_number,
            parent_hash=self.head.hash,
            timestamp=block_timestamp,
            transactions_root=Block.compute_transactions_root(included),
            receipts_root=Block.compute_receipts_root(receipts),
            # The incremental root only re-hashes accounts touched by the
            # transactions above; append_block then reuses the cached value.
            state_root=self.state.state_root(),
            proposer=proposer,
            gas_used=gas_used,
        )
        return Block(header=header, transactions=included, receipts=receipts)

    def append_block(self, block: Block) -> Block:
        """Validate a sealed block against the head and append it."""
        self.consensus.validate_block(block, self.head.header)
        # state_root() returns the root cached by build_block — no state is
        # re-hashed here as long as nothing mutated the state in between.
        if block.header.state_root != self.state.state_root():
            raise IntegrityError(
                f"block {block.number} commits to a state root that does not match the local state"
            )
        self.blocks.append(block)
        self._blocks_by_hash[block.hash] = block
        self._index_block(block)
        return block

    def _index_block(self, block: Block) -> None:
        """Fold a newly appended block into the chain indexes."""
        self._total_gas += block.header.gas_used
        for position, (tx, receipt) in enumerate(zip(block.transactions, block.receipts)):
            self._receipts_by_tx[receipt.transaction_hash] = receipt
            self._tx_locations[tx.hash] = (block.number, position)
            pair = (tx, receipt)
            self._tx_receipts.append(pair)
            self._tx_receipts_by_sender.setdefault(tx.sender, []).append(pair)
            if tx.to is not None:
                self._tx_receipts_by_recipient.setdefault(tx.to, []).append(pair)
            self._transaction_count += 1
            if not receipt.status:
                self._failed_transaction_count += 1
            self._gas_by_sender[tx.sender] = self._gas_by_sender.get(tx.sender, 0) + receipt.gas_used
            key = self.method_key(tx)
            self._gas_by_method[key] = self._gas_by_method.get(key, 0) + receipt.gas_used
            for log in receipt.logs:
                self._logs.append(log)
                self._logs_by_address.setdefault(log.address, []).append(log)
                self._logs_by_event.setdefault(log.event, []).append(log)

    # -- verification ----------------------------------------------------------

    def verify_chain(self, replay: bool = False) -> bool:
        """Re-validate every block link, Merkle root, and seal.

        Raises :class:`IntegrityError` on the first inconsistency; returns
        True when the whole chain checks out.  This is the mechanism behind
        the paper's tamper-evidence claim: any retroactive modification of a
        recorded resource location or usage policy breaks a hash or a seal.

        With ``replay=True`` the chain is additionally re-executed from
        genesis (:meth:`replay`), which catches semantic forgeries that
        survive re-sealing — a header carrying a ``gas_used`` that does not
        match its receipts, or a ``state_root`` that does not match the
        state produced by its transactions.
        """
        parent: Optional[BlockHeader] = None
        for block in self.blocks:
            self.consensus.validate_block(block, parent)
            parent = block.header
        if replay:
            self.replay()
        return True

    def replay(self) -> WorldState:
        """Rebuild the world state from genesis, checking every header.

        Re-executes each block's transactions on a fresh state (sharing this
        chain's contract registry and gas schedule) and raises
        :class:`IntegrityError` when a header's ``gas_used`` differs from
        the replayed receipts, when the replayed receipts do not hash to the
        header's ``receipts_root``, or when the replayed state does not hash
        to the header's ``state_root``.  Returns the rebuilt state.

        Every transaction that carries signature material is additionally
        re-verified — one amortized :func:`verify_transactions` pass per
        block — so a forged signature smuggled into a block (e.g. by a
        deployment running with ``require_signatures=False``) is rejected
        even though its Merkle roots and seal are internally consistent.
        Unsigned transactions are tolerated for exactly those deployments.
        """
        state = WorldState()
        for address, balance in self._genesis_balances.items():
            state.create_account(address, balance=balance)
        vm = ContractVM(state, self.vm.registry, self.vm.schedule)
        genesis = self.blocks[0]
        if genesis.header.state_root != state.state_root():
            raise IntegrityError("genesis state_root does not match the genesis balances")
        for block in self.blocks[1:]:
            signed = [tx for tx in block.transactions
                      if tx.signature is not None or tx.public_key is not None]
            if signed:
                forged = [tx.hash for tx, ok in zip(signed, verify_transactions(signed))
                          if not ok]
                if forged:
                    raise IntegrityError(
                        f"block {block.number} contains transaction(s) with forged "
                        f"signatures: {forged[:3]}"
                    )
            context = BlockContext(
                number=block.number,
                timestamp=block.header.timestamp,
                proposer=block.header.proposer,
            )
            replayed: List[Receipt] = []
            gas_total = 0
            for tx in block.transactions:
                receipt = vm.execute_transaction(tx, context)
                receipt.block_number = block.number
                for index, log in enumerate(receipt.logs):
                    log.block_number = block.number
                    log.transaction_hash = tx.hash
                    log.log_index = index
                replayed.append(receipt)
                gas_total += receipt.gas_used
            if gas_total != block.header.gas_used:
                raise IntegrityError(
                    f"block {block.number} header claims gas_used={block.header.gas_used} "
                    f"but its transactions consume {gas_total}"
                )
            if Block.compute_receipts_root(replayed) != block.header.receipts_root:
                raise IntegrityError(
                    f"block {block.number} receipts do not match the replayed execution"
                )
            if block.header.state_root != state.state_root():
                raise IntegrityError(
                    f"block {block.number} commits to a state root that does not match "
                    f"the state produced by replaying its transactions"
                )
        return state
