"""Blockchain substrate.

The paper deploys its DistExchange application on a public blockchain with
smart contracts (Section III-B).  No chain client is available offline, so
this package implements a compact but complete blockchain in pure Python:

* :mod:`repro.blockchain.crypto` — SHA-256 hashing, Merkle trees, and
  secp256k1 ECDSA key pairs with deterministic (RFC 6979-style) signatures;
* :mod:`repro.blockchain.transaction` — signed transactions, receipts, and
  event logs;
* :mod:`repro.blockchain.block` — block headers with transaction/receipt
  Merkle roots and parent links;
* :mod:`repro.blockchain.state` — the world state: externally owned accounts
  and contract storage;
* :mod:`repro.blockchain.gas` — the gas schedule charged by the contract VM;
* :mod:`repro.blockchain.vm` — the execution environment running Python
  smart contracts under gas metering;
* :mod:`repro.blockchain.consensus` — Proof-of-Authority sealing and
  validation;
* :mod:`repro.blockchain.chain` — chain storage and full validation;
* :mod:`repro.blockchain.node` — a node with a transaction pool, block
  production, event filters, and a small RPC-like facade used by the oracle
  components;
* :mod:`repro.blockchain.network` — a multi-node network simulation used by
  the robustness benchmarks.
"""

from repro.blockchain.crypto import KeyPair, sha256_hex, merkle_root, sign, verify, address_from_public_key
from repro.blockchain.account import Account
from repro.blockchain.transaction import Transaction, Receipt, LogEntry
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.state import WorldState
from repro.blockchain.gas import GasSchedule, GasMeter
from repro.blockchain.vm import ContractVM, ExecutionContext, ContractRegistry
from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.chain import Blockchain
from repro.blockchain.node import BlockchainNode, EventFilter
from repro.blockchain.network import BlockchainNetwork
from repro.blockchain.explorer import ChainExplorer, AccountActivity, BlockStatistics

__all__ = [
    "ChainExplorer",
    "AccountActivity",
    "BlockStatistics",
    "KeyPair",
    "sha256_hex",
    "merkle_root",
    "sign",
    "verify",
    "address_from_public_key",
    "Account",
    "Transaction",
    "Receipt",
    "LogEntry",
    "Block",
    "BlockHeader",
    "WorldState",
    "GasSchedule",
    "GasMeter",
    "ContractVM",
    "ExecutionContext",
    "ContractRegistry",
    "ProofOfAuthority",
    "Blockchain",
    "BlockchainNode",
    "EventFilter",
    "BlockchainNetwork",
]
