"""Blockchain substrate.

The paper deploys its DistExchange application on a public blockchain with
smart contracts (Section III-B).  No chain client is available offline, so
this package implements a compact but complete blockchain in pure Python:

* :mod:`repro.blockchain.crypto` — SHA-256 hashing, Merkle trees, and
  secp256k1 ECDSA key pairs with deterministic (RFC 6979-style) signatures;
* :mod:`repro.blockchain.transaction` — signed transactions, receipts, and
  event logs;
* :mod:`repro.blockchain.block` — block headers with transaction/receipt
  Merkle roots and parent links;
* :mod:`repro.blockchain.state` — the world state: externally owned accounts
  and contract storage;
* :mod:`repro.blockchain.gas` — the gas schedule charged by the contract VM;
* :mod:`repro.blockchain.vm` — the execution environment running Python
  smart contracts under gas metering;
* :mod:`repro.blockchain.consensus` — Proof-of-Authority sealing and
  validation, plus the equivocation detector that turns double-sealed
  headers into slashable proofs;
* :mod:`repro.blockchain.chain` — chain storage, full validation, and the
  block tree with deterministic fork-choice and bounded journal-backed
  reorgs;
* :mod:`repro.blockchain.node` — a node with a transaction pool, block
  production, peer-block import, event filters, and a small RPC-like facade
  used by the oracle components;
* :mod:`repro.blockchain.network` — the multi-validator network: one full
  node per validator, proposer rotation, and injectable crash / partition /
  Byzantine-equivocation faults.  Scenarios run on it via the
  ``validators`` knob of the architecture config.
"""

from repro.blockchain.crypto import KeyPair, sha256_hex, merkle_root, sign, verify, address_from_public_key
from repro.blockchain.account import Account
from repro.blockchain.transaction import Transaction, Receipt, LogEntry
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.state import WorldState
from repro.blockchain.gas import GasSchedule, GasMeter
from repro.blockchain.vm import ContractVM, ExecutionContext, ContractRegistry
from repro.blockchain.consensus import (
    EquivocationDetector,
    EquivocationProof,
    ProofOfAuthority,
    SealedHeader,
)
from repro.blockchain.chain import Blockchain
from repro.blockchain.node import BlockchainNode, EventFilter
from repro.blockchain.network import BlockchainNetwork, NetworkValidator
from repro.blockchain.explorer import ChainExplorer, AccountActivity, BlockStatistics

__all__ = [
    "ChainExplorer",
    "AccountActivity",
    "BlockStatistics",
    "KeyPair",
    "sha256_hex",
    "merkle_root",
    "sign",
    "verify",
    "address_from_public_key",
    "Account",
    "Transaction",
    "Receipt",
    "LogEntry",
    "Block",
    "BlockHeader",
    "WorldState",
    "GasSchedule",
    "GasMeter",
    "ContractVM",
    "ExecutionContext",
    "ContractRegistry",
    "ProofOfAuthority",
    "EquivocationDetector",
    "EquivocationProof",
    "SealedHeader",
    "Blockchain",
    "BlockchainNode",
    "EventFilter",
    "BlockchainNetwork",
    "NetworkValidator",
]
