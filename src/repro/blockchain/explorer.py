"""Chain explorer / audit utilities.

Section V-2 argues that state-changing contract calls "can be invoked only by
signing transactions with auditable digital signatures".  This module provides
the audit side: per-account activity, per-contract event history, gas
accounting (the raw material of the affordability analysis), and block-level
statistics, all computed from the canonical chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.blockchain.chain import Blockchain
from repro.blockchain.transaction import LogEntry, Receipt, Transaction


@dataclass
class AccountActivity:
    """Aggregate view of one account's on-chain activity."""

    address: str
    transactions_sent: int = 0
    transactions_failed: int = 0
    gas_used: int = 0
    fees_paid: int = 0
    value_sent: int = 0
    contracts_created: List[str] = field(default_factory=list)
    methods_called: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "address": self.address,
            "transactionsSent": self.transactions_sent,
            "transactionsFailed": self.transactions_failed,
            "gasUsed": self.gas_used,
            "feesPaid": self.fees_paid,
            "valueSent": self.value_sent,
            "contractsCreated": list(self.contracts_created),
            "methodsCalled": dict(self.methods_called),
        }


@dataclass
class BlockStatistics:
    """Per-chain aggregates used by the scalability and affordability reports."""

    blocks: int
    transactions: int
    failed_transactions: int
    total_gas: int
    events: int
    average_transactions_per_block: float
    average_gas_per_block: float

    def to_dict(self) -> dict:
        return {
            "blocks": self.blocks,
            "transactions": self.transactions,
            "failedTransactions": self.failed_transactions,
            "totalGas": self.total_gas,
            "events": self.events,
            "averageTransactionsPerBlock": self.average_transactions_per_block,
            "averageGasPerBlock": self.average_gas_per_block,
        }


class ChainExplorer:
    """Read-only analytics over a :class:`~repro.blockchain.chain.Blockchain`.

    Every query is served from the chain's transaction/log indexes and
    running aggregates, so no method scans the block list.
    """

    def __init__(self, chain: Blockchain):
        self.chain = chain

    # -- raw history -----------------------------------------------------------------

    def transactions(self, sender: Optional[str] = None, to: Optional[str] = None) -> List[Transaction]:
        """All transactions, optionally filtered by sender and/or recipient."""
        return [tx for tx, _ in self.chain.transactions_with_receipts(sender=sender, to=to)]

    def receipts(self, status: Optional[bool] = None) -> List[Receipt]:
        """All receipts, optionally filtered by execution status."""
        return [
            receipt for _, receipt in self.chain.transactions_with_receipts()
            if status is None or receipt.status == status
        ]

    def events(self, address: Optional[str] = None, event: Optional[str] = None) -> List[LogEntry]:
        """Event history, optionally filtered by contract address and event name."""
        return self.chain.logs_for(address=address, event=event)

    # -- aggregates -------------------------------------------------------------------

    def account_activity(self, address: str) -> AccountActivity:
        """Audit trail of one account: what it sent, called, created, and paid."""
        activity = AccountActivity(address=address)
        for tx, receipt in self.chain.transactions_with_receipts(sender=address):
            activity.transactions_sent += 1
            activity.gas_used += receipt.gas_used
            activity.fees_paid += receipt.gas_used * tx.gas_price
            activity.value_sent += tx.value
            if not receipt.status:
                activity.transactions_failed += 1
            if receipt.contract_address:
                activity.contracts_created.append(receipt.contract_address)
            method = tx.data.get("method")
            if method:
                activity.methods_called[method] = activity.methods_called.get(method, 0) + 1
        return activity

    def gas_by_sender(self) -> Dict[str, int]:
        """Total gas consumed, grouped by transaction sender."""
        return self.chain.gas_by_sender()

    def gas_by_method(self, contract_address: Optional[str] = None) -> Dict[str, int]:
        """Total gas consumed, grouped by contract method (the affordability table)."""
        if contract_address is None:
            return self.chain.gas_by_method()
        totals: Dict[str, int] = {}
        for tx, receipt in self.chain.transactions_with_receipts(to=contract_address):
            key = self.chain.method_key(tx)
            totals[key] = totals.get(key, 0) + receipt.gas_used
        return totals

    def event_counts(self, address: Optional[str] = None) -> Dict[str, int]:
        """Number of emitted events, grouped by event name."""
        counts: Dict[str, int] = {}
        for log in self.events(address=address):
            counts[log.event] = counts.get(log.event, 0) + 1
        return counts

    def statistics(self) -> BlockStatistics:
        """Chain-level aggregates (all O(1) thanks to the running counters)."""
        transactions = self.chain.transaction_count()
        failed = self.chain.failed_transaction_count()
        events = self.chain.log_count()
        blocks = len(self.chain.blocks)
        total_gas = self.chain.total_gas_used()
        return BlockStatistics(
            blocks=blocks,
            transactions=transactions,
            failed_transactions=failed,
            total_gas=total_gas,
            events=events,
            average_transactions_per_block=transactions / blocks if blocks else 0.0,
            average_gas_per_block=total_gas / blocks if blocks else 0.0,
        )
