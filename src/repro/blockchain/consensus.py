"""Proof-of-Authority consensus.

The paper abstracts over the concrete blockchain technology ("the proposed
architecture generalizes the blockchain concept").  The reproduction uses a
Proof-of-Authority scheme — a fixed validator set sealing blocks in
round-robin order — because it keeps block production deterministic and fast
while preserving the properties the paper relies on: signed, validated blocks
whose contents become tamper-evident, produced by a set of nodes such that
the failure of a minority does not halt the system (Section V-2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import IntegrityError, ValidationError
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.crypto import KeyPair, address_from_public_key, verify


@dataclass
class ProofOfAuthority:
    """Round-robin Proof-of-Authority sealing and validation.

    With ``epoch_length == 0`` (the default) the validator set is the static
    config the engine was constructed with — the classic permissioned
    committee.  With ``epoch_length > 0`` the engine is *epoch-aware*: the
    rotation that validates block ``h`` is the one recorded for epoch
    ``(h - 1) // epoch_length`` via :meth:`record_rotation` (derived by the
    chain from validator-registry contract state at each epoch boundary),
    falling back to the genesis set for epochs with no recorded rotation.
    ``validators`` always holds the genesis set; rotation history is engine
    state, not config, so :meth:`with_validators` copies yield a fresh
    history re-derivable from chain state.
    """

    validators: List[str] = field(default_factory=list)
    block_interval: float = 5.0
    # Blocks per epoch.  0 keeps the set static; > 0 re-derives the rotation
    # from registry-contract state at every multiple of epoch_length.
    epoch_length: int = 0

    def __post_init__(self):
        if not self.validators:
            raise ValidationError("a PoA validator set cannot be empty")
        if len(set(self.validators)) != len(self.validators):
            raise ValidationError("duplicate validators in the PoA validator set")
        if self.block_interval <= 0:
            raise ValidationError("block interval must be positive")
        if self.epoch_length < 0:
            raise ValidationError("epoch_length must be non-negative")
        # Rotation history: epoch -> validator tuple, plus the union of every
        # address that was ever authorized (genesis or any recorded epoch) so
        # historical blocks keep validating after their sealer rotated out.
        self._rotations: Dict[int, Tuple[str, ...]] = {}
        self._rotation_epochs: List[int] = []  # sorted keys of _rotations
        self._members = set(self.validators)

    # -- rotation history -------------------------------------------------------

    def epoch_of(self, block_number: int) -> int:
        """Epoch containing height *block_number* (genesis belongs to epoch 0)."""
        if self.epoch_length <= 0 or block_number <= 0:
            return 0
        return (block_number - 1) // self.epoch_length

    def record_rotation(self, epoch: int, validators: Sequence[str]) -> None:
        """Record the rotation derived for *epoch* (validated like a fresh set)."""
        if epoch <= 0:
            raise ValidationError("epoch 0 is fixed to the genesis validator set")
        # Route through a throwaway engine so the set gets the same
        # non-empty/unique validation as construction.
        self.with_validators(validators)
        rotation = tuple(validators)
        if epoch not in self._rotations:
            self._rotation_epochs.append(epoch)
            self._rotation_epochs.sort()
        self._rotations[epoch] = rotation
        self._members.update(rotation)

    def drop_rotations_above(self, height: int) -> bool:
        """Forget rotations whose deriving boundary block exceeds *height*.

        Called when a reorg detaches blocks: a rotation derived from a
        detached boundary block's state is no longer part of the canonical
        history.  Returns True when at least one rotation was dropped.
        """
        if self.epoch_length <= 0:
            return False
        kept = [
            epoch for epoch in self._rotation_epochs
            if epoch * self.epoch_length <= height
        ]
        if len(kept) == len(self._rotation_epochs):
            return False
        self._rotations = {epoch: self._rotations[epoch] for epoch in kept}
        self._rotation_epochs = kept
        self._members = set(self.validators)
        for rotation in self._rotations.values():
            self._members.update(rotation)
        return True

    def rotation_for_height(self, block_number: int) -> Tuple[str, ...]:
        """The rotation that schedules and validates height *block_number*."""
        if self.epoch_length <= 0 or not self._rotation_epochs:
            return tuple(self.validators)
        target = self.epoch_of(block_number)
        best: Optional[int] = None
        for epoch in self._rotation_epochs:
            if epoch > target:
                break
            best = epoch
        if best is None:
            return tuple(self.validators)
        return self._rotations[best]

    def current_rotation(self) -> Tuple[str, ...]:
        """The most recently derived rotation (genesis set when none recorded)."""
        if not self._rotation_epochs:
            return tuple(self.validators)
        return self._rotations[self._rotation_epochs[-1]]

    def rotation_history(self) -> Dict[int, Tuple[str, ...]]:
        """Recorded epoch -> rotation map (copy; epoch 0 implied genesis)."""
        return dict(self._rotations)

    # -- schedule ----------------------------------------------------------------

    def expected_proposer(self, block_number: int) -> str:
        """Validator expected to seal the block at height *block_number*."""
        if block_number <= 0:
            raise ValidationError("only post-genesis blocks have a proposer")
        rotation = self.rotation_for_height(block_number)
        return rotation[(block_number - 1) % len(rotation)]

    def proposer_for_slot(self, slot: int) -> str:
        """Validator that owns rotation *slot* (Aura-style, 1-based)."""
        if slot <= 0:
            raise ValidationError("slots are numbered from 1")
        rotation = self.current_rotation()
        return rotation[(slot - 1) % len(rotation)]

    def is_validator(self, address: str) -> bool:
        """True when *address* was authorized in genesis or any recorded epoch.

        Membership is historical on purpose: a block sealed by a validator
        that later rotated out must keep validating, and equivocation
        evidence against it must stay admissible.  Per-height authority is
        enforced by the slot mapping in :meth:`validate_header`, which uses
        the exact rotation of the block's height.
        """
        return address in self._members

    def seal(self, block: Block, keypair: KeyPair) -> Block:
        """Sign the block header with the proposer's key."""
        if keypair.address != block.header.proposer:
            raise ValidationError("sealing key does not match the header proposer")
        if not self.is_validator(keypair.address):
            raise ValidationError(f"{keypair.address} is not an authorized validator")
        block.seal = keypair.sign(block.header.signing_payload())
        block.proposer_public_key = keypair.public_key
        return block

    def validate_header(self, header: BlockHeader, parent: Optional[BlockHeader]) -> None:
        """Validate height, parent link, timestamp monotonicity, and turn order."""
        if parent is None:
            if header.number != 0:
                raise IntegrityError("the first block must be the genesis block")
            return
        if header.number != parent.number + 1:
            raise IntegrityError(
                f"block number {header.number} does not follow parent {parent.number}"
            )
        if header.parent_hash != parent.hash:
            raise IntegrityError(f"block {header.number} does not link to its parent")
        if header.timestamp < parent.timestamp:
            raise IntegrityError(f"block {header.number} timestamp is earlier than its parent")
        # Authority check: the proposer must belong to the validator set.  The
        # exact slot assignment is time-based (Aura-style), so a block sealed
        # by a later validator after skipped slots is still valid.
        if not self.is_validator(header.proposer):
            raise IntegrityError(
                f"block {header.number} sealed by non-validator {header.proposer}"
            )
        # Network-produced blocks carry their rotation slot in the header
        # extra; check the seal against the schedule.  Single-node blocks
        # omit the slot (every slot is taken), keeping their hashes stable.
        slot = header.extra.get("slot")
        if slot is not None:
            if not isinstance(slot, int) or slot < header.number:
                raise IntegrityError(
                    f"block {header.number} claims impossible slot {slot!r}"
                )
            rotation = self.rotation_for_height(header.number)
            expected = rotation[(slot - 1) % len(rotation)]
            if header.proposer != expected:
                raise IntegrityError(
                    f"block {header.number} slot {slot} belongs to {expected}, "
                    f"not {header.proposer}"
                )
            parent_slot = parent.extra.get("slot", parent.number)
            if isinstance(parent_slot, int) and slot <= parent_slot:
                raise IntegrityError(
                    f"block {header.number} slot {slot} does not advance past "
                    f"its parent's slot {parent_slot}"
                )

    def validate_block(self, block: Block, parent: Optional[BlockHeader]) -> None:
        """Full validation: header rules, Merkle roots, and the seal signature."""
        self.validate_header(block.header, parent)
        if block.header.number == 0:
            return
        block.verify_roots()
        block.verify_seal()

    def fault_tolerance(self) -> int:
        """Number of validators that can fail while block production continues.

        With round-robin PoA and no view change, the chain keeps making
        progress as long as at least one honest validator remains, but
        liveness for *every* slot requires all validators; the practical
        figure reported (and used by the robustness benchmark) is the
        classical ⌊(n-1)/2⌋ majority margin.
        """
        return (len(self.current_rotation()) - 1) // 2

    def with_validators(self, validators: Sequence[str]) -> "ProofOfAuthority":
        """Return a copy of the consensus engine with a different validator set.

        ``dataclasses.replace`` carries every config field (block interval,
        epoch length, and whatever is added next) so copies cannot silently
        drop consensus parameters; ``__post_init__`` re-validates the set and
        gives the copy a fresh, empty rotation history.
        """
        return dataclasses.replace(self, validators=list(validators))


@dataclass(frozen=True)
class SealedHeader:
    """One signed header as observed on the wire: enough to re-check the seal."""

    header: BlockHeader
    seal: Tuple[int, int]
    public_key: Tuple[int, int]

    def verify(self) -> bool:
        """True when the seal is a valid proposer signature over the header."""
        try:
            if address_from_public_key(self.public_key) != self.header.proposer:
                return False
            return verify(self.public_key, self.header.signing_payload(), self.seal)
        except (TypeError, ValueError):
            return False

    def to_dict(self) -> dict:
        return {
            "header": self.header.to_dict(),
            "seal": list(self.seal),
            "publicKey": list(self.public_key),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SealedHeader":
        return cls(
            header=BlockHeader.from_dict(data["header"]),
            seal=tuple(data["seal"]),
            public_key=tuple(data["publicKey"]),
        )


@dataclass(frozen=True)
class EquivocationProof:
    """Two distinct sealed headers by one proposer at one height.

    Both seals are genuine signatures by ``proposer``, so the proof is
    self-authenticating: nobody but the holder of the proposer's key could
    have produced it, which is what makes equivocation *slashable* rather
    than merely observable.
    """

    proposer: str
    height: int
    first: SealedHeader
    second: SealedHeader

    def verify(self) -> bool:
        """Re-check everything the proof claims from its own material."""
        return (
            self.first.header.proposer == self.proposer
            and self.second.header.proposer == self.proposer
            and self.first.header.number == self.height
            and self.second.header.number == self.height
            and self.first.header.hash != self.second.header.hash
            and self.first.verify()
            and self.second.verify()
        )

    def to_dict(self) -> dict:
        return {
            "proposer": self.proposer,
            "height": self.height,
            "firstHash": self.first.header.hash,
            "secondHash": self.second.header.hash,
        }

    def to_wire(self) -> dict:
        """Full self-authenticating material (persisted across restarts)."""
        return {
            "proposer": self.proposer,
            "height": self.height,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "EquivocationProof":
        return cls(
            proposer=data["proposer"],
            height=data["height"],
            first=SealedHeader.from_dict(data["first"]),
            second=SealedHeader.from_dict(data["second"]),
        )


class EquivocationDetector:
    """Records sealed headers by (height, proposer) and flags double-seals.

    Every block a node sees — produced locally, imported from a peer, or
    gossiped as a competing tip — is :meth:`observe`'d.  Two *distinct*
    sealed headers at the same height from the same proposer constitute an
    :class:`EquivocationProof`; the proposer joins :attr:`byzantine`.
    Unsealed or invalidly sealed headers are ignored: an adversary must not
    be able to frame an honest validator with a header it never signed.
    """

    def __init__(self, consensus: ProofOfAuthority):
        self.consensus = consensus
        # (height, proposer) -> header hash -> SealedHeader
        self._seen: Dict[Tuple[int, str], Dict[str, SealedHeader]] = {}
        self.proofs: List[EquivocationProof] = []
        self._proved: set = set()  # (height, proposer) pairs already proven

    @property
    def byzantine(self) -> List[str]:
        """Proposers with at least one recorded equivocation proof."""
        seen: List[str] = []
        for proof in self.proofs:
            if proof.proposer not in seen:
                seen.append(proof.proposer)
        return seen

    def is_byzantine(self, address: str) -> bool:
        return any(proof.proposer == address for proof in self.proofs)

    def restore_proof(self, proof: EquivocationProof) -> bool:
        """Adopt a proof recovered from disk after re-verifying its seals.

        The proof's own material is re-checked (both seals, distinct
        hashes, height and proposer agreement) before the proposer is
        treated as Byzantine — a corrupted or fabricated proofs file cannot
        frame an honest validator.  Returns True when the proof was
        adopted, False when it duplicates one already held.  Raises
        :class:`IntegrityError` on a proof that fails verification.
        """
        if not proof.verify():
            raise IntegrityError(
                f"recovered equivocation proof against {proof.proposer} at "
                f"height {proof.height} fails verification"
            )
        key = (proof.height, proof.proposer)
        if key in self._proved:
            return False
        bucket = self._seen.setdefault(key, {})
        bucket.setdefault(proof.first.header.hash, proof.first)
        bucket.setdefault(proof.second.header.hash, proof.second)
        self._proved.add(key)
        self.proofs.append(proof)
        return True

    def observe(self, block: Block) -> Optional[EquivocationProof]:
        """Record a sealed block's header; returns a proof on a double-seal."""
        if block.header.number == 0 or block.seal is None or block.proposer_public_key is None:
            return None
        sealed = SealedHeader(
            header=block.header,
            seal=tuple(block.seal),
            public_key=tuple(block.proposer_public_key),
        )
        if not self.consensus.is_validator(block.header.proposer) or not sealed.verify():
            return None
        key = (block.header.number, block.header.proposer)
        bucket = self._seen.setdefault(key, {})
        block_hash = block.header.hash
        if block_hash in bucket:
            return None
        bucket[block_hash] = sealed
        if len(bucket) < 2 or key in self._proved:
            return None
        first_hash, second_hash = sorted(bucket)[:2]
        proof = EquivocationProof(
            proposer=block.header.proposer,
            height=block.header.number,
            first=bucket[first_hash],
            second=bucket[second_hash],
        )
        self._proved.add(key)
        self.proofs.append(proof)
        return proof
