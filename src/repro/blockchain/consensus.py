"""Proof-of-Authority consensus.

The paper abstracts over the concrete blockchain technology ("the proposed
architecture generalizes the blockchain concept").  The reproduction uses a
Proof-of-Authority scheme — a fixed validator set sealing blocks in
round-robin order — because it keeps block production deterministic and fast
while preserving the properties the paper relies on: signed, validated blocks
whose contents become tamper-evident, produced by a set of nodes such that
the failure of a minority does not halt the system (Section V-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import IntegrityError, ValidationError
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.crypto import KeyPair


@dataclass
class ProofOfAuthority:
    """Round-robin Proof-of-Authority sealing and validation."""

    validators: List[str] = field(default_factory=list)
    block_interval: float = 5.0

    def __post_init__(self):
        if not self.validators:
            raise ValidationError("a PoA validator set cannot be empty")
        if len(set(self.validators)) != len(self.validators):
            raise ValidationError("duplicate validators in the PoA validator set")
        if self.block_interval <= 0:
            raise ValidationError("block interval must be positive")

    def expected_proposer(self, block_number: int) -> str:
        """Validator expected to seal the block at height *block_number*."""
        if block_number <= 0:
            raise ValidationError("only post-genesis blocks have a proposer")
        return self.validators[(block_number - 1) % len(self.validators)]

    def is_validator(self, address: str) -> bool:
        return address in self.validators

    def seal(self, block: Block, keypair: KeyPair) -> Block:
        """Sign the block header with the proposer's key."""
        if keypair.address != block.header.proposer:
            raise ValidationError("sealing key does not match the header proposer")
        if not self.is_validator(keypair.address):
            raise ValidationError(f"{keypair.address} is not an authorized validator")
        block.seal = keypair.sign(block.header.signing_payload())
        block.proposer_public_key = keypair.public_key
        return block

    def validate_header(self, header: BlockHeader, parent: Optional[BlockHeader]) -> None:
        """Validate height, parent link, timestamp monotonicity, and turn order."""
        if parent is None:
            if header.number != 0:
                raise IntegrityError("the first block must be the genesis block")
            return
        if header.number != parent.number + 1:
            raise IntegrityError(
                f"block number {header.number} does not follow parent {parent.number}"
            )
        if header.parent_hash != parent.hash:
            raise IntegrityError(f"block {header.number} does not link to its parent")
        if header.timestamp < parent.timestamp:
            raise IntegrityError(f"block {header.number} timestamp is earlier than its parent")
        # Authority check: the proposer must belong to the validator set.  The
        # exact slot assignment is time-based (Aura-style), so a block sealed
        # by a later validator after skipped slots is still valid.
        if not self.is_validator(header.proposer):
            raise IntegrityError(
                f"block {header.number} sealed by non-validator {header.proposer}"
            )

    def validate_block(self, block: Block, parent: Optional[BlockHeader]) -> None:
        """Full validation: header rules, Merkle roots, and the seal signature."""
        self.validate_header(block.header, parent)
        if block.header.number == 0:
            return
        block.verify_roots()
        block.verify_seal()

    def fault_tolerance(self) -> int:
        """Number of validators that can fail while block production continues.

        With round-robin PoA and no view change, the chain keeps making
        progress as long as at least one honest validator remains, but
        liveness for *every* slot requires all validators; the practical
        figure reported (and used by the robustness benchmark) is the
        classical ⌊(n-1)/2⌋ majority margin.
        """
        return (len(self.validators) - 1) // 2

    def with_validators(self, validators: Sequence[str]) -> "ProofOfAuthority":
        """Return a copy of the consensus engine with a different validator set."""
        return ProofOfAuthority(validators=list(validators), block_interval=self.block_interval)
