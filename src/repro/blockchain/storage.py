"""Durable chain storage: crash-safe block log, finality snapshots, registries.

A :class:`ChainStore` owns one persist directory per node:

``blocks.log``
    Append-only record log of the canonical post-genesis blocks.  Each
    record is ``MAGIC | length (8 bytes, big-endian) | canonical_json
    payload | SHA-256(payload)``.  Appends go straight to the log; the
    *manifest* — not the log itself — is what acknowledges them as
    committed, so a record can only ever be (a) committed, (b) an intact
    unsynced tail entry, or (c) a torn/corrupt tail that :meth:`open`
    detects and truncates to the longest valid prefix.  Corruption is never
    silently accepted: every record's checksum is re-verified on open.

``manifest.json``
    Chain metadata (genesis balances, validator set, block interval,
    reorg window, snapshot cadence) plus the committed record count.
    Updated with the classic crash-safe protocol: write to a temporary
    file, ``fsync``, then atomically ``os.replace`` over the old manifest,
    so a crash leaves either the old or the new manifest, never a torn
    one.  The manifest is refreshed every ``manifest_interval`` appends
    and on :meth:`sync`/:meth:`close`; records past the committed count
    are the *unsynced tail* a hard crash leaves behind.

``registry.json``
    The durable contract registry, in the hardened shape of nucypher's
    ``EthereumContractRegistry``: a lazily-written JSON document with
    explicit read-before-modify semantics — but append-only (an entry,
    once recorded, is never dropped or overwritten) and checksummed.

``proofs.json``
    Equivocation proofs with their full sealed-header material, so the
    slash/rotation state survives a restart: a restarted replica re-slashes
    a Byzantine proposer from its own disk without re-witnessing the
    double-seal.

``snapshots/``
    World-state snapshots keyed by ``(height, state_root)``.  A snapshot
    is written as *pending* when a cadence-height block is adopted (the
    head state at that instant IS the state at that height), *promoted*
    when the height sinks past the reorg horizon (finality), and discarded
    if a reorg detaches the block first.  A cold start loads the best
    promoted snapshot and re-executes only the non-final tail.
"""

from __future__ import annotations

import hashlib
# The persistence layer is the one blockchain module that legitimately owns
# real file IO; everything it writes is checksummed and replayable.
import os  # chainlint: disable=DET001
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import IntegrityError, ValidationError
from repro.common.serialization import canonical_json, from_canonical_json

RECORD_MAGIC = b"RBLK"
_LENGTH_BYTES = 8
_DIGEST_BYTES = 32
_HEADER_BYTES = len(RECORD_MAGIC) + _LENGTH_BYTES
# Records larger than this are treated as garbage (a torn length field can
# otherwise claim petabytes and stall the scan).
MAX_RECORD_BYTES = 64 * 1024 * 1024

MANIFEST_NAME = "manifest.json"
LOG_NAME = "blocks.log"
REGISTRY_NAME = "registry.json"
PROOFS_NAME = "proofs.json"
ROTATIONS_NAME = "rotations.json"
SNAPSHOT_DIR = "snapshots"
_SNAPSHOT_PREFIX = "snapshot"
_PENDING_PREFIX = "pending"

STORE_VERSION = 1


def _fsync_dir(path: str) -> None:
    """Flush a directory entry so a rename/create survives a power cut."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; best effort
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: Any) -> None:
    """Crash-safe checksummed JSON write: temp file, fsync, atomic rename."""
    body = canonical_json(payload)
    document = canonical_json(
        {"payload": payload, "sha256": hashlib.sha256(body).hexdigest()}
    )
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(document)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_dir(os.path.dirname(path) or ".")


def read_checked_json(path: str) -> Any:
    """Read a checksummed JSON document; raises IntegrityError on tampering."""
    if not os.path.exists(path):
        raise IntegrityError(f"missing store file {path}")
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        document = from_canonical_json(raw)
    except Exception as exc:
        raise IntegrityError(f"store file {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or "payload" not in document or "sha256" not in document:
        raise IntegrityError(f"store file {path} lacks its checksum envelope")
    body = canonical_json(document["payload"])
    if hashlib.sha256(body).hexdigest() != document["sha256"]:
        raise IntegrityError(f"store file {path} fails its checksum")
    return document["payload"]


def validator_store_path(root: str, index: int) -> str:
    """Per-validator persist directory under a network's durable root."""
    return os.path.join(root, f"validator-{index}")


def encode_record(payload: bytes) -> bytes:
    """Frame one log record: magic, length, payload, SHA-256 digest."""
    return (
        RECORD_MAGIC
        + len(payload).to_bytes(_LENGTH_BYTES, "big")
        + payload
        + hashlib.sha256(payload).digest()
    )


def scan_records(raw: bytes) -> Tuple[List[bytes], int, List[str]]:
    """Walk a record log buffer, validating every frame.

    Returns ``(payloads, valid_bytes, issues)`` where *valid_bytes* is the
    byte length of the longest valid record prefix and *issues* describes
    why the scan stopped (empty when the whole buffer is clean).  A torn or
    corrupt record invalidates itself and everything after it — records are
    only meaningful in sequence.
    """
    payloads: List[bytes] = []
    issues: List[str] = []
    offset = 0
    total = len(raw)
    while offset < total:
        remaining = total - offset
        if remaining < _HEADER_BYTES:
            issues.append(f"torn record header at byte {offset} ({remaining} bytes)")
            break
        if raw[offset:offset + len(RECORD_MAGIC)] != RECORD_MAGIC:
            issues.append(f"bad record magic at byte {offset}")
            break
        length = int.from_bytes(
            raw[offset + len(RECORD_MAGIC):offset + _HEADER_BYTES], "big"
        )
        if length > MAX_RECORD_BYTES:
            issues.append(f"implausible record length {length} at byte {offset}")
            break
        body_end = offset + _HEADER_BYTES + length
        record_end = body_end + _DIGEST_BYTES
        if record_end > total:
            issues.append(
                f"torn record at byte {offset}: {record_end - total} bytes missing"
            )
            break
        payload = raw[offset + _HEADER_BYTES:body_end]
        if hashlib.sha256(payload).digest() != raw[body_end:record_end]:
            issues.append(f"checksum mismatch in record {len(payloads)} at byte {offset}")
            break
        payloads.append(payload)
        offset = record_end
    return payloads, offset, issues


@dataclass
class RecoveryReport:
    """What :meth:`ChainStore.open` found and what the cold start cost."""

    records_loaded: int = 0
    records_truncated: int = 0
    bytes_truncated: int = 0
    unsynced_tail: int = 0
    issues: List[str] = field(default_factory=list)
    snapshot_height: int = 0
    snapshots_rejected: List[str] = field(default_factory=list)
    replayed_blocks: int = 0
    fast_adopted_blocks: int = 0
    proofs_restored: int = 0

    def to_dict(self) -> dict:
        return {
            "recordsLoaded": self.records_loaded,
            "recordsTruncated": self.records_truncated,
            "bytesTruncated": self.bytes_truncated,
            "unsyncedTail": self.unsynced_tail,
            "issues": list(self.issues),
            "snapshotHeight": self.snapshot_height,
            "snapshotsRejected": list(self.snapshots_rejected),
            "replayedBlocks": self.replayed_blocks,
            "fastAdoptedBlocks": self.fast_adopted_blocks,
            "proofsRestored": self.proofs_restored,
        }


class ChainStore:
    """Disk-backed block log, snapshots, and registries for one node."""

    def __init__(self, directory: str, manifest: Dict[str, Any],
                 payloads: Optional[List[bytes]] = None,
                 recovery: Optional[RecoveryReport] = None,
                 manifest_interval: int = 16):
        self.directory = directory
        self.manifest = manifest
        self.recovery = recovery if recovery is not None else RecoveryReport()
        if manifest_interval < 1:
            raise ValidationError("manifest_interval must be at least 1")
        self.manifest_interval = manifest_interval
        # End-of-record byte offsets: _offsets[i] is where record i ends,
        # which makes rewind_to() a single O(1) truncate.
        self._offsets: List[int] = []
        self.block_payloads: List[bytes] = []
        position = 0
        for payload in payloads or []:
            position += _HEADER_BYTES + len(payload) + _DIGEST_BYTES
            self._offsets.append(position)
            self.block_payloads.append(payload)
        self._log = open(self.log_path, "ab")
        self._appends_since_manifest = 0
        self._closed = False

    # -- paths -------------------------------------------------------------

    @property
    def log_path(self) -> str:
        return os.path.join(self.directory, LOG_NAME)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def registry_path(self) -> str:
        return os.path.join(self.directory, REGISTRY_NAME)

    @property
    def proofs_path(self) -> str:
        return os.path.join(self.directory, PROOFS_NAME)

    @property
    def rotations_path(self) -> str:
        return os.path.join(self.directory, ROTATIONS_NAME)

    @property
    def snapshot_dir(self) -> str:
        return os.path.join(self.directory, SNAPSHOT_DIR)

    # -- manifest-backed metadata -----------------------------------------

    @property
    def genesis_balances(self) -> Dict[str, int]:
        return dict(self.manifest["genesisBalances"])

    @property
    def validators(self) -> List[str]:
        return list(self.manifest["validators"])

    @property
    def block_interval(self) -> float:
        return float(self.manifest["blockInterval"])

    @property
    def max_reorg_depth(self) -> int:
        return int(self.manifest["maxReorgDepth"])

    @property
    def snapshot_interval(self) -> int:
        return int(self.manifest["snapshotInterval"])

    @property
    def require_signatures(self) -> bool:
        return bool(self.manifest["requireSignatures"])

    @property
    def epoch_length(self) -> int:
        # Absent in stores written before dynamic validator sets: static mode.
        return int(self.manifest.get("epochLength", 0))

    @property
    def root_scheme(self) -> int:
        # Absent in stores written before binary state roots: the original
        # canonical-JSON scheme, so old chains replay byte-for-byte.
        return int(self.manifest.get("rootScheme", 1))

    @property
    def genesis_timestamp(self) -> float:
        return float(self.manifest["genesisTimestamp"])

    @property
    def record_count(self) -> int:
        """Number of valid records currently in the log (== chain height)."""
        return len(self._offsets)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, directory: str, genesis_balances: Dict[str, int],
               validators: List[str], block_interval: float,
               max_reorg_depth: int, snapshot_interval: int = 0,
               require_signatures: bool = True,
               genesis_timestamp: float = 0.0,
               epoch_length: int = 0,
               root_scheme: int = 1,
               manifest_interval: int = 16) -> "ChainStore":
        """Initialize a fresh persist directory (refuses to adopt an old one)."""
        os.makedirs(directory, exist_ok=True)
        os.makedirs(os.path.join(directory, SNAPSHOT_DIR), exist_ok=True)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise ValidationError(
                f"{directory} already holds a chain store; use ChainStore.open "
                f"(or BlockchainNode.open_from_disk) to restart from it"
            )
        manifest = {
            "version": STORE_VERSION,
            "genesisBalances": dict(genesis_balances),
            "validators": list(validators),
            "blockInterval": float(block_interval),
            "maxReorgDepth": int(max_reorg_depth),
            "snapshotInterval": int(snapshot_interval),
            "requireSignatures": bool(require_signatures),
            # A restart must rebuild a bit-identical genesis header even
            # though the deployment clock has advanced past creation time.
            "genesisTimestamp": float(genesis_timestamp),
            "epochLength": int(epoch_length),
            "rootScheme": int(root_scheme),
            "committedRecords": 0,
        }
        atomic_write_json(manifest_path, manifest)
        # Create the empty log eagerly so open() on a crashed-before-first-
        # block store still finds a coherent directory.
        with open(os.path.join(directory, LOG_NAME), "ab"):
            pass
        return cls(directory, manifest, manifest_interval=manifest_interval)

    @classmethod
    def open(cls, directory: str,
             manifest_interval: int = 16) -> Tuple["ChainStore", RecoveryReport]:
        """Reopen a persist directory, validating every record checksum.

        Torn or corrupt tail records are truncated away (the longest valid
        prefix survives); a missing or corrupt manifest is fatal — it holds
        the genesis balances and validator set without which the log cannot
        be interpreted.  Returns ``(store, recovery report)``.
        """
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.isdir(directory) or not os.path.exists(manifest_path):
            raise IntegrityError(
                f"{directory} holds no chain-store manifest; nothing to recover"
            )
        manifest = read_checked_json(manifest_path)
        if not isinstance(manifest, dict) or manifest.get("version") != STORE_VERSION:
            raise IntegrityError(f"unsupported chain-store version in {manifest_path}")
        report = RecoveryReport()
        log_path = os.path.join(directory, LOG_NAME)
        raw = b""
        if os.path.exists(log_path):
            with open(log_path, "rb") as handle:
                raw = handle.read()
        payloads, valid_bytes, issues = scan_records(raw)
        report.issues.extend(issues)
        report.records_loaded = len(payloads)
        report.bytes_truncated = len(raw) - valid_bytes
        if valid_bytes < len(raw):
            # Estimate the records lost to the torn tail (at least one).
            report.records_truncated = 1
            with open(log_path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        committed = int(manifest.get("committedRecords", 0))
        report.unsynced_tail = max(0, len(payloads) - committed)
        os.makedirs(os.path.join(directory, SNAPSHOT_DIR), exist_ok=True)
        store = cls(directory, manifest, payloads=payloads, recovery=report,
                    manifest_interval=manifest_interval)
        return store, report

    def sync(self) -> None:
        """Flush the log and acknowledge every record in the manifest."""
        if self._closed:
            return
        self._log.flush()
        os.fsync(self._log.fileno())
        self._write_manifest()

    def close(self) -> None:
        """Clean shutdown: sync everything, then release the log handle."""
        if self._closed:
            return
        self.sync()
        self._log.close()
        self._closed = True

    def abandon(self, torn_tail: bool = False) -> None:
        """Simulate kill -9: release the handle with NO sync or manifest write.

        With *torn_tail* a partial record (valid magic, plausible length,
        missing body bytes) is left at the end of the log — exactly what a
        crash mid-``write`` produces — so recovery must truncate it.
        """
        if self._closed:
            return
        if torn_tail:
            half = encode_record(b'{"torn": true}')[: _HEADER_BYTES + 6]
            self._log.write(half)
        self._log.flush()  # the bytes reach the OS; the manifest never learns
        self._log.close()
        self._closed = True

    def _write_manifest(self) -> None:
        self.manifest["committedRecords"] = len(self._offsets)
        atomic_write_json(self.manifest_path, self.manifest)
        self._appends_since_manifest = 0

    # -- block records -------------------------------------------------------

    def append_block_payload(self, payload: bytes) -> None:
        """Append one canonical block record to the log."""
        if self._closed:
            raise ValidationError("cannot append to a closed chain store")
        self._log.write(encode_record(payload))
        self._log.flush()
        previous = self._offsets[-1] if self._offsets else 0
        self._offsets.append(previous + _HEADER_BYTES + len(payload) + _DIGEST_BYTES)
        self.block_payloads.append(payload)
        self._appends_since_manifest += 1
        if self._appends_since_manifest >= self.manifest_interval:
            os.fsync(self._log.fileno())
            self._write_manifest()

    def append_block(self, block) -> None:
        self.append_block_payload(canonical_json(block.to_dict()))

    def rewind_to(self, height: int) -> None:
        """Truncate the log so it holds blocks 1..*height* (reorg detach)."""
        if self._closed:
            raise ValidationError("cannot rewind a closed chain store")
        if height < 0 or height > len(self._offsets):
            raise ValidationError(f"cannot rewind the store to height {height}")
        if height == len(self._offsets):
            return
        keep_bytes = self._offsets[height - 1] if height > 0 else 0
        self._log.flush()
        self._log.close()
        with open(self.log_path, "r+b") as handle:
            handle.truncate(keep_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        self._log = open(self.log_path, "ab")
        del self._offsets[height:]
        del self.block_payloads[height:]
        self._write_manifest()

    # -- snapshots -----------------------------------------------------------

    def _snapshot_name(self, prefix: str, height: int, state_root: str) -> str:
        return f"{prefix}-{height:010d}-{state_root[:16]}.json"

    def write_pending_snapshot(self, height: int, state_root: str,
                               state_payload: Dict[str, Any],
                               digests: Optional[Dict[str, Any]] = None) -> str:
        """Record the world state at *height* as a pending (non-final) snapshot.

        *digests* is the optional warm slot-digest sidecar
        (:meth:`WorldState.digests_payload`): a loader cross-checks it
        against the digests it recomputes while verifying the snapshot.
        Snapshots written without one (pre-binary-root stores) stay
        loadable — the cross-check is skipped.
        """
        name = self._snapshot_name(_PENDING_PREFIX, height, state_root)
        path = os.path.join(self.snapshot_dir, name)
        payload = {"height": height, "stateRoot": state_root, "state": state_payload}
        if digests is not None:
            payload["digests"] = digests
        atomic_write_json(path, payload)
        return path

    def promote_snapshots_up_to(self, height: int) -> List[int]:
        """Promote pending snapshots at or below *height* (now final)."""
        promoted: List[int] = []
        for name in sorted(os.listdir(self.snapshot_dir)):
            parsed = self._parse_snapshot_name(name)
            if parsed is None or parsed[0] != _PENDING_PREFIX or parsed[1] > height:
                continue
            final_name = self._snapshot_name(_SNAPSHOT_PREFIX, parsed[1], parsed[2])
            os.replace(
                os.path.join(self.snapshot_dir, name),
                os.path.join(self.snapshot_dir, final_name),
            )
            promoted.append(parsed[1])
        if promoted:
            _fsync_dir(self.snapshot_dir)
        return promoted

    def discard_pending_from(self, height: int) -> None:
        """Drop pending snapshots at or above *height* (their block reorged out)."""
        for name in os.listdir(self.snapshot_dir):
            parsed = self._parse_snapshot_name(name)
            if parsed is not None and parsed[0] == _PENDING_PREFIX and parsed[1] >= height:
                os.remove(os.path.join(self.snapshot_dir, name))

    @staticmethod
    def _parse_snapshot_name(name: str) -> Optional[Tuple[str, int, str]]:
        if not name.endswith(".json"):
            return None
        parts = name[:-5].split("-")
        if len(parts) != 3 or parts[0] not in (_SNAPSHOT_PREFIX, _PENDING_PREFIX):
            return None
        try:
            return parts[0], int(parts[1]), parts[2]
        except ValueError:
            return None

    def promoted_snapshots(self) -> List[Tuple[int, str]]:
        """(height, path) of every promoted snapshot, ascending by height."""
        found: List[Tuple[int, str]] = []
        if not os.path.isdir(self.snapshot_dir):
            return found
        for name in os.listdir(self.snapshot_dir):
            parsed = self._parse_snapshot_name(name)
            if parsed is not None and parsed[0] == _SNAPSHOT_PREFIX:
                found.append((parsed[1], os.path.join(self.snapshot_dir, name)))
        found.sort()
        return found

    # -- contract registry (nucypher EthereumContractRegistry shape) -----------

    def read_registry(self) -> List[Dict[str, str]]:
        """Read the recorded contract-registry entries (empty when unwritten).

        The registry file is written lazily — it does not exist until the
        first contract is recorded — so a missing file is an empty registry,
        not an error (mirroring ``EthereumContractRegistry.read``).
        """
        if not os.path.exists(self.registry_path):
            return []
        entries = read_checked_json(self.registry_path)
        if not isinstance(entries, list):
            raise IntegrityError(f"{self.registry_path} does not hold a registry list")
        return entries

    def record_contract(self, name: str, contract_class: type) -> None:
        """Append a contract to the durable registry (read-before-modify).

        The current document is always re-read before writing so concurrent
        or earlier appends are never clobbered, and an existing entry is
        never modified or dropped — the registry is append-only; a name
        re-registered with a different implementation is a fault.
        """
        entries = self.read_registry()
        record = {
            "name": name,
            "module": contract_class.__module__,
            "qualname": contract_class.__qualname__,
        }
        for entry in entries:
            if entry.get("name") == name:
                if entry.get("module") != record["module"] or \
                        entry.get("qualname") != record["qualname"]:
                    raise IntegrityError(
                        f"registry entry {name!r} already maps to "
                        f"{entry.get('module')}.{entry.get('qualname')}"
                    )
                return
        entries.append(record)
        atomic_write_json(self.registry_path, entries)

    # -- equivocation proofs ----------------------------------------------------

    def read_proofs(self) -> List[Dict[str, Any]]:
        if not os.path.exists(self.proofs_path):
            return []
        proofs = read_checked_json(self.proofs_path)
        if not isinstance(proofs, list):
            raise IntegrityError(f"{self.proofs_path} does not hold a proof list")
        return proofs

    def append_proof(self, proof) -> None:
        """Persist an equivocation proof (full sealed-header material).

        Read-before-modify and deduplicated by ``(height, proposer)``, so
        re-observing a double-seal after a restart cannot duplicate or drop
        recorded slashing evidence.
        """
        existing = self.read_proofs()
        wire = proof.to_wire()
        for entry in existing:
            if entry.get("height") == wire["height"] and \
                    entry.get("proposer") == wire["proposer"]:
                return
        existing.append(wire)
        atomic_write_json(self.proofs_path, existing)

    # -- derived rotations (epoch-boundary validator sets) ----------------------

    def read_rotations(self) -> Dict[str, Any]:
        """Read the persisted rotation sidecar (empty when unwritten).

        The sidecar is written lazily, only by epoch-aware chains; a
        missing file means no rotation has been derived yet.
        """
        if not os.path.exists(self.rotations_path):
            return {}
        payload = read_checked_json(self.rotations_path)
        if not isinstance(payload, dict):
            raise IntegrityError(f"{self.rotations_path} does not hold a rotation map")
        return payload

    def save_rotations(self, payload: Dict[str, Any]) -> None:
        """Atomically persist the registry address and derived rotations.

        The whole document is rewritten on every change (rotations are few —
        one per epoch inside the reorg window plus history) so a crash
        leaves either the previous or the new reconciled view, never a
        partial one.
        """
        atomic_write_json(self.rotations_path, payload)
