"""Transactions, receipts, and event logs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import SignatureError, ValidationError
from repro.common.serialization import canonical_json
from repro.blockchain.crypto import KeyPair, sha256_hex, verify, verify_batch


@dataclass
class LogEntry:
    """An event emitted by a contract during transaction execution."""

    address: str
    event: str
    data: Dict[str, Any] = field(default_factory=dict)
    block_number: Optional[int] = None
    transaction_hash: Optional[str] = None
    log_index: int = 0

    def to_dict(self) -> dict:
        return {
            "address": self.address,
            "event": self.event,
            "data": self.data,
            "blockNumber": self.block_number,
            "transactionHash": self.transaction_hash,
            "logIndex": self.log_index,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogEntry":
        return cls(
            address=data["address"],
            event=data["event"],
            data=data.get("data", {}),
            block_number=data.get("blockNumber"),
            transaction_hash=data.get("transactionHash"),
            log_index=data.get("logIndex", 0),
        )


@dataclass
class Transaction:
    """A signed state-transition request.

    ``to`` is ``None`` for contract-creation transactions, in which case
    ``data`` must name the registered ``contract_class`` and its constructor
    arguments.  For calls, ``data`` carries ``{"method": ..., "args": {...}}``.
    """

    sender: str
    to: Optional[str]
    data: Dict[str, Any] = field(default_factory=dict)
    value: int = 0
    nonce: int = 0
    gas_limit: int = 2_000_000
    gas_price: int = 1
    signature: Optional[Tuple[int, int]] = None
    public_key: Optional[Tuple[int, int]] = None
    # Cached hash string; hashing canonicalizes the whole payload, which for
    # batch transactions is O(batch size) — block production asks for the
    # hash once per receipt log, so it must not be recomputed every time.
    # sign() invalidates the cache (the hash covers the signature).
    _hash_cache: Optional[str] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.value < 0:
            raise ValidationError("transaction value must be non-negative")
        if self.gas_limit <= 0:
            raise ValidationError("gas limit must be positive")
        if self.gas_price < 0:
            raise ValidationError("gas price must be non-negative")
        if self.nonce < 0:
            raise ValidationError("nonce must be non-negative")

    # -- canonical form, hash, signatures ---------------------------------

    def signing_payload(self) -> bytes:
        """Return the canonical bytes covered by the signature."""
        return canonical_json(
            {
                "sender": self.sender,
                "to": self.to,
                "data": self.data,
                "value": self.value,
                "nonce": self.nonce,
                "gasLimit": self.gas_limit,
                "gasPrice": self.gas_price,
            }
        )

    @property
    def hash(self) -> str:
        """Transaction hash (includes the signature when present)."""
        if self._hash_cache is None:
            payload = {
                "body": self.signing_payload().decode("utf-8"),
                "signature": list(self.signature) if self.signature else None,
            }
            self._hash_cache = sha256_hex(canonical_json(payload))
        return self._hash_cache

    @property
    def is_contract_creation(self) -> bool:
        return self.to is None

    @property
    def data_size(self) -> int:
        return len(canonical_json(self.data))

    def sign(self, keypair: KeyPair) -> "Transaction":
        """Sign the transaction in place with *keypair* and return it."""
        if keypair.address != self.sender:
            raise SignatureError("signing key does not match the transaction sender")
        self.signature = keypair.sign(self.signing_payload())
        self.public_key = keypair.public_key
        self._hash_cache = None
        return self

    def verify_signature(self) -> bool:
        """Check the signature and that the public key matches the sender."""
        if self.signature is None or self.public_key is None:
            return False
        from repro.blockchain.crypto import address_from_public_key

        if address_from_public_key(self.public_key) != self.sender:
            return False
        return verify(self.public_key, self.signing_payload(), self.signature)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "sender": self.sender,
            "to": self.to,
            "data": self.data,
            "value": self.value,
            "nonce": self.nonce,
            "gasLimit": self.gas_limit,
            "gasPrice": self.gas_price,
            "signature": list(self.signature) if self.signature else None,
            "publicKey": list(self.public_key) if self.public_key else None,
            "hash": self.hash,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Transaction":
        tx = cls(
            sender=data["sender"],
            to=data.get("to"),
            data=data.get("data", {}),
            value=data.get("value", 0),
            nonce=data.get("nonce", 0),
            gas_limit=data.get("gasLimit", 2_000_000),
            gas_price=data.get("gasPrice", 1),
        )
        if data.get("signature"):
            tx.signature = tuple(data["signature"])  # type: ignore[assignment]
        if data.get("publicKey"):
            tx.public_key = tuple(data["publicKey"])  # type: ignore[assignment]
        return tx


def verify_transactions(transactions: List["Transaction"]) -> List[bool]:
    """Check many transactions' signatures in one amortized pass.

    Routes every well-formed ``(public key, payload, signature)`` triple
    through :func:`repro.blockchain.crypto.verify_batch`, so a block's worth
    of signatures shares per-sender precomputed tables and the verdict
    cache.  A transaction with no signature, no public key, or a public key
    that does not hash to its sender is reported invalid without touching
    the curve.
    """
    from repro.blockchain.crypto import address_from_public_key

    results = [False] * len(transactions)
    positions: List[int] = []
    items = []
    for position, tx in enumerate(transactions):
        if tx.signature is None or tx.public_key is None:
            continue
        if address_from_public_key(tx.public_key) != tx.sender:
            continue
        positions.append(position)
        items.append((tx.public_key, tx.signing_payload(), tx.signature))
    for position, ok in zip(positions, verify_batch(items)):
        results[position] = ok
    return results


@dataclass
class Receipt:
    """Execution result of one transaction included in a block."""

    transaction_hash: str
    status: bool
    gas_used: int
    logs: List[LogEntry] = field(default_factory=list)
    contract_address: Optional[str] = None
    return_value: Any = None
    error: Optional[str] = None
    block_number: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "transactionHash": self.transaction_hash,
            "status": self.status,
            "gasUsed": self.gas_used,
            "logs": [log.to_dict() for log in self.logs],
            "contractAddress": self.contract_address,
            "returnValue": self.return_value,
            "error": self.error,
            "blockNumber": self.block_number,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Receipt":
        return cls(
            transaction_hash=data["transactionHash"],
            status=data["status"],
            gas_used=data["gasUsed"],
            logs=[LogEntry.from_dict(entry) for entry in data.get("logs", [])],
            contract_address=data.get("contractAddress"),
            return_value=data.get("returnValue"),
            error=data.get("error"),
            block_number=data.get("blockNumber"),
        )
