"""The six architecture processes of Fig. 2, instrumented for measurement.

Every function drives one of the paper's processes end to end through the
same components the paper names (pod manager, oracles, DE App, TEE) and
returns a :class:`ProcessTrace` recording the wall-clock duration, the
simulated network latency, the number of transactions confirmed, and the gas
consumed — the quantities the benchmark harness reports per process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.policy.model import Policy
from repro.solid.pod import OCTET_STREAM
from repro.solid.wac import AccessMode
from repro.core.monitoring import MonitoringCoordinator, MonitoringReport
from repro.core.participants import DataConsumer, DataOwner


@dataclass
class ProcessTrace:
    """Measurements taken while executing one architecture process."""

    process: str
    wall_clock_seconds: float
    simulated_network_seconds: float
    transactions: int
    gas_used: int
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "process": self.process,
            "wallClockSeconds": self.wall_clock_seconds,
            "simulatedNetworkSeconds": self.simulated_network_seconds,
            "transactions": self.transactions,
            "gasUsed": self.gas_used,
            "details": dict(self.details),
        }


class _Instrumented:
    """Context manager capturing the per-process deltas of the deployment."""

    def __init__(self, architecture, process: str):
        self.architecture = architecture
        self.process = process

    def __enter__(self) -> "_Instrumented":
        self._start_wall = time.perf_counter()
        self._start_latency = self.architecture.network.total_latency
        self._start_gas = self.architecture.total_gas_used()
        # Served by the chain's running aggregate (O(1)); the seed summed
        # len(block.transactions) over the whole chain on every entry/exit.
        self._start_txs = self.architecture.node.chain.transaction_count()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall = time.perf_counter() - self._start_wall
        self.latency = self.architecture.network.total_latency - self._start_latency
        self.gas = self.architecture.total_gas_used() - self._start_gas
        self.transactions = (
            self.architecture.node.chain.transaction_count() - self._start_txs
        )

    def trace(self, **details: Any) -> ProcessTrace:
        trace = ProcessTrace(
            process=self.process,
            wall_clock_seconds=self.wall,
            simulated_network_seconds=self.latency,
            transactions=self.transactions,
            gas_used=self.gas,
            details=details,
        )
        histogram = self.architecture.metrics.histogram(f"process.{self.process}.latency")
        histogram.observe(self.wall)
        return trace


# -- process 1: pod initiation ----------------------------------------------------------------


def pod_initiation(architecture, owner: DataOwner, default_policy: Optional[Policy] = None,
                   subscribers: Optional[list] = None) -> ProcessTrace:
    """Fig. 2.1 — initialize a pod and record it (and its default policy) on-chain."""
    with _Instrumented(architecture, "pod_initiation") as probe:
        pod = owner.initialize_pod(default_policy=default_policy, subscribers=subscribers)
    return probe.trace(pod_url=pod.base_url, owner=owner.name)


# -- process 2: resource initiation --------------------------------------------------------------


def resource_initiation(architecture, owner: DataOwner, path: str, content: bytes,
                        policy: Policy, metadata: Optional[Dict[str, Any]] = None,
                        content_type: str = OCTET_STREAM) -> ProcessTrace:
    """Fig. 2.2 — upload a resource, publish it to the market, and index it on-chain."""
    with _Instrumented(architecture, "resource_initiation") as probe:
        owner.upload_resource(path, content, content_type=content_type)
        resource_id = owner.publish_resource(path, policy, metadata)
    return probe.trace(resource_id=resource_id, owner=owner.name, size=len(content))


# -- process 3: resource indexing -------------------------------------------------------------------


def resource_indexing(architecture, consumer: DataConsumer, resource_id: str) -> ProcessTrace:
    """Fig. 2.3 — the consumer's TEE reads the resource location and policy from the DE App."""
    with _Instrumented(architecture, "resource_indexing") as probe:
        record = consumer.lookup_resource(resource_id)
    return probe.trace(
        resource_id=resource_id,
        consumer=consumer.name,
        location=record.get("location"),
        policy_version=(record.get("policy") or {}).get("version"),
    )


# -- process 4: resource access ------------------------------------------------------------------------


def resource_access(architecture, consumer: DataConsumer, owner: DataOwner, resource_id: str,
                    grant_read: bool = True, ensure_certificate: bool = True) -> ProcessTrace:
    """Fig. 2.4 — retrieve the resource into the consumer's TEE.

    The pod manager checks the ACL and the market-fee certificate before
    serving the resource; the consumer then records the access grant on the
    DE App so later policy updates and monitoring rounds reach its device.
    """
    with _Instrumented(architecture, "resource_access") as probe:
        path = owner.pod_manager.require_pod().path_for(resource_id)
        if grant_read and not owner.pod_manager.can_access(consumer.webid.iri, AccessMode.READ, path):
            owner.pod_manager.grant_access(consumer.webid.iri, [AccessMode.READ], resource_path=path)
        if ensure_certificate and resource_id not in consumer.certificates:
            consumer.purchase_certificate(resource_id)
        result = consumer.retrieve_resource(resource_id)
    return probe.trace(
        resource_id=resource_id,
        consumer=consumer.name,
        owner=owner.name,
        stored_bytes=result["size"],
        policy_version=result["policy_version"],
    )


# -- process 5: policy modification -----------------------------------------------------------------------


def policy_modification(architecture, owner: DataOwner, path: str, new_policy: Policy) -> ProcessTrace:
    """Fig. 2.5 — the owner revises a policy; the change propagates to every copy holder."""
    with _Instrumented(architecture, "policy_modification") as probe:
        owner.update_policy(path, new_policy)
        resource_id = owner.pod_manager.require_pod().url_for(path)
        holders = architecture.dist_exchange_read("get_grants", {"resource_id": resource_id})
    return probe.trace(
        resource_id=resource_id,
        owner=owner.name,
        new_version=new_policy.version,
        notified_devices=[grant["device_id"] for grant in holders if grant["active"]],
    )


# -- process 6: policy monitoring ----------------------------------------------------------------------------


def policy_monitoring(architecture, owner: DataOwner, path: str,
                      coordinator: Optional[MonitoringCoordinator] = None) -> ProcessTrace:
    """Fig. 2.6 — run a full monitoring round and gather evidence from every holder."""
    coordinator = coordinator if coordinator is not None else MonitoringCoordinator(architecture)
    with _Instrumented(architecture, "policy_monitoring") as probe:
        report: MonitoringReport = coordinator.run_round(owner, path)
    return probe.trace(
        resource_id=report.resource_id,
        round_id=report.round_id,
        holders=len(report.holders),
        compliant=report.compliant_devices,
        non_compliant=report.non_compliant_devices,
        violations=len(report.violations),
    )


# -- consumer onboarding (market registration, Section II) -------------------------------------------------------


def market_onboarding(architecture, consumer: DataConsumer) -> ProcessTrace:
    """Register a consumer with the data market (subscription payment)."""
    with _Instrumented(architecture, "market_onboarding") as probe:
        consumer.subscribe_to_market()
    return probe.trace(consumer=consumer.name)
