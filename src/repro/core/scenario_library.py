"""The named scenario library.

Every scenario the repo tells about the architecture, expressed as a
:class:`~repro.core.spec.ScenarioSpec` and collected in
:data:`SCENARIO_LIBRARY`.  The catalog covers the happy path (the paper's
Alice & Bob story, a multi-party market), every adversarial behavior
profile (negligent holder, unreachable device, Byzantine and stale
oracles, late payer, mid-retention churn), and the owner-side revocation
playbook.  ``python examples/adversarial_scenarios.py`` runs the whole
catalog and prints each expected-vs-observed violation ledger.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Mapping, Optional

from repro.common.clock import DAY, HOUR, MONTH, WEEK
from repro.core.spec import (
    Behavior,
    ParticipantSpec,
    ResourceSpec,
    ScenarioSpec,
    access,
    advance,
    attempt_access,
    check_can_use,
    check_holds,
    churn,
    crash_validator,
    enforce,
    equivocate,
    fail_validator,
    index,
    join_validator,
    leave_validator,
    monitor,
    recover_validator,
    restart_validator,
    regrant,
    repurchase_certificate,
    revise_policy,
    spec_from_workload,
    use,
)

SpecFactory = Callable[[], ScenarioSpec]

# The default behavior mix of the population-scale family: a mostly honest
# market with every adversarial profile of the PR 3 library represented in
# roughly the proportions a deployed system would see.
POPULATION_BEHAVIOR_MIX: Mapping[Behavior, float] = {
    Behavior.HONEST: 0.80,
    Behavior.VIOLATING: 0.08,
    Behavior.NON_RESPONSIVE: 0.04,
    Behavior.STALE_ORACLE: 0.03,
    Behavior.TAMPERING_ORACLE: 0.02,
    Behavior.LATE_PAYER: 0.02,
    Behavior.CHURNED: 0.01,
}


def alice_bob_spec(monitor_rounds: bool = True) -> ScenarioSpec:
    """The motivating Alice & Bob use case (Section II) as a declarative spec.

    Faithful, step for step, to the original hand-coded driver — the
    pinned results of ``run_alice_bob_scenario`` come from running this
    spec.  Housekeeping is off because the story scripts Bob's enforcement
    pass explicitly.
    """
    alice_res = "alice:/data/browsing-history.csv"
    bob_res = "bob:/data/medical-records.ttl"
    timeline: List = [
        index("alice-app", bob_res),
        index("bob-app", alice_res),
        access("alice-app", bob_res),
        access("bob-app", alice_res),
        check_holds("bob-app", alice_res, "bob_holds_alice_copy_initially"),
        check_holds("alice-app", bob_res, "alice_holds_bob_copy_initially"),
        use("alice-app", bob_res, purpose="medical-research"),
        use("bob-app", alice_res, purpose="web-analytics"),
        advance(2 * DAY),
        revise_policy(alice_res, retention_seconds=WEEK),
        revise_policy(
            bob_res,
            allowed_purposes=("academic-research", "medical-research"),
            retention_seconds=6 * MONTH,
        ),
        check_can_use(
            "alice-app", bob_res, "alice_can_still_use_bobs_data", purpose="medical-research"
        ),
        advance(6 * DAY),
        enforce("bob-app"),
        check_holds("bob-app", alice_res, "bob_copy_deleted_after_update", negate=True),
        check_can_use("bob-app", alice_res, "bob_use_blocked_after_deletion", negate=True),
    ]
    if monitor_rounds:
        timeline += [monitor(alice_res), monitor(bob_res)]
    return ScenarioSpec(
        name="alice-bob",
        description=(
            "Alice shortens retention, Bob narrows purposes; Bob's TEE erases "
            "Alice's data after the new expiry while Alice keeps her access."
        ),
        participants=(
            ParticipantSpec("alice", "owner"),
            ParticipantSpec("bob", "owner"),
            ParticipantSpec(
                "alice-app", "consumer", purpose="medical-research", device_id="alice-device"
            ),
            ParticipantSpec(
                "bob-app", "consumer", purpose="web-analytics", device_id="bob-device"
            ),
        ),
        resources=(
            ResourceSpec(
                owner="alice",
                path="/data/browsing-history.csv",
                retention_seconds=MONTH,
                content=b"timestamp,url\n2026-01-01T10:00:00Z,https://example.org\n" * 64,
                metadata={"kind": "browsing-history"},
            ),
            ResourceSpec(
                owner="bob",
                path="/data/medical-records.ttl",
                allowed_purposes=("medical-research", "medical-treatment"),
                content=b"@prefix ex: <https://example.org/> . ex:bob ex:bloodPressure 120 .\n" * 32,
                metadata={"kind": "medical-records"},
            ),
        ),
        timeline=tuple(timeline),
        housekeeping=False,
    ).validate()


def negligent_holder_spec() -> ScenarioSpec:
    """A policy-violating consumer keeps an expired copy; monitoring catches it."""
    res = "olivia:/data/browsing.csv"
    return ScenarioSpec(
        name="negligent-holder",
        description=(
            "Two consumers hold a one-week-retention copy; the negligent one "
            "never runs its enforcement pass and is flagged after expiry."
        ),
        participants=(
            ParticipantSpec("olivia", "owner"),
            ParticipantSpec("carol-app", "consumer", purpose="web-analytics"),
            ParticipantSpec(
                "dave-app", "consumer", purpose="web-analytics", behavior=Behavior.VIOLATING
            ),
        ),
        resources=(ResourceSpec(owner="olivia", path="/data/browsing.csv",
                                retention_seconds=WEEK),),
        timeline=(
            access("carol-app", res),
            access("dave-app", res),
            use("carol-app", res),
            use("dave-app", res),
            advance(9 * DAY),
            monitor(res),
            check_holds("carol-app", res, "compliant_copy_deleted", negate=True),
            check_holds("dave-app", res, "negligent_copy_survives"),
        ),
    ).validate()


def unreachable_device_spec() -> ScenarioSpec:
    """A device that never answers monitoring yields a no-evidence violation."""
    res = "owen:/data/fitness.json"
    return ScenarioSpec(
        name="unreachable-device",
        description=(
            "A non-responsive device holds a copy: no policy pushes reach it "
            "and monitoring records 'no evidence provided' as a violation."
        ),
        participants=(
            ParticipantSpec("owen", "owner"),
            ParticipantSpec("hattie-app", "consumer", purpose="service-improvement"),
            ParticipantSpec(
                "ghost-app",
                "consumer",
                purpose="service-improvement",
                behavior=Behavior.NON_RESPONSIVE,
            ),
        ),
        resources=(ResourceSpec(owner="owen", path="/data/fitness.json",
                                retention_seconds=MONTH),),
        timeline=(
            access("hattie-app", res),
            access("ghost-app", res),
            advance(DAY),
            monitor(res),
        ),
    ).validate()


def byzantine_oracle_spec() -> ScenarioSpec:
    """A tampering oracle forges compliance; the signature check rejects it."""
    res = "ursula:/data/purchases.csv"
    return ScenarioSpec(
        name="byzantine-oracle",
        description=(
            "A Byzantine pull-in component rewrites its device's evidence to "
            "claim compliance and hide the usage trail; lacking the enclave "
            "key, the forged body fails verification and is recorded as a "
            "violation."
        ),
        participants=(
            ParticipantSpec("ursula", "owner"),
            ParticipantSpec("honest-app", "consumer", purpose="marketing"),
            ParticipantSpec(
                "forger-app", "consumer", purpose="marketing",
                behavior=Behavior.TAMPERING_ORACLE,
            ),
        ),
        resources=(ResourceSpec(owner="ursula", path="/data/purchases.csv",
                                retention_seconds=MONTH),),
        timeline=(
            access("honest-app", res),
            access("forger-app", res),
            use("forger-app", res),
            advance(DAY),
            monitor(res),
        ),
    ).validate()


def stale_oracle_spec() -> ScenarioSpec:
    """A stale oracle replays old evidence; the freshness check flags round two."""
    res = "sam:/data/locations.csv"
    return ScenarioSpec(
        name="stale-oracle-replay",
        description=(
            "The device's oracle replays its first (validly signed) answer in "
            "every later round; the first round passes, the replay is flagged "
            "as stale."
        ),
        participants=(
            ParticipantSpec("sam", "owner"),
            ParticipantSpec(
                "replay-app", "consumer", purpose="public-interest",
                behavior=Behavior.STALE_ORACLE,
            ),
        ),
        resources=(ResourceSpec(owner="sam", path="/data/locations.csv",
                                retention_seconds=6 * MONTH),),
        timeline=(
            access("replay-app", res),
            advance(DAY),
            monitor(res),      # fresh answer, cached by the faulty oracle
            advance(3 * DAY),
            monitor(res),      # replayed answer: stale, flagged
        ),
    ).validate()


def late_payer_spec() -> ScenarioSpec:
    """A consumer pays late: refused without the fee, served after, never flagged."""
    res = "petra:/data/social-graph.json"
    return ScenarioSpec(
        name="late-payer",
        description=(
            "The consumer's first retrieval is refused for lack of a market-fee "
            "certificate; after subscribing and paying it is served normally "
            "and stays compliant — tardiness is not a policy violation."
        ),
        participants=(
            ParticipantSpec("petra", "owner"),
            ParticipantSpec(
                "frugal-app", "consumer", purpose="academic-research",
                behavior=Behavior.LATE_PAYER,
            ),
        ),
        resources=(
            ResourceSpec(
                owner="petra",
                path="/data/social-graph.json",
                allowed_purposes=("academic-research",),
            ),
        ),
        timeline=(
            access("frugal-app", res),
            use("frugal-app", res),
            advance(2 * DAY),
            monitor(res),
            check_holds("frugal-app", res, "late_payer_holds_copy"),
        ),
    ).validate()


def churned_pod_spec() -> ScenarioSpec:
    """A device churns mid-retention; the revised policy can no longer reach it."""
    res = "clara:/data/medical.ttl"
    return ScenarioSpec(
        name="churn-mid-retention",
        description=(
            "Both devices hold a copy; one churns.  The owner then shortens "
            "retention: the live device erases its copy, the churned one "
            "neither applies the update nor answers monitoring."
        ),
        participants=(
            ParticipantSpec("clara", "owner"),
            ParticipantSpec("steady-app", "consumer", purpose="medical-research"),
            ParticipantSpec(
                "flaky-app", "consumer", purpose="medical-research",
                behavior=Behavior.CHURNED,
            ),
        ),
        resources=(ResourceSpec(owner="clara", path="/data/medical.ttl",
                                retention_seconds=MONTH),),
        timeline=(
            access("steady-app", res),
            access("flaky-app", res),
            advance(2 * DAY),
            churn("flaky-app"),
            revise_policy(res, retention_seconds=DAY),
            check_holds("steady-app", res, "live_copy_erased_on_update", negate=True),
            check_holds("flaky-app", res, "churned_copy_survives"),
            monitor(res),
        ),
    ).validate()


def revocation_playbook_spec() -> ScenarioSpec:
    """Detected violators are revoked and excluded from the next round."""
    res = "rita:/data/browsing.csv"
    return ScenarioSpec(
        name="revocation-playbook",
        description=(
            "With violation response enabled, the owner's responder revokes "
            "the flagged device's grant, ACL entry, and certificate; the "
            "second monitoring round only reaches the compliant device."
        ),
        participants=(
            ParticipantSpec("rita", "owner"),
            ParticipantSpec("good-app", "consumer", purpose="web-analytics"),
            ParticipantSpec(
                "bad-app", "consumer", purpose="web-analytics",
                behavior=Behavior.VIOLATING,
            ),
        ),
        resources=(ResourceSpec(owner="rita", path="/data/browsing.csv",
                                retention_seconds=WEEK),),
        timeline=(
            access("good-app", res),
            access("bad-app", res),
            advance(8 * DAY),
            monitor(res),   # bad-app flagged; responder revokes it
            advance(DAY),
            monitor(res),   # bad-app no longer a holder
        ),
        respond_to_violations=True,
    ).validate()


def revocation_recovery_spec() -> ScenarioSpec:
    """The full violation-response cascade: revoke, refuse, re-pay, re-admit."""
    res = "ruth:/data/browsing.csv"
    return ScenarioSpec(
        name="revocation-recovery",
        description=(
            "A flagged violator is revoked (grant, pod ACL, certificate); its "
            "bare re-access attempt is refused, re-purchasing the certificate "
            "alone is not enough, and only after the owner re-grants the ACL "
            "is it served again — re-entering monitoring with a fresh copy."
        ),
        participants=(
            ParticipantSpec("ruth", "owner"),
            ParticipantSpec("good-app", "consumer", purpose="web-analytics"),
            ParticipantSpec(
                "bad-app", "consumer", purpose="web-analytics",
                behavior=Behavior.VIOLATING,
            ),
        ),
        resources=(ResourceSpec(owner="ruth", path="/data/browsing.csv",
                                retention_seconds=WEEK),),
        timeline=(
            access("good-app", res),
            access("bad-app", res),
            advance(8 * DAY),
            monitor(res),   # bad-app flagged; the responder revokes it
            attempt_access("bad-app", res, fact="denied_after_revocation", negate=True),
            attempt_access("good-app", res, fact="honest_reaccess_served"),
            repurchase_certificate("bad-app", res),
            attempt_access("bad-app", res, fact="certificate_alone_insufficient",
                           negate=True),
            regrant("bad-app", res),
            attempt_access("bad-app", res, fact="served_after_regrant"),
            advance(DAY),
            monitor(res),   # the re-admitted device is a compliant holder again
            check_holds("bad-app", res, "readmitted_copy_held"),
        ),
        respond_to_violations=True,
    ).validate()


def expired_reaccess_spec() -> ScenarioSpec:
    """Re-access of a deleted copy: retention erased it, a fresh fetch re-seals it."""
    res = "ezra:/data/telemetry.csv"
    return ScenarioSpec(
        name="expired-reaccess",
        description=(
            "An honest consumer's copy is erased by its own TEE when the "
            "retention lapses; with grant and certificate intact, a later "
            "re-access is served and seals a fresh copy whose retention "
            "clock starts anew."
        ),
        participants=(
            ParticipantSpec("ezra", "owner"),
            ParticipantSpec("reader-app", "consumer", purpose="service-improvement"),
        ),
        resources=(ResourceSpec(owner="ezra", path="/data/telemetry.csv",
                                retention_seconds=WEEK),),
        timeline=(
            access("reader-app", res),
            use("reader-app", res),
            advance(9 * DAY),
            monitor(res),   # housekeeping erased the copy first: compliant
            check_holds("reader-app", res, "expired_copy_deleted", negate=True),
            attempt_access("reader-app", res, fact="deleted_copy_reaccess_served"),
            check_holds("reader-app", res, "fresh_copy_held"),
            advance(DAY),
            monitor(res),   # the fresh copy is well inside its new retention
        ),
    ).validate()


def byzantine_validator_spec() -> ScenarioSpec:
    """A 3-validator market where one validator equivocates mid-run.

    The usage-control story is ordinary — two consumers access and use a
    monitored resource — but the chain underneath is a replicated
    3-validator network whose third validator double-seals its slot between
    the accesses and the monitoring round.  The conformance suite asserts
    that every honest replica converges to the same head, that the
    slashable equivocation proof names validator 2, that
    ``verify_chain(replay=True)`` passes on the canonical chain, and that
    the violation ledger still closes (the negligent holder is flagged as
    if consensus had never been attacked).
    """
    res = "vera:/data/sensor-feed.csv"
    return ScenarioSpec(
        name="byzantine-validator",
        description=(
            "One of three PoA validators seals two conflicting blocks for "
            "the same slot; fork-choice converges the honest replicas, the "
            "double-seal is recorded as a slashable proof, and monitoring "
            "results are unaffected."
        ),
        participants=(
            ParticipantSpec("vera", "owner"),
            ParticipantSpec("tidy-app", "consumer", purpose="web-analytics"),
            ParticipantSpec(
                "messy-app", "consumer", purpose="web-analytics",
                behavior=Behavior.VIOLATING,
            ),
        ),
        resources=(ResourceSpec(owner="vera", path="/data/sensor-feed.csv",
                                retention_seconds=WEEK),),
        timeline=(
            access("tidy-app", res),
            access("messy-app", res),
            use("tidy-app", res),
            equivocate(2),
            use("messy-app", res),
            advance(9 * DAY),
            monitor(res),
        ),
        validators=3,
    ).validate()


def validator_churn_spec() -> ScenarioSpec:
    """Exercise the on-chain validator registry: join, slash, leave.

    A durable 4-validator deployment runs in epoch-aware mode
    (``epoch_length=4``): the Aura rotation is re-derived from the
    validator-registry contract at every epoch boundary.  A fifth replica
    joins mid-run by bonding a deposit through an ordinary transaction and
    starts proposing at the next boundary.  Validator 2 then equivocates;
    the double-seal proof is submitted back to the registry as a signed
    slash transaction, the contract re-verifies it, burns the bond, and the
    next epoch's rotation excludes the culprit on every replica — no
    skipped slots once the boundary passes.  Validator 3 is hard-crashed
    after the slash and cold-started from disk to prove the state-derived
    rotation survives recovery, and the joined validator finally leaves,
    entering cool-down.  The usage-control story (walt's ledger served to a
    reader app) is unaffected throughout.
    """
    res = "walt:/data/ledger.csv"
    return ScenarioSpec(
        name="validator-churn",
        description=(
            "A durable 4-validator epoch-aware deployment admits a fifth "
            "validator through a bonded join transaction, slashes an "
            "equivocator on-chain (proof verified by the registry contract, "
            "bond burned, rotation excludes it at the next epoch), "
            "cold-starts a crashed follower from disk after the slash, and "
            "processes a leave — while the market keeps serving."
        ),
        participants=(
            ParticipantSpec("walt", "owner"),
            ParticipantSpec("reader-app", "consumer", purpose="service-improvement"),
        ),
        resources=(ResourceSpec(owner="walt", path="/data/ledger.csv",
                                retention_seconds=MONTH),),
        timeline=(
            access("reader-app", res),
            join_validator(4),
            use("reader-app", res),
            equivocate(2),
            advance(DAY),
            monitor(res),
            crash_validator(3),
            restart_validator(3),
            leave_validator(4),
            advance(DAY),
            monitor(res),
        ),
        validators=4,
        durable=True,
        snapshot_interval=4,
        max_reorg_depth=4,
        epoch_length=4,
    ).validate()


def durable_churn_spec() -> ScenarioSpec:
    """Hard-crash a durable validator mid-run and cold-start it from disk.

    A 3-validator deployment persists every replica's chain (block log,
    finality snapshots every 4 blocks, reorg window 4).  Validator 1 is
    killed -9 mid-run — its store is abandoned un-synced with a torn record
    at the log tail — while the market keeps operating through the
    remaining replicas.  The restart rebuilds it from disk: every record
    checksum re-verified, the torn tail truncated, the chain cold-started
    from the best promoted snapshot plus a re-executed tail, and the
    missing blocks resynced from peers.  The conformance suite asserts the
    restarted replica passes ``verify_chain(replay=True)``, that every
    replica converges on one head, and that the violation ledger closes as
    if the crash had never happened.
    """
    res = "dana:/data/turbine-logs.csv"
    return ScenarioSpec(
        name="durable-churn",
        description=(
            "A durable 3-validator deployment hard-crashes one replica "
            "(kill -9: stale manifest, torn tail record) and rebuilds it "
            "from its chain store; recovery truncates the garbage, "
            "cold-starts from a finality snapshot, resyncs the rest from "
            "peers, and the market's monitoring results are unaffected."
        ),
        participants=(
            ParticipantSpec("dana", "owner"),
            ParticipantSpec("steady-app", "consumer", purpose="predictive-maintenance"),
            ParticipantSpec(
                "sloppy-app", "consumer", purpose="predictive-maintenance",
                behavior=Behavior.VIOLATING,
            ),
        ),
        resources=(ResourceSpec(owner="dana", path="/data/turbine-logs.csv",
                                retention_seconds=WEEK),),
        timeline=(
            access("steady-app", res),
            access("sloppy-app", res),
            use("steady-app", res),
            crash_validator(1),
            use("sloppy-app", res),
            advance(DAY),
            monitor(res),
            restart_validator(1),
            advance(8 * DAY),
            monitor(res),
        ),
        validators=3,
        durable=True,
        snapshot_interval=4,
        max_reorg_depth=4,
    ).validate()


POPULATION_SETUP_COHORT = 250


def population_spec(num_consumers: int = 1000, num_owners: int = 2,
                    seed: int = 2026,
                    behavior_mix: Optional[Mapping[Behavior, float]] = None,
                    name: Optional[str] = None,
                    setup_cohort: Optional[int] = POPULATION_SETUP_COHORT,
                    monitor_workers: int = 1) -> ScenarioSpec:
    """The population-scale family: thousands of consumers, mixed profiles.

    Built through :func:`~repro.core.spec.spec_from_workload` from one seed,
    so ``population_spec(2000, seed=7)`` is the same scenario everywhere —
    the benchmarks, the library, and a failure replay all agree on it.
    Owners each publish one resource; every consumer accesses one resource
    and uses it once, then every resource is monitored after nine days.
    Setup registers/funds/onboards consumers one cohort per block
    (*setup_cohort*, default 250), so the setup phase seals
    O(population / cohort) blocks instead of O(population).
    """
    from repro.sim.workload import WorkloadConfig

    config = WorkloadConfig(
        num_owners=num_owners,
        num_consumers=num_consumers,
        resources_per_owner=1,
        reads_per_consumer=1,
        seed=seed,
    )
    spec = spec_from_workload(
        config,
        random.Random(seed),
        behavior_mix=behavior_mix if behavior_mix is not None else POPULATION_BEHAVIOR_MIX,
        name=name or f"population-{num_consumers}",
        setup_cohort=setup_cohort,
    )
    if monitor_workers != 1:
        spec = dataclasses.replace(spec, monitor_workers=monitor_workers)
    return spec


def bounded_use_spec() -> ScenarioSpec:
    """A max-access policy: the TEE deletes the copy at the use ceiling."""
    res = "max:/data/panel.csv"
    return ScenarioSpec(
        name="bounded-use",
        description=(
            "The policy allows three uses; the third use triggers the "
            "deletion duty inside the TEE, and the next use is refused."
        ),
        participants=(
            ParticipantSpec("max", "owner"),
            ParticipantSpec("metered-app", "consumer", purpose="marketing"),
        ),
        resources=(ResourceSpec(owner="max", path="/data/panel.csv", max_accesses=3),),
        timeline=(
            access("metered-app", res),
            use("metered-app", res),
            use("metered-app", res),
            use("metered-app", res),
            use("metered-app", res),   # refused: the copy is gone
            check_holds("metered-app", res, "copy_deleted_at_ceiling", negate=True),
            monitor(res),
        ),
    ).validate()


def market_rush_spec() -> ScenarioSpec:
    """A busy honest market: several owners, consumers, and clean rounds."""
    r1 = "oak:/data/browsing.csv"
    r2 = "oak:/data/fitness.json"
    r3 = "pine:/data/purchases.csv"
    return ScenarioSpec(
        name="market-rush",
        description=(
            "Two owners, three honest consumers, overlapping accesses and "
            "uses; every monitoring round is compliant and the money adds up."
        ),
        participants=(
            ParticipantSpec("oak", "owner"),
            ParticipantSpec("pine", "owner"),
            ParticipantSpec("app-1", "consumer", purpose="web-analytics"),
            ParticipantSpec("app-2", "consumer", purpose="marketing"),
            ParticipantSpec("app-3", "consumer", purpose="service-improvement"),
        ),
        resources=(
            ResourceSpec(owner="oak", path="/data/browsing.csv", retention_seconds=MONTH),
            ResourceSpec(owner="oak", path="/data/fitness.json", retention_seconds=MONTH),
            ResourceSpec(owner="pine", path="/data/purchases.csv", retention_seconds=MONTH),
        ),
        timeline=(
            access("app-1", r1),
            access("app-2", r1),
            access("app-2", r3),
            access("app-3", r2),
            access("app-3", r3),
            use("app-1", r1),
            use("app-2", r3),
            use("app-3", r2),
            advance(12 * HOUR),
            monitor(r1),
            monitor(r2),
            monitor(r3),
        ),
    ).validate()


SCENARIO_LIBRARY: Dict[str, SpecFactory] = {
    "alice-bob": alice_bob_spec,
    "negligent-holder": negligent_holder_spec,
    "unreachable-device": unreachable_device_spec,
    "byzantine-oracle": byzantine_oracle_spec,
    "stale-oracle-replay": stale_oracle_spec,
    "late-payer": late_payer_spec,
    "churn-mid-retention": churned_pod_spec,
    "revocation-playbook": revocation_playbook_spec,
    "revocation-recovery": revocation_recovery_spec,
    "expired-reaccess": expired_reaccess_spec,
    "bounded-use": bounded_use_spec,
    "market-rush": market_rush_spec,
    "byzantine-validator": byzantine_validator_spec,
    "validator-churn": validator_churn_spec,
    "durable-churn": durable_churn_spec,
    # A small member of the population family so the fast suite exercises
    # the mixed-profile path end to end; the benchmarks scale it to 1k-5k.
    "population-demo": lambda: population_spec(num_consumers=60, seed=2026,
                                               name="population-demo"),
}


def get_scenario(name: str) -> ScenarioSpec:
    """Build the named scenario spec (raises KeyError for unknown names)."""
    return SCENARIO_LIBRARY[name]()
