"""Data owners and data consumers.

These classes bundle the per-participant moving parts of Fig. 1: a data owner
operates a pod manager plus its blockchain interaction module and push-in
oracle; a data consumer operates a trusted execution environment with its
trusted application, pull-out/pull-in oracle components, and its own
interaction module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import NotFoundError
from repro.policy.model import Policy
from repro.policy.serialization import policy_to_dict
from repro.solid.pod import OCTET_STREAM
from repro.solid.pod_manager import PodManager
from repro.solid.webid import WebID
from repro.blockchain.transaction import LogEntry, Receipt
from repro.oracles.base import BlockchainInteractionModule
from repro.oracles.pull_in import PullInOracle
from repro.oracles.pull_out import PullOutOracle
from repro.oracles.push_in import PushInOracle
from repro.oracles.push_out import PushOutOracle
from repro.tee.enclave import TrustedExecutionEnvironment
from repro.tee.trusted_app import TrustedApplication


def consumer_for_device(architecture, device_id: str) -> Optional["DataConsumer"]:
    """Resolve the consumer operating *device_id* on an architecture.

    Uses the architecture's O(1) device map when it has one
    (``UsageControlArchitecture.consumer_for_device``); scanning the
    consumer registry is kept as a fallback for custom wirings.
    """
    finder = getattr(architecture, "consumer_for_device", None)
    if finder is not None:
        return finder(device_id)
    for consumer in architecture.consumers.values():
        if consumer.device_id == device_id:
            return consumer
    return None


@dataclass
class DataOwner:
    """A data owner: WebID, pod manager, and the owner-side oracle components."""

    webid: WebID
    pod_manager: PodManager
    module: BlockchainInteractionModule
    push_in: PushInOracle
    push_out: PushOutOracle
    market_address: str
    monitoring_evidence: List[LogEntry] = field(default_factory=list)
    receipts: List[Receipt] = field(default_factory=list)
    # resource_id -> id of the latest monitoring round opened by this owner
    # (recorded by the architecture wiring from the start_monitoring return
    # value, so coordinators never re-scan MonitoringRequested logs).
    monitoring_round_ids: Dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.webid.name

    @property
    def address(self) -> str:
        return self.webid.address

    # -- pod and resource management -------------------------------------------------

    def initialize_pod(self, default_policy: Optional[Policy] = None,
                       subscribers: Optional[List[str]] = None):
        """Fig. 2.1 — create the pod; the wiring pushes its record on-chain."""
        return self.pod_manager.create_pod(default_policy=default_policy, subscribers=subscribers)

    def upload_resource(self, path: str, content: bytes, content_type: str = OCTET_STREAM,
                        metadata: Optional[Dict[str, str]] = None) -> str:
        """Store data in the pod through the Solid protocol (pre-publication)."""
        return self.pod_manager.upload_resource(path, content, content_type, metadata)

    def publish_resource(self, path: str, policy: Policy,
                         metadata: Optional[Dict[str, Any]] = None) -> str:
        """Fig. 2.2 — add an uploaded resource to the data market."""
        return self.pod_manager.publish_resource(path, policy, metadata)

    def update_policy(self, path: str, new_policy: Policy) -> Policy:
        """Fig. 2.5 — revise the usage policy of a published resource."""
        return self.pod_manager.update_policy(path, new_policy)

    def request_monitoring(self, path: str) -> str:
        """Fig. 2.6 — ask the DE App to check compliance for a resource."""
        return self.pod_manager.request_monitoring(path)

    # -- market ---------------------------------------------------------------------------

    def list_on_market(self, resource_id: str) -> Receipt:
        """Register the resource on the data market so consumers can pay for it."""
        return self.module.call_contract(
            self.market_address, "list_resource", {"resource_id": resource_id, "owner": self.address}
        )

    def market_earnings(self) -> int:
        """Accumulated (not yet withdrawn) market earnings of this owner."""
        return self.module.read(self.market_address, "earnings_of", {"owner": self.address})

    def withdraw_earnings(self) -> Receipt:
        """Withdraw accumulated market earnings to the owner's account."""
        return self.module.call_contract(self.market_address, "withdraw_earnings", {"owner": self.address})

    # -- monitoring results ------------------------------------------------------------------

    def record_evidence_notification(self, log: LogEntry) -> None:
        """Push-out callback collecting evidence notifications for this owner."""
        self.monitoring_evidence.append(log)

    def evidence_for(self, resource_id: str) -> List[LogEntry]:
        return [log for log in self.monitoring_evidence if log.data.get("resource_id") == resource_id]


@dataclass
class DataConsumer:
    """A data consumer: WebID, TEE + trusted application, and consumer-side oracles."""

    webid: WebID
    tee: TrustedExecutionEnvironment
    trusted_app: TrustedApplication
    module: BlockchainInteractionModule
    pull_out: PullOutOracle
    pull_in: PullInOracle
    push_out: PushOutOracle
    market_address: str
    dist_exchange_address: str
    purpose: Optional[str] = None
    certificates: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    policy_update_notifications: List[LogEntry] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.webid.name

    @property
    def address(self) -> str:
        return self.webid.address

    @property
    def device_id(self) -> str:
        return self.tee.device_id

    # -- market interactions --------------------------------------------------------------

    def subscribe_to_market(self, payment: Optional[int] = None) -> Receipt:
        """Pay the subscription fee and join the data market."""
        fees = self.module.read(self.market_address, "get_fees")
        amount = payment if payment is not None else fees["subscription_fee"]
        return self.module.call_contract(self.market_address, "subscribe", {}, value=amount)

    def purchase_certificate(self, resource_id: str, payment: Optional[int] = None) -> Dict[str, Any]:
        """Buy the market-fee certificate required to access *resource_id*."""
        fees = self.module.read(self.market_address, "get_fees")
        amount = payment if payment is not None else fees["access_fee"]
        receipt = self.module.call_contract(
            self.market_address, "purchase_certificate", {"resource_id": resource_id}, value=amount
        )
        certificate = receipt.return_value
        self.certificates[resource_id] = certificate
        self.trusted_app.hold_certificate(resource_id, certificate["certificate_id"])
        return certificate

    # -- resource lifecycle (Fig. 2.3 / 2.4) ----------------------------------------------------

    def lookup_resource(self, resource_id: str) -> Dict[str, Any]:
        """Fig. 2.3 — resource indexing through the pull-out oracle."""
        return self.trusted_app.lookup_resource(resource_id)

    def retrieve_resource(self, resource_id: str) -> Dict[str, Any]:
        """Fig. 2.4 — fetch the resource into the TEE and record the grant on-chain."""
        result = self.trusted_app.retrieve_resource(resource_id)
        self.module.call_contract(
            self.dist_exchange_address,
            "record_access_grant",
            {
                "resource_id": resource_id,
                "consumer": self.webid.iri,
                "device_id": self.device_id,
                "purpose": self.purpose,
            },
        )
        return result

    def use_resource(self, resource_id: str, purpose: Optional[str] = None) -> bytes:
        """Use the locally stored copy under policy enforcement."""
        return self.trusted_app.use_resource(resource_id, purpose)

    def holds_copy(self, resource_id: str) -> bool:
        return self.trusted_app.holds_copy(resource_id)

    # -- policy updates (Fig. 2.5) ------------------------------------------------------------------

    def handle_policy_update(self, log: LogEntry) -> None:
        """Push-out callback: apply an on-chain policy update to the local copy."""
        holders = log.data.get("holders") or []
        if holders and self.device_id not in holders:
            return
        self.policy_update_notifications.append(log)
        resource_id = log.data.get("resource_id")
        policy_data = log.data.get("policy")
        if resource_id is None or policy_data is None:
            return
        try:
            self.trusted_app.handle_policy_update(resource_id, policy_data)
        except NotFoundError:
            # The device no longer holds (or never held) the copy.
            pass

    # -- monitoring (Fig. 2.6) -------------------------------------------------------------------------

    def provide_usage_evidence(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Pull-in provider answering usage-evidence requests for this device."""
        resource_id = payload.get("resource_id", "")
        return self.trusted_app.provide_evidence(resource_id)
