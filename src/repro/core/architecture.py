"""Deployment wiring of the decentralized usage control architecture (Fig. 1).

:class:`UsageControlArchitecture` stands up a complete deployment:

* a Proof-of-Authority blockchain node operated by the market operator, with
  the :class:`~repro.contracts.dist_exchange.DistExchangeApp`,
  :class:`~repro.contracts.market.DataMarket`, and
  :class:`~repro.contracts.oracle_hub.OracleRequestHub` contracts deployed;
* an attestation verifier trusting the reference trusted-application
  measurement;
* a shared Solid client and network latency model;
* factories that register data owners (pod manager + push-in/push-out
  oracles, wired so that pod-manager events become DE App transactions) and
  data consumers (TEE + trusted application + pull-out/pull-in/push-out
  oracles, wired so that on-chain policy updates reach the device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.clock import Clock, SimulatedClock
from repro.common.errors import ValidationError
from repro.policy.serialization import policy_to_dict
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import NetworkModel
from repro.sim.scheduler import EventScheduler
from repro.blockchain.consensus import ProofOfAuthority
from repro.blockchain.crypto import KeyPair
from repro.blockchain.gas import GasSchedule
from repro.blockchain.network import BlockchainNetwork
from repro.blockchain.node import BlockchainNode
from repro.blockchain.vm import ContractRegistry
from repro.contracts.dist_exchange import DistExchangeApp
from repro.contracts.market import DataMarket
from repro.contracts.oracle_hub import OracleRequestHub
from repro.contracts.validator_registry import ValidatorRegistry
from repro.oracles.base import BlockchainInteractionModule
from repro.oracles.pull_in import FAULT_UNRESPONSIVE, PullInOracle
from repro.oracles.pull_out import PullOutOracle
from repro.oracles.push_in import PushInOracle
from repro.oracles.push_out import PushOutOracle
from repro.solid.client import SolidClient
from repro.solid.pod_manager import PodManager
from repro.solid.webid import WebID
from repro.tee.attestation import AttestationVerifier
from repro.tee.enclave import TrustedExecutionEnvironment
from repro.tee.trusted_app import TrustedApplication
from repro.core.participants import DataConsumer, DataOwner


@dataclass
class ArchitectureConfig:
    """Tunable parameters of a deployment."""

    block_interval: float = 5.0
    subscription_fee: int = 100
    access_fee: int = 10
    owner_share_percent: int = 80
    initial_participant_funds: int = 50_000_000
    operator_funds: int = 10_000_000_000
    # Size of the PoA validator set.  1 (the default) is the classic
    # single-node deployment; >1 stands up a replicated validator network
    # (one full node per validator, proposer rotation, fault injection) and
    # routes every transaction through it.
    validators: int = 1
    # Dynamic validator sets: with epoch_length > 0 a multi-validator
    # deployment deploys the ValidatorRegistry contract, derives the PoA
    # rotation from its state at every epoch_length-block boundary, and
    # settles join (bonded deposit), leave (cool-down refund), and slash
    # (proof-verified bond burn) as ordinary transactions.  0 keeps the
    # committee static.
    epoch_length: int = 0
    validator_bond: int = 1_000_000
    validator_cooldown_blocks: int = 8
    gas_schedule: GasSchedule = None  # type: ignore[assignment]
    # Durable deployments: a directory root makes every validator persist
    # its chain to ``<persist_dir>/validator-<i>`` (crash-safe block log,
    # finality snapshots every ``snapshot_interval`` blocks, durable
    # contract registry), enabling hard crashes and cold-start recovery.
    persist_dir: Optional[str] = None
    snapshot_interval: int = 0
    max_reorg_depth: Optional[int] = None

    def __post_init__(self):
        if self.gas_schedule is None:
            self.gas_schedule = GasSchedule()
        if self.initial_participant_funds <= 0:
            raise ValidationError("participants need positive initial funds")
        if not 0 <= self.owner_share_percent <= 100:
            raise ValidationError("owner_share_percent must be within [0, 100]")
        if self.subscription_fee < 0:
            raise ValidationError("subscription_fee must be non-negative")
        if self.access_fee < 0:
            raise ValidationError("access_fee must be non-negative")
        if self.block_interval <= 0:
            raise ValidationError("block_interval must be positive")
        if self.validators < 1:
            raise ValidationError("a deployment needs at least one validator")
        if self.epoch_length < 0:
            raise ValidationError("epoch_length must be non-negative")
        if self.epoch_length and self.validators < 2:
            raise ValidationError(
                "a dynamic validator set (epoch_length > 0) needs a "
                "multi-validator deployment (validators > 1)"
            )
        if self.validator_bond < 0:
            raise ValidationError("validator_bond must be non-negative")
        if self.validator_cooldown_blocks < 0:
            raise ValidationError("validator_cooldown_blocks must be non-negative")
        if self.snapshot_interval < 0:
            raise ValidationError("snapshot_interval must be non-negative")
        if self.max_reorg_depth is not None and self.max_reorg_depth < 1:
            raise ValidationError("max_reorg_depth must be at least 1")
        if self.snapshot_interval and self.persist_dir is None:
            raise ValidationError("snapshot_interval needs a persist_dir")


class UsageControlArchitecture:
    """A fully wired deployment of the usage control architecture."""

    def __init__(self, config: Optional[ArchitectureConfig] = None,
                 clock: Optional[Clock] = None, network: Optional[NetworkModel] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.config = config if config is not None else ArchitectureConfig()
        self.clock = clock if clock is not None else SimulatedClock(start=1_700_000_000.0)
        self.scheduler = EventScheduler(self.clock) if isinstance(self.clock, SimulatedClock) else None
        self.network = network if network is not None else NetworkModel(seed=11)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        # -- blockchain layer -------------------------------------------------------
        # With validators == 1 the deployment is the classic single node
        # (bit-identical to earlier releases); with more, the operator seals
        # as validator 0 of a replicated network and every interaction
        # module talks to its node, which broadcasts submissions to the
        # other replicas and drives the proposer rotation when auto-mining.
        self.operator_key = KeyPair.from_name("market-operator")
        genesis_balances = {self.operator_key.address: self.config.operator_funds}

        def _registry() -> ContractRegistry:
            registry = ContractRegistry()
            registry.register(DistExchangeApp)
            registry.register(DataMarket)
            registry.register(OracleRequestHub)
            registry.register(ValidatorRegistry)
            return registry

        if self.config.validators > 1:
            keypairs = [self.operator_key] + [
                KeyPair.from_name(f"validator-{index}")
                for index in range(1, self.config.validators)
            ]
            self.validator_network: Optional[BlockchainNetwork] = BlockchainNetwork(
                block_interval=self.config.block_interval,
                registry_factory=_registry,
                schedule=self.config.gas_schedule,
                clock=self.clock,
                genesis_balances=genesis_balances,
                keypairs=keypairs,
                persist_root=self.config.persist_dir,
                max_reorg_depth=self.config.max_reorg_depth,
                snapshot_interval=self.config.snapshot_interval,
                epoch_length=self.config.epoch_length,
            )
            self.node = self.validator_network.primary
        else:
            self.validator_network = None
            consensus = ProofOfAuthority(
                validators=[self.operator_key.address],
                block_interval=self.config.block_interval,
            )
            self.node = BlockchainNode(
                consensus,
                self.operator_key,
                registry=_registry(),
                schedule=self.config.gas_schedule,
                clock=self.clock,
                genesis_balances=genesis_balances,
                persist_dir=self.config.persist_dir,
                max_reorg_depth=self.config.max_reorg_depth,
                snapshot_interval=self.config.snapshot_interval,
            )
        self.operator_module = BlockchainInteractionModule(
            self.node, self.operator_key, network=self.network
        )

        # -- contract deployment -----------------------------------------------------
        self.dist_exchange_address = self.operator_module.deploy_contract("DistExchangeApp")
        self.market_address = self.operator_module.deploy_contract(
            "DataMarket",
            {
                "subscription_fee": self.config.subscription_fee,
                "access_fee": self.config.access_fee,
                "owner_share_percent": self.config.owner_share_percent,
            },
        )
        self.oracle_hub_address = self.operator_module.deploy_contract("OracleRequestHub")
        # Dynamic deployments additionally deploy the validator registry
        # (block 4) and point every replica's rotation derivation at it; the
        # operator escrows the genesis bonds at deployment.  Static
        # deployments keep the exact three-contract genesis prefix.
        self.validator_registry_address: Optional[str] = None
        if self.validator_network is not None and self.config.epoch_length > 0:
            genesis_validators = list(self.validator_network.consensus.validators)
            self.validator_registry_address = self.operator_module.deploy_contract(
                "ValidatorRegistry",
                {
                    "initial_validators": genesis_validators,
                    "bond_amount": self.config.validator_bond,
                    "cooldown_blocks": self.config.validator_cooldown_blocks,
                },
                value=self.config.validator_bond * len(genesis_validators),
            )
            self.validator_network.use_validator_registry(self.validator_registry_address)

        # -- trust layer ----------------------------------------------------------------
        self.attestation_verifier = AttestationVerifier()
        self.solid_client = SolidClient(network=self.network)

        self.owners: Dict[str, DataOwner] = {}
        self.consumers: Dict[str, DataConsumer] = {}
        # device_id -> consumer, so monitoring and violation handling resolve
        # a device in O(1) instead of scanning every registered consumer.
        self.consumers_by_device: Dict[str, DataConsumer] = {}

    # -- funding ------------------------------------------------------------------------

    def _fund(self, address: str, amount: Optional[int] = None) -> None:
        """Transfer initial funds from the operator to a new participant."""
        self.operator_module.send_transaction(
            address, {}, value=amount if amount is not None else self.config.initial_participant_funds
        )

    # -- participant registration ----------------------------------------------------------

    def register_owner(self, name: str, pod_base_url: Optional[str] = None) -> DataOwner:
        """Create a data owner with a wired pod manager and oracle components."""
        if name in self.owners:
            raise ValidationError(f"an owner named {name} is already registered")
        webid = WebID(name)
        self._fund(webid.address)
        module = BlockchainInteractionModule(self.node, webid.keypair, network=self.network)
        push_in = PushInOracle(module, self.dist_exchange_address)
        push_out = PushOutOracle(module, self.dist_exchange_address)

        pod_manager = PodManager(
            webid,
            base_url=pod_base_url,
            clock=self.clock,
            certificate_verifier=self._certificate_verifier,
        )
        self.solid_client.register_pod_manager(pod_manager)

        owner = DataOwner(
            webid=webid,
            pod_manager=pod_manager,
            module=module,
            push_in=push_in,
            push_out=push_out,
            market_address=self.market_address,
        )
        self._wire_owner(owner)
        self.owners[name] = owner
        self.metrics.counter("participants.owners").increment()
        return owner

    def register_consumer(self, name: str, purpose: Optional[str] = None,
                          device_id: Optional[str] = None) -> DataConsumer:
        """Create a data consumer with a TEE, trusted application, and oracles."""
        if name in self.consumers:
            raise ValidationError(f"a consumer named {name} is already registered")
        webid = WebID(name)
        self._fund(webid.address)
        module = BlockchainInteractionModule(self.node, webid.keypair, network=self.network)
        tee = TrustedExecutionEnvironment(
            device_id=device_id or f"device-{name}",
            owner_identity=webid.iri,
            clock=self.clock,
            default_purpose=purpose,
        )
        self.attestation_verifier.trust_measurement(tee.measurement)

        pull_out = PullOutOracle(module, self.dist_exchange_address)
        pull_in = PullInOracle(module, self.oracle_hub_address)
        push_out = PushOutOracle(module, self.dist_exchange_address)

        trusted_app = TrustedApplication(
            webid,
            tee,
            solid_client=self.solid_client,
            resource_resolver=pull_out.resource_record,
            purpose=purpose,
        )
        consumer = DataConsumer(
            webid=webid,
            tee=tee,
            trusted_app=trusted_app,
            module=module,
            pull_out=pull_out,
            pull_in=pull_in,
            push_out=push_out,
            market_address=self.market_address,
            dist_exchange_address=self.dist_exchange_address,
            purpose=purpose,
        )
        self._wire_consumer(consumer)
        self.consumers[name] = consumer
        self.consumers_by_device[consumer.device_id] = consumer
        self.metrics.counter("participants.consumers").increment()
        return consumer

    def consumer_for_device(self, device_id: str) -> Optional[DataConsumer]:
        """Return the consumer operating *device_id* (O(1) map lookup)."""
        return self.consumers_by_device.get(device_id)

    def disconnect_consumer(self, name: str) -> DataConsumer:
        """Take a consumer's device offline for the architecture's callbacks.

        The device stops receiving push-out notifications (policy updates,
        evidence events) and its pull-in component no longer answers
        monitoring requests — modelling a powered-off or churned device.
        Its local TEE keeps working, and the consumer stays registered so
        on-chain records (grants, certificates) still name it.
        """
        if name not in self.consumers:
            raise ValidationError(f"no consumer named {name} is registered")
        consumer = self.consumers[name]
        consumer.push_out.unsubscribe_all()
        consumer.pull_in.inject_fault(FAULT_UNRESPONSIVE)
        return consumer

    # -- wiring ---------------------------------------------------------------------------------

    def _certificate_verifier(self, certificate_id: str, consumer_address: str, resource_id: str) -> bool:
        """Pod managers verify market-fee certificates with a read-only call."""
        return bool(
            self.node.call(
                self.market_address,
                "verify_certificate",
                {
                    "certificate_id": certificate_id,
                    "consumer": consumer_address,
                    "resource_id": resource_id,
                },
            )
        )

    def _wire_owner(self, owner: DataOwner) -> None:
        """Connect pod-manager events to the owner's push-in oracle (Fig. 2.1/2.2/2.5/2.6)."""

        def on_pod_created(pod_url: str, owner_webid: WebID, default_policy) -> None:
            receipt = owner.push_in.push_pod_registration(
                pod_url, owner_webid.iri, policy_to_dict(default_policy)
            )
            owner.receipts.append(receipt)
            self.metrics.counter("process.pod_initiation").increment()

        def on_resource_published(resource_id: str, pod_url: str, location: str,
                                  owner_webid: WebID, policy, metadata) -> None:
            receipt = owner.push_in.push_resource_registration(
                resource_id, pod_url, location, owner_webid.iri, policy_to_dict(policy), metadata
            )
            owner.receipts.append(receipt)
            owner.list_on_market(resource_id)
            self.metrics.counter("process.resource_initiation").increment()

        def on_policy_updated(resource_id: str, policy, owner_webid: WebID) -> None:
            receipt = owner.push_in.push_policy_update(
                resource_id, policy_to_dict(policy), owner_webid.iri
            )
            owner.receipts.append(receipt)
            self.metrics.counter("process.policy_modification").increment()

        def on_monitoring_requested(resource_id: str, owner_webid: WebID) -> None:
            receipt = owner.push_in.push_monitoring_request(resource_id, owner_webid.iri)
            owner.receipts.append(receipt)
            # start_monitoring returns the round id; remember it so the
            # monitoring coordinator does not re-scan the event history.
            owner.monitoring_round_ids[resource_id] = receipt.return_value
            self.metrics.counter("process.policy_monitoring").increment()

        owner.pod_manager.on(
            "pod_created",
            lambda pod_url, owner, default_policy: on_pod_created(pod_url, owner, default_policy),
        )
        owner.pod_manager.on(
            "resource_published",
            lambda resource_id, pod_url, location, owner, policy, metadata: on_resource_published(
                resource_id, pod_url, location, owner, policy, metadata
            ),
        )
        owner.pod_manager.on(
            "policy_updated",
            lambda resource_id, policy, owner: on_policy_updated(resource_id, policy, owner),
        )
        owner.pod_manager.on(
            "monitoring_requested",
            lambda resource_id, owner: on_monitoring_requested(resource_id, owner),
        )
        # The push-out oracle delivers evidence notifications back to the owner.
        owner.push_out.subscribe("EvidenceRecorded", owner.record_evidence_notification)

    def _wire_consumer(self, consumer: DataConsumer) -> None:
        """Subscribe the consumer's device to policy updates and evidence requests."""
        consumer.push_out.subscribe("PolicyUpdated", consumer.handle_policy_update)
        consumer.pull_in.register_provider("usage_evidence", consumer.provide_usage_evidence)
        consumer.pull_in.authorize_on_chain()

    # -- validator fault injection -----------------------------------------------------------------

    def _require_network(self) -> BlockchainNetwork:
        if self.validator_network is None:
            raise ValidationError(
                "validator faults need a multi-validator deployment (config.validators > 1)"
            )
        return self.validator_network

    def fail_validator(self, index: int) -> None:
        """Crash the validator at *index* (its slots are skipped)."""
        self._require_network().fail_validator(index)

    def recover_validator(self, index: int) -> None:
        """Bring a crashed validator back and resync its replica."""
        self._require_network().recover_validator(index)

    def equivocate_validator(self, index: int) -> None:
        """Make the validator at *index* double-seal its next proposing slot."""
        self._require_network().equivocate_validator(index)

    def crash_validator(self, index: int, torn_tail: bool = True) -> None:
        """Hard-crash (kill -9) the validator at *index*, abandoning its store."""
        self._require_network().crash_validator(index, torn_tail=torn_tail)

    def restart_validator(self, index: int) -> Dict[str, object]:
        """Rebuild a hard-crashed validator from disk; returns the recovery report."""
        return self._require_network().restart_validator(index)

    # -- dynamic validator membership ---------------------------------------------------------------

    def _require_registry(self) -> BlockchainNetwork:
        network = self._require_network()
        if self.validator_registry_address is None:
            raise ValidationError(
                "validator membership changes need a dynamic deployment "
                "(config.epoch_length > 0)"
            )
        return network

    def join_validator(self, index: Optional[int] = None) -> Dict[str, object]:
        """Stand up a new funded replica and settle its bonded ``join`` on-chain.

        *index* (when given) must be the next free validator index — the
        step is deterministic, so scenario specs name the replica they
        expect to create.  The operator funds the candidate with the bond
        plus gas headroom; the join transaction itself is signed by the
        candidate.  Returns the new replica's address, index, and bond.
        """
        network = self._require_registry()
        expected = len(network.validators)
        if index is not None and index != expected:
            raise ValidationError(
                f"the next validator index is {expected}, not {index}"
            )
        keypair = KeyPair.from_name(f"validator-{expected}")
        self._fund(keypair.address, self.config.validator_bond + 5_000_000)
        validator = network.join_validator(keypair)
        return {
            "address": validator.address,
            "index": expected,
            "bond": self.config.validator_bond,
        }

    def leave_validator(self, index: int) -> str:
        """Settle the validator's ``leave`` on-chain (exit at the next boundary)."""
        network = self._require_registry()
        if not 0 <= index < len(network.validators):
            raise ValidationError(
                f"validator index {index} out of range "
                f"(deployment has {len(network.validators)} validators)"
            )
        leaver = network.validators[index]
        # Genesis validators other than the operator hold no funds; cover
        # the gas for the leave (and a later withdraw) transaction.
        if self.node.get_balance(leaver.address) < 1_000_000:
            self._fund(leaver.address, 5_000_000)
        return network.leave_validator(index)

    # -- chain-level helpers -------------------------------------------------------------------------

    def dist_exchange_read(self, method: str, args: Optional[dict] = None):
        """Read-only call on the DE App (operator view)."""
        return self.node.call(self.dist_exchange_address, method, args or {})

    def market_read(self, method: str, args: Optional[dict] = None):
        """Read-only call on the data market contract."""
        return self.node.call(self.market_address, method, args or {})

    def total_gas_used(self) -> int:
        """Total gas consumed by the deployment so far (affordability metric)."""
        return self.node.chain.total_gas_used()

    def advance_time(self, seconds: float) -> None:
        """Advance the simulated clock (and run any scheduled jobs)."""
        if self.scheduler is not None:
            self.scheduler.run_for(seconds)
        elif isinstance(self.clock, SimulatedClock):
            self.clock.advance(seconds)

    def all_participants(self) -> List[str]:
        return sorted(list(self.owners) + list(self.consumers))
