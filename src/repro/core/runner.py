"""The scenario engine: interpret a :class:`ScenarioSpec` end to end.

:class:`ScenarioRunner` drives the existing architecture — processes,
monitoring coordinator, oracles, contracts — through a spec's scripted
timeline, while maintaining a *shadow model*: a small, independent
re-statement of what the spec's behavior profiles imply (who holds which
copy, which retention deadlines lapsed unenforced, which devices are
offline or Byzantine).  From the shadow model the runner derives the
**expected** violations for every monitoring round; the observed on-chain
outcomes are collected next to them in a :class:`ViolationLedger`, and the
conformance suite asserts the two agree.  Divergence means either the
architecture missed a scripted violation or it penalized an honest actor —
exactly the regressions the paper's claims forbid.

Every phase (setup and each timeline step) is instrumented with gas,
transaction, block, and wall-clock deltas (:class:`StepStats`), so
benchmarks can reuse scenario runs instead of bespoke drivers.

:class:`BaselineScenarioRunner` interprets the *same* spec against the
Solid-only :class:`~repro.core.baseline.BaselineSolidDeployment`, which
detects nothing — the paper's core comparison, made testable.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.errors import (
    AuthorizationError,
    NotFoundError,
    PolicyViolationError,
)
from repro.solid.wac import AccessMode
from repro.core.architecture import ArchitectureConfig, UsageControlArchitecture
from repro.core.baseline import BaselineSolidDeployment
from repro.core.monitoring import MonitoringCoordinator, MonitoringReport
from repro.core.participants import DataConsumer, DataOwner
from repro.core.processes import (
    ProcessTrace,
    market_onboarding,
    pod_initiation,
    policy_modification,
    policy_monitoring,
    resource_access,
    resource_indexing,
    resource_initiation,
)
from repro.core.spec import (
    Behavior,
    ENFORCING_BEHAVIORS,
    OFFLINE_FROM_START,
    ParticipantSpec,
    ResourceSpec,
    ScenarioSpec,
    Step,
)
from repro.core.violations import ViolationResponder
from repro.oracles.pull_in import FAULT_STALE_REPLAY, FAULT_TAMPER


@dataclass
class StepStats:
    """Resource consumption of one scenario phase (setup group or step)."""

    index: int
    phase: str
    label: str
    gas_used: int = 0
    transactions: int = 0
    blocks: int = 0
    wall_clock_seconds: float = 0.0
    network_seconds: float = 0.0
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "phase": self.phase,
            "label": self.label,
            "gasUsed": self.gas_used,
            "transactions": self.transactions,
            "blocks": self.blocks,
            "wallClockSeconds": self.wall_clock_seconds,
            "networkSeconds": self.network_seconds,
            "details": dict(self.details),
        }


@dataclass(frozen=True)
class ViolationRecord:
    """One (expected or observed) violation, anchored to a monitor step."""

    step_index: int
    resource_id: str
    device_id: str
    reason: str
    round_id: Optional[int] = None

    @property
    def key(self) -> Tuple[int, str, str]:
        return (self.step_index, self.resource_id, self.device_id)

    def to_dict(self) -> dict:
        return {
            "stepIndex": self.step_index,
            "resourceId": self.resource_id,
            "deviceId": self.device_id,
            "reason": self.reason,
            "roundId": self.round_id,
        }


@dataclass
class ViolationLedger:
    """Expected-vs-observed violations across every monitoring round."""

    expected: List[ViolationRecord] = field(default_factory=list)
    observed: List[ViolationRecord] = field(default_factory=list)

    @property
    def missing(self) -> List[ViolationRecord]:
        """Scripted violations the architecture failed to detect."""
        observed_keys = {record.key for record in self.observed}
        return [record for record in self.expected if record.key not in observed_keys]

    @property
    def unexpected(self) -> List[ViolationRecord]:
        """Detected violations the spec did not script (honest actor penalized)."""
        expected_keys = {record.key for record in self.expected}
        return [record for record in self.observed if record.key not in expected_keys]

    @property
    def matches(self) -> bool:
        return not self.missing and not self.unexpected

    def to_dict(self) -> dict:
        return {
            "expected": [record.to_dict() for record in self.expected],
            "observed": [record.to_dict() for record in self.observed],
            "missing": [record.to_dict() for record in self.missing],
            "unexpected": [record.to_dict() for record in self.unexpected],
        }


@dataclass
class ScenarioResult:
    """Everything a scenario run produced, ready for assertions and reporting."""

    architecture: UsageControlArchitecture
    spec: Optional[ScenarioSpec] = None
    traces: List[ProcessTrace] = field(default_factory=list)
    monitoring_reports: List[MonitoringReport] = field(default_factory=list)
    steps: List[StepStats] = field(default_factory=list)
    ledger: ViolationLedger = field(default_factory=ViolationLedger)
    resource_ids: Dict[str, str] = field(default_factory=dict)
    mispredictions: List[Dict[str, Any]] = field(default_factory=list)
    on_chain_violations: List[Dict[str, Any]] = field(default_factory=list)
    responders: Dict[str, ViolationResponder] = field(default_factory=dict)
    facts: Dict[str, object] = field(default_factory=dict)
    # Fields of the motivating Alice & Bob scenario, populated by its wrapper.
    alice_can_still_use_bobs_data: Optional[bool] = None
    bob_copy_deleted_after_update: Optional[bool] = None
    bob_use_blocked_after_deletion: Optional[bool] = None
    alice_resource_id: Optional[str] = None
    bob_resource_id: Optional[str] = None

    def trace_for(self, process: str) -> List[ProcessTrace]:
        return [trace for trace in self.traces if trace.process == process]

    # -- per-phase accounting (benchmark reuse) ------------------------------

    def _aggregate(self, attribute: str) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for stats in self.steps:
            totals[stats.phase] = totals.get(stats.phase, 0) + getattr(stats, attribute)
        return totals

    def gas_by_phase(self) -> Dict[str, int]:
        """Total gas per phase (setup plus each timeline step kind)."""
        return {phase: int(total) for phase, total in self._aggregate("gas_used").items()}

    def blocks_by_phase(self) -> Dict[str, int]:
        """Blocks sealed per phase."""
        return {phase: int(total) for phase, total in self._aggregate("blocks").items()}

    def transactions_by_phase(self) -> Dict[str, int]:
        """Transactions confirmed per phase."""
        return {phase: int(total) for phase, total in self._aggregate("transactions").items()}

    def network_by_phase(self) -> Dict[str, float]:
        """Simulated network seconds per phase (the E11 latency dimension)."""
        return self._aggregate("network_seconds")

    # -- global invariants ---------------------------------------------------

    def balance_conservation(self) -> Dict[str, object]:
        """Total supply accounting: balances plus burned gas equal genesis."""
        state = self.architecture.node.chain.state
        balances = sum(account.balance for account in state.accounts())
        gas_burned = self.architecture.node.chain.total_gas_used()
        supply = self.architecture.config.operator_funds
        return {
            "supply": supply,
            "balances": balances,
            "gasBurned": gas_burned,
            "holds": balances + gas_burned == supply,
        }

    def verify_chain_replay(self) -> bool:
        """Full re-execution check of the produced chain."""
        return self.architecture.node.chain.verify_chain(replay=True)

    # -- validator-network invariants -----------------------------------------

    @property
    def validator_network(self):
        """The multi-validator network, or None on a single-node run."""
        return self.architecture.validator_network

    def honest_heads_converged(self) -> bool:
        """Every online, honest replica agrees on the canonical head."""
        network = self.validator_network
        return True if network is None else network.honest_heads_converged()

    def equivocation_proofs(self) -> List[Any]:
        """Slashable double-seal proofs collected during the run."""
        network = self.validator_network
        return [] if network is None else list(network.equivocation_proofs)

    def liveness_holds(self) -> bool:
        """Slots were skipped exactly when their proposer was crashed/slashed."""
        network = self.validator_network
        if network is None:
            return True
        return not network.liveness_report()["violations"]


class _StepProbe:
    """Capture gas / transaction / block / wall-clock deltas of one phase."""

    def __init__(self, architecture: UsageControlArchitecture):
        self.architecture = architecture

    def __enter__(self) -> "_StepProbe":
        chain = self.architecture.node.chain
        self._wall = time.perf_counter()
        self._gas = chain.total_gas_used()
        self._txs = chain.transaction_count()
        self._height = chain.height
        self._network = self.architecture.network.total_latency
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        chain = self.architecture.node.chain
        self.wall = time.perf_counter() - self._wall
        self.gas = chain.total_gas_used() - self._gas
        self.transactions = chain.transaction_count() - self._txs
        self.blocks = chain.height - self._height
        self.network = self.architecture.network.total_latency - self._network

    def stats(self, index: int, phase: str, label: str,
              details: Optional[Dict[str, Any]] = None) -> StepStats:
        return StepStats(
            index=index,
            phase=phase,
            label=label,
            gas_used=self.gas,
            transactions=self.transactions,
            blocks=self.blocks,
            wall_clock_seconds=self.wall,
            network_seconds=self.network,
            details=details or {},
        )


# -- the shadow model ----------------------------------------------------------------


@dataclass
class _CopyState:
    """Spec-level belief about one device's copy of one resource."""

    stored_at: float
    retention: Optional[float]
    purposes: Optional[Tuple[str, ...]]
    max_accesses: Optional[int]
    uses: int = 0
    deleted: bool = False


class _ShadowModel:
    """Independent restatement of the spec's semantics.

    Tracks, purely from the spec's behavior profiles and the scripted
    timeline, what each device should hold and which monitoring rounds
    should flag it.  Deliberately *not* derived from the architecture's
    internals — agreement between this model and the observed on-chain
    record is the conformance property under test.
    """

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec
        self.behavior: Dict[str, Behavior] = {
            p.name: p.behavior for p in spec.consumers()
        }
        self.offline: Set[str] = {
            name for name, behavior in self.behavior.items()
            if behavior in OFFLINE_FROM_START
        }
        self.subscribed: Set[str] = set()
        self.copies: Dict[Tuple[str, str], _CopyState] = {}
        self.active_grants: Set[Tuple[str, str]] = set()
        # -- violation-response cascade state -------------------------------
        # (consumer, resource key) pairs holding a READ entry in the pod ACL.
        self.acl: Set[Tuple[str, str]] = set()
        # (consumer, resource key) pairs whose market-fee certificate the
        # playbook revoked and that have not re-purchased since.
        self.cert_revoked: Set[Tuple[str, str]] = set()
        self.owner_of: Dict[str, str] = {r.key: r.owner for r in spec.resources}
        # (consumer, resource key) -> time the stale oracle cached its answer
        self.replay_cached_at: Dict[Tuple[str, str], float] = {}
        self.current_policy: Dict[str, Tuple[Optional[float], Optional[Tuple[str, ...]], Optional[int]]] = {
            r.key: (r.retention_seconds, r.allowed_purposes, r.max_accesses)
            for r in spec.resources
        }

    # -- timeline events -----------------------------------------------------

    def on_access(self, consumer: str, resource: str, now: float,
                  granted: bool = True) -> None:
        retention, purposes, max_accesses = self.current_policy[resource]
        self.copies[(consumer, resource)] = _CopyState(
            stored_at=now,
            retention=retention,
            purposes=purposes,
            max_accesses=max_accesses,
        )
        self.active_grants.add((consumer, resource))
        if granted:
            # The full access process grants the pod ACL entry; a bare
            # re-access attempt (attempt_access) relies on an existing one.
            self.acl.add((consumer, resource))

    def predict_reaccess(self, consumer: str, resource: str) -> Tuple[bool, str]:
        """Whether a consumer-initiated re-access attempt should be served.

        Mirrors the pod manager's checks: the WAC ACL entry must still (or
        again) exist, and the market-fee certificate presented must not be
        revoked.  The revocation playbook removes both; ``regrant`` and
        ``repurchase_certificate`` restore them one at a time.
        """
        if consumer not in self.subscribed:
            return False, "not subscribed to the market"
        if (consumer, resource) not in self.acl:
            return False, "no pod ACL entry"
        if (consumer, resource) in self.cert_revoked:
            return False, "certificate revoked"
        return True, ""

    def on_repurchase(self, consumer: str, resource: str) -> None:
        self.cert_revoked.discard((consumer, resource))

    def on_regrant(self, consumer: str, resource: str) -> None:
        self.acl.add((consumer, resource))

    def predict_use(self, consumer: str, resource: str,
                    purpose: Optional[str]) -> Tuple[bool, str]:
        copy = self.copies.get((consumer, resource))
        if copy is None:
            return False, "no local copy"
        if copy.deleted:
            return False, "copy deleted"
        if copy.purposes is not None and purpose not in copy.purposes:
            return False, "purpose not allowed"
        if copy.max_accesses is not None and copy.uses >= copy.max_accesses:
            return False, "max accesses reached"
        return True, ""

    def on_use(self, consumer: str, resource: str, now: float) -> None:
        """Apply an *allowed* use: count it, then the in-TEE enforcement pass."""
        copy = self.copies[(consumer, resource)]
        copy.uses += 1
        self._enforce_copy(copy, now)

    def enforce(self, consumer: str, now: float) -> None:
        for (name, _), copy in self.copies.items():
            if name == consumer:
                self._enforce_copy(copy, now)

    @staticmethod
    def _enforce_copy(copy: _CopyState, now: float) -> None:
        if copy.deleted:
            return
        if copy.retention is not None and now - copy.stored_at >= copy.retention:
            copy.deleted = True
        elif copy.max_accesses is not None and copy.uses >= copy.max_accesses:
            copy.deleted = True

    def on_revise(self, resource: str, now: float, retention: Optional[float],
                  purposes: Optional[Tuple[str, ...]],
                  max_accesses: Optional[int]) -> None:
        """A policy update reaches every reachable copy holder immediately."""
        self.current_policy[resource] = (retention, purposes, max_accesses)
        for (consumer, key), copy in self.copies.items():
            if key != resource or consumer in self.offline:
                continue
            if (consumer, key) not in self.active_grants:
                continue  # revoked devices are no longer notified
            copy.retention = retention
            copy.purposes = purposes
            copy.max_accesses = max_accesses
            # The TEE executes newly due duties as part of applying the update.
            self._enforce_copy(copy, now)

    def on_churn(self, consumer: str) -> None:
        self.offline.add(consumer)

    def housekeeping(self, now: float) -> List[str]:
        """Run the pre-monitoring enforcement pass of every enforcing TEE."""
        enforced = []
        for name, behavior in self.behavior.items():
            if behavior in ENFORCING_BEHAVIORS and name not in self.offline:
                self.enforce(name, now)
                enforced.append(name)
        return enforced

    def holds(self, consumer: str, resource: str) -> bool:
        copy = self.copies.get((consumer, resource))
        return copy is not None and not copy.deleted

    # -- monitoring expectations ---------------------------------------------

    def expected_for_monitor(self, resource: str, now: float) -> List[Tuple[str, str]]:
        """(consumer, reason) pairs a round over *resource* should flag now."""
        flagged: List[Tuple[str, str]] = []
        for (consumer, key), copy in sorted(self.copies.items()):
            if key != resource or (consumer, key) not in self.active_grants:
                continue
            behavior = self.behavior[consumer]
            if consumer in self.offline:
                flagged.append((consumer, "no evidence provided"))
                continue
            if behavior is Behavior.TAMPERING_ORACLE:
                flagged.append((consumer, "forged evidence (invalid enclave signature)"))
                continue
            cached_at = self.replay_cached_at.get((consumer, key))
            if behavior is Behavior.STALE_ORACLE and cached_at is not None and cached_at < now:
                flagged.append((consumer, "stale evidence replayed by the oracle"))
                continue
            if (
                not copy.deleted
                and copy.retention is not None
                and now - copy.stored_at >= copy.retention
            ):
                flagged.append((consumer, "retention lapsed without enforcement"))
        return flagged

    def after_monitor(self, resource: str, now: float,
                      flagged: List[Tuple[str, str]]) -> None:
        """Post-round bookkeeping: replay caches and (optional) revocations."""
        for (consumer, key) in list(self.copies):
            if key != resource or consumer in self.offline:
                continue
            if (consumer, key) not in self.active_grants:
                continue
            if self.behavior[consumer] is Behavior.STALE_ORACLE:
                self.replay_cached_at.setdefault((consumer, key), now)
        if self.spec.respond_to_violations:
            # The responder's playbook: deactivate the DE App grant, revoke
            # the consumer's WAC authorization pod-wide (every resource of
            # this owner), and revoke the certificate for this resource.
            owner = self.owner_of[resource]
            for consumer, _ in flagged:
                self.active_grants.discard((consumer, resource))
                self.cert_revoked.add((consumer, resource))
                self.acl = {
                    (name, key)
                    for name, key in self.acl
                    if not (name == consumer and self.owner_of[key] == owner)
                }


# -- the runner ----------------------------------------------------------------------


class ScenarioRunner:
    """Execute a :class:`ScenarioSpec` against a fresh deployment.

    A run is a pure function of its spec: every random choice is made at
    spec-construction time (``spec_from_workload`` threads one seeded
    :class:`random.Random` through the workload generator and every
    spec-level draw), so any scenario reproduces from ``spec.seed`` alone.
    """

    def __init__(self, spec: ScenarioSpec, config: Optional[ArchitectureConfig] = None):
        self.spec = spec.validate()
        self.config = config

    # -- wiring ---------------------------------------------------------------

    def _architecture_config(self) -> Optional[ArchitectureConfig]:
        if self.config is not None:
            return self.config
        overrides: Dict[str, Any] = {}
        if self.spec.subscription_fee is not None:
            overrides["subscription_fee"] = self.spec.subscription_fee
        if self.spec.access_fee is not None:
            overrides["access_fee"] = self.spec.access_fee
        if self.spec.operator_funds is not None:
            overrides["operator_funds"] = self.spec.operator_funds
        if self.spec.participant_funds is not None:
            overrides["initial_participant_funds"] = self.spec.participant_funds
        if self.spec.validators > 1:
            overrides["validators"] = self.spec.validators
        if self.spec.epoch_length:
            overrides["epoch_length"] = self.spec.epoch_length
        if self.spec.durable:
            # Durable deployments persist every validator's chain under a
            # fresh temporary root (crash_validator/restart_validator need
            # real files to tear and recover).
            overrides["persist_dir"] = tempfile.mkdtemp(
                prefix=f"chainstore-{self.spec.name}-"
            )
            overrides["snapshot_interval"] = self.spec.snapshot_interval
            if self.spec.max_reorg_depth is not None:
                overrides["max_reorg_depth"] = self.spec.max_reorg_depth
        return ArchitectureConfig(**overrides) if overrides else None

    # -- execution ------------------------------------------------------------

    def run(self) -> ScenarioResult:
        spec = self.spec
        architecture = UsageControlArchitecture(config=self._architecture_config())
        coordinator = MonitoringCoordinator(architecture, workers=spec.monitor_workers)
        model = _ShadowModel(spec)
        result = ScenarioResult(architecture=architecture, spec=spec)

        owners: Dict[str, DataOwner] = {}
        consumers: Dict[str, DataConsumer] = {}
        device_of: Dict[str, str] = {p.name: p.device for p in spec.consumers()}

        # -- setup: contract deployment (spent during construction above) -------
        chain = architecture.node.chain
        result.steps.append(
            StepStats(
                index=0,
                phase="setup",
                label="setup:deploy",
                gas_used=chain.total_gas_used(),
                transactions=chain.transaction_count(),
                blocks=chain.height,
            )
        )

        # -- setup: participants ------------------------------------------------
        def register_participant(participant: ParticipantSpec) -> None:
            if participant.role == "owner":
                owner = architecture.register_owner(participant.name)
                owners[participant.name] = owner
                if spec.respond_to_violations:
                    result.responders[participant.name] = ViolationResponder(
                        architecture, owner
                    )
            else:
                consumer = architecture.register_consumer(
                    participant.name,
                    purpose=participant.purpose,
                    device_id=participant.device_id,
                )
                consumers[participant.name] = consumer
                if participant.behavior in OFFLINE_FROM_START:
                    architecture.disconnect_consumer(participant.name)
                elif participant.behavior is Behavior.STALE_ORACLE:
                    consumer.pull_in.inject_fault(FAULT_STALE_REPLAY)
                elif participant.behavior is Behavior.TAMPERING_ORACLE:
                    consumer.pull_in.inject_fault(FAULT_TAMPER)

        with _StepProbe(architecture) as probe:
            if spec.setup_cohort is None:
                for participant in spec.participants:
                    register_participant(participant)
            else:
                # Population-scale setup: owners register individually (there
                # are few), consumers one cohort per block — each cohort's
                # funding transfers and provider authorizations defer into a
                # single batch block instead of ~2 auto-mined blocks each.
                for participant in spec.owners():
                    register_participant(participant)
                consumer_specs = spec.consumers()
                for start in range(0, len(consumer_specs), spec.setup_cohort):
                    cohort = consumer_specs[start:start + spec.setup_cohort]
                    with architecture.operator_module.batch():
                        for participant in cohort:
                            register_participant(participant)
        result.steps.append(probe.stats(len(result.steps), "setup", "setup:participants"))

        # -- setup: pods --------------------------------------------------------
        with _StepProbe(architecture) as probe:
            for participant in spec.owners():
                result.traces.append(pod_initiation(architecture, owners[participant.name]))
        result.steps.append(probe.stats(len(result.steps), "setup", "setup:pods"))

        # -- setup: resources ---------------------------------------------------
        with _StepProbe(architecture) as probe:
            for resource in spec.resources:
                owner = owners[resource.owner]
                now = architecture.clock.now()
                policy = resource.build_policy(
                    owner.pod_manager.base_url + resource.path,
                    owner.webid.iri,
                    issued_at=now,
                )
                result.traces.append(
                    resource_initiation(
                        architecture,
                        owner,
                        resource.path,
                        resource.body(),
                        policy,
                        metadata=dict(resource.metadata) if resource.metadata else None,
                    )
                )
                result.resource_ids[resource.key] = owner.pod_manager.require_pod().url_for(
                    resource.path
                )
        result.steps.append(probe.stats(len(result.steps), "setup", "setup:resources"))

        # -- setup: market onboarding ------------------------------------------
        with _StepProbe(architecture) as probe:
            onboarding = [
                participant for participant in spec.consumers()
                if participant.behavior is not Behavior.LATE_PAYER
                # late payers pay (late) during their first access
            ]
            if spec.setup_cohort is None:
                for participant in onboarding:
                    result.traces.append(
                        market_onboarding(architecture, consumers[participant.name])
                    )
                    model.subscribed.add(participant.name)
            else:
                for start in range(0, len(onboarding), spec.setup_cohort):
                    cohort = onboarding[start:start + spec.setup_cohort]
                    modules = [consumers[p.name].module for p in cohort]
                    with architecture.operator_module.batch(*modules):
                        for participant in cohort:
                            result.traces.append(
                                market_onboarding(architecture, consumers[participant.name])
                            )
                            model.subscribed.add(participant.name)
        result.steps.append(probe.stats(len(result.steps), "setup", "setup:onboarding"))

        # -- the scripted timeline ----------------------------------------------
        context = _RunContext(
            architecture=architecture,
            coordinator=coordinator,
            model=model,
            result=result,
            owners=owners,
            consumers=consumers,
            device_of=device_of,
        )
        for timeline_index, step in enumerate(spec.timeline):
            handler = getattr(self, f"_run_{step.kind}")
            with _StepProbe(architecture) as probe:
                details = handler(step, timeline_index, context) or {}
            details.setdefault("timelineIndex", timeline_index)
            result.steps.append(
                probe.stats(len(result.steps), step.kind, step.label(), details)
            )

        # -- finalize -----------------------------------------------------------
        result.monitoring_reports = list(coordinator.reports)
        result.on_chain_violations = architecture.dist_exchange_read("get_violations")
        result.facts["total_gas_used"] = architecture.total_gas_used()
        result.facts["chain_height"] = architecture.node.chain.height
        result.facts["chain_valid"] = architecture.node.chain.verify_chain()
        result.facts["balance_conservation"] = result.balance_conservation()
        network = architecture.validator_network
        if network is not None:
            result.facts["validators"] = spec.validators
            result.facts["replica_heads"] = network.heads()
            result.facts["honest_heads_converged"] = network.honest_heads_converged()
            result.facts["equivocation_proofs"] = [
                proof.to_dict() for proof in network.equivocation_proofs
            ]
            result.facts["liveness"] = network.liveness_report()
        if spec.durable:
            result.facts["durable"] = True
            result.facts["persist_dir"] = architecture.config.persist_dir
        return result

    # -- step handlers ---------------------------------------------------------

    def _run_advance(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        ctx.architecture.advance_time(step.seconds or 0.0)
        return {"seconds": step.seconds}

    def _run_index(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        resource_id = ctx.result.resource_ids[step.resource]
        ctx.result.traces.append(
            resource_indexing(ctx.architecture, ctx.consumers[step.participant], resource_id)
        )
        return {"resourceId": resource_id}

    def _run_access(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        spec_participant = self.spec.participant(step.participant)
        consumer = ctx.consumers[step.participant]
        resource = self.spec.resource(step.resource)
        owner = ctx.owners[resource.owner]
        resource_id = ctx.result.resource_ids[step.resource]
        details: Dict[str, Any] = {"resourceId": resource_id}
        if (
            spec_participant.behavior is Behavior.LATE_PAYER
            and step.participant not in ctx.model.subscribed
        ):
            # The paper's flow requires proof of market-fee payment; the
            # late payer tries without one, is refused, then pays.
            try:
                consumer.trusted_app.retrieve_resource(resource_id)
                denied_first = False
            except (PolicyViolationError, AuthorizationError, NotFoundError):
                denied_first = True
            details["deniedBeforePayment"] = denied_first
            ctx.result.facts[f"{step.participant}_denied_before_payment"] = denied_first
            ctx.result.traces.append(market_onboarding(ctx.architecture, consumer))
            ctx.model.subscribed.add(step.participant)
        ctx.result.traces.append(
            resource_access(ctx.architecture, consumer, owner, resource_id)
        )
        ctx.model.on_access(step.participant, step.resource, ctx.architecture.clock.now())
        return details

    def _run_use(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        participant = self.spec.participant(step.participant)
        consumer = ctx.consumers[step.participant]
        resource_id = ctx.result.resource_ids[step.resource]
        effective_purpose = step.purpose if step.purpose is not None else participant.purpose
        predicted, predicted_reason = ctx.model.predict_use(
            step.participant, step.resource, effective_purpose
        )
        error: Optional[str] = None
        try:
            consumer.use_resource(resource_id, purpose=step.purpose)
            allowed = True
        except (PolicyViolationError, NotFoundError) as exc:
            allowed = False
            error = str(exc)
        if predicted:
            ctx.model.on_use(step.participant, step.resource, ctx.architecture.clock.now())
        if allowed != predicted:
            ctx.result.mispredictions.append(
                {
                    "stepIndex": index,
                    "kind": "use",
                    "participant": step.participant,
                    "resource": step.resource,
                    "predicted": predicted,
                    "observed": allowed,
                    "modelReason": predicted_reason,
                    "error": error,
                }
            )
        return {
            "allowed": allowed,
            "predicted": predicted,
            "purpose": effective_purpose,
            "error": error,
        }

    def _run_revise_policy(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        resource = self.spec.resource(step.resource)
        owner = ctx.owners[resource.owner]
        resource_id = ctx.result.resource_ids[step.resource]
        now = ctx.architecture.clock.now()
        retention, purposes, max_accesses = resource.revision_constraints(step)
        policy = resource.revised_policy(step, resource_id, owner.webid.iri, issued_at=now)
        ctx.result.traces.append(
            policy_modification(ctx.architecture, owner, resource.path, policy)
        )
        ctx.model.on_revise(step.resource, now, retention, purposes, max_accesses)
        return {
            "resourceId": resource_id,
            "newVersion": policy.version,
            "retentionSeconds": retention,
            "allowedPurposes": list(purposes) if purposes else None,
        }

    def _run_monitor(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        resource = self.spec.resource(step.resource)
        owner = ctx.owners[resource.owner]
        resource_id = ctx.result.resource_ids[step.resource]
        now = ctx.architecture.clock.now()
        if self.spec.housekeeping:
            for name in ctx.model.housekeeping(now):
                ctx.consumers[name].tee.enforce_policies()
        expected_pairs = ctx.model.expected_for_monitor(step.resource, now)
        ctx.result.traces.append(
            policy_monitoring(ctx.architecture, owner, resource.path, ctx.coordinator)
        )
        report = ctx.coordinator.reports[-1]
        expected_records = [
            ViolationRecord(
                step_index=index,
                resource_id=resource_id,
                device_id=ctx.device_of[name],
                reason=reason,
                round_id=report.round_id,
            )
            for name, reason in expected_pairs
        ]
        observed_records = [
            ViolationRecord(
                step_index=index,
                resource_id=resource_id,
                device_id=device_id,
                reason=str((report.evidence.get(device_id) or {}).get("details", "non-compliant evidence")),
                round_id=report.round_id,
            )
            for device_id in report.non_compliant_devices
        ]
        ctx.result.ledger.expected.extend(expected_records)
        ctx.result.ledger.observed.extend(observed_records)
        ctx.model.after_monitor(step.resource, now, expected_pairs)
        return {
            "resourceId": resource_id,
            "roundId": report.round_id,
            "holders": len(report.holders),
            "expected": [record.to_dict() for record in expected_records],
            "observed": [record.to_dict() for record in observed_records],
        }

    def _run_attempt_access(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        """A bare consumer-side retrieval: no owner re-grant, no auto-purchase."""
        consumer = ctx.consumers[step.participant]
        resource_id = ctx.result.resource_ids[step.resource]
        predicted, predicted_reason = ctx.model.predict_reaccess(
            step.participant, step.resource
        )
        error: Optional[str] = None
        try:
            consumer.retrieve_resource(resource_id)
            allowed = True
        except (PolicyViolationError, AuthorizationError, NotFoundError) as exc:
            allowed = False
            error = str(exc)
        if allowed:
            # A served attempt re-seals the copy and records a fresh grant.
            ctx.model.on_access(
                step.participant, step.resource, ctx.architecture.clock.now(),
                granted=False,
            )
        if step.fact:
            ctx.result.facts[step.fact] = (not allowed) if step.negate else allowed
        if allowed != predicted:
            ctx.result.mispredictions.append(
                {
                    "stepIndex": index,
                    "kind": "attempt_access",
                    "participant": step.participant,
                    "resource": step.resource,
                    "predicted": predicted,
                    "observed": allowed,
                    "modelReason": predicted_reason,
                    "error": error,
                }
            )
        return {
            "allowed": allowed,
            "predicted": predicted,
            "modelReason": predicted_reason,
            "error": error,
        }

    def _run_repurchase_certificate(self, step: Step, index: int,
                                    ctx: "_RunContext") -> dict:
        consumer = ctx.consumers[step.participant]
        resource_id = ctx.result.resource_ids[step.resource]
        certificate = consumer.purchase_certificate(resource_id)
        ctx.model.on_repurchase(step.participant, step.resource)
        return {"certificateId": certificate["certificate_id"]}

    def _run_regrant(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        resource = self.spec.resource(step.resource)
        owner = ctx.owners[resource.owner]
        consumer = ctx.consumers[step.participant]
        resource_id = ctx.result.resource_ids[step.resource]
        path = owner.pod_manager.require_pod().path_for(resource_id)
        if not owner.pod_manager.can_access(consumer.webid.iri, AccessMode.READ, path):
            owner.pod_manager.grant_access(
                consumer.webid.iri, [AccessMode.READ], resource_path=path
            )
        ctx.model.on_regrant(step.participant, step.resource)
        return {"resourceId": resource_id, "consumer": consumer.webid.iri}

    def _run_enforce(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        outcome = ctx.consumers[step.participant].tee.enforce_policies()
        ctx.model.enforce(step.participant, ctx.architecture.clock.now())
        return {"outcome": outcome.to_dict()}

    def _run_churn(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        ctx.architecture.disconnect_consumer(step.participant)
        ctx.model.on_churn(step.participant)
        return {"device": ctx.device_of[step.participant]}

    # -- validator fault steps ---------------------------------------------------

    def _run_fail_validator(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        network = ctx.architecture.validator_network
        ctx.architecture.fail_validator(step.validator)
        return {
            "validator": step.validator,
            "address": network.validators[step.validator].address,
        }

    def _run_recover_validator(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        network = ctx.architecture.validator_network
        ctx.architecture.recover_validator(step.validator)
        return {
            "validator": step.validator,
            "address": network.validators[step.validator].address,
            "resyncedHeight": network.validators[step.validator].chain.height,
            "consistent": network.consistent(),
        }

    def _run_equivocate(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        """Arm a Byzantine double-seal for the validator's next proposing slot.

        The equivocation itself fires when the rotation next hands the
        validator a slot (i.e. during a later step's auto-mined block); the
        resulting proof and convergence facts are collected at finalize.
        """
        network = ctx.architecture.validator_network
        ctx.architecture.equivocate_validator(step.validator)
        return {
            "validator": step.validator,
            "address": network.validators[step.validator].address,
        }

    def _run_crash_validator(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        network = ctx.architecture.validator_network
        address = network.validators[step.validator].address
        ctx.architecture.crash_validator(step.validator)
        return {"validator": step.validator, "address": address}

    def _run_restart_validator(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        network = ctx.architecture.validator_network
        report = ctx.architecture.restart_validator(step.validator)
        replica = network.validators[step.validator]
        # The restarted replica must hold a fully re-verifiable chain: every
        # header, seal, Merkle root, and state transition re-checked.
        report["replayVerified"] = replica.chain.verify_chain(replay=True)
        report["validator"] = step.validator
        report["address"] = replica.address
        report["height"] = replica.chain.height
        report["consistent"] = network.consistent()
        ctx.result.facts.setdefault("recoveries", []).append(dict(report))
        return report

    def _run_join_validator(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        """Stand up a new replica and settle its bonded ``join`` on-chain."""
        network = ctx.architecture.validator_network
        details = ctx.architecture.join_validator(step.validator)
        # Settle the join transaction so the membership change is on-chain
        # before the timeline continues (the rotation itself only changes at
        # the next epoch boundary).
        network.produce_until_block()
        details["registered"] = bool(
            ctx.architecture.node.call(
                ctx.architecture.validator_registry_address,
                "validator_info",
                {"address": details["address"]},
            )
        )
        details["validators"] = len(network.validators)
        return dict(details)

    def _run_leave_validator(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        """Settle the validator's ``leave`` on-chain (exit at the next boundary)."""
        network = ctx.architecture.validator_network
        address = network.validators[step.validator].address
        ctx.architecture.leave_validator(step.validator)
        network.produce_until_block()
        info = ctx.architecture.node.call(
            ctx.architecture.validator_registry_address,
            "validator_info",
            {"address": address},
        )
        return {
            "validator": step.validator,
            "address": address,
            "status": (info or {}).get("status"),
            "exitBlock": (info or {}).get("exitBlock"),
        }

    def _run_check_holds(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        resource_id = ctx.result.resource_ids[step.resource]
        actual = ctx.consumers[step.participant].holds_copy(resource_id)
        predicted = ctx.model.holds(step.participant, step.resource)
        if step.fact:
            ctx.result.facts[step.fact] = (not actual) if step.negate else actual
        if actual != predicted:
            ctx.result.mispredictions.append(
                {
                    "stepIndex": index,
                    "kind": "check_holds",
                    "participant": step.participant,
                    "resource": step.resource,
                    "predicted": predicted,
                    "observed": actual,
                }
            )
        return {"holds": actual, "predicted": predicted, "fact": step.fact}

    def _run_check_can_use(self, step: Step, index: int, ctx: "_RunContext") -> dict:
        participant = self.spec.participant(step.participant)
        resource_id = ctx.result.resource_ids[step.resource]
        effective_purpose = step.purpose if step.purpose is not None else participant.purpose
        actual = ctx.consumers[step.participant].trusted_app.can_use(
            resource_id, purpose=step.purpose
        )
        predicted, _ = ctx.model.predict_use(step.participant, step.resource, effective_purpose)
        if step.fact:
            ctx.result.facts[step.fact] = (not actual) if step.negate else actual
        if actual != predicted:
            ctx.result.mispredictions.append(
                {
                    "stepIndex": index,
                    "kind": "check_can_use",
                    "participant": step.participant,
                    "resource": step.resource,
                    "predicted": predicted,
                    "observed": actual,
                }
            )
        return {"canUse": actual, "predicted": predicted, "fact": step.fact}


@dataclass
class _RunContext:
    """Mutable state shared by the step handlers of one run."""

    architecture: UsageControlArchitecture
    coordinator: MonitoringCoordinator
    model: _ShadowModel
    result: ScenarioResult
    owners: Dict[str, DataOwner]
    consumers: Dict[str, DataConsumer]
    device_of: Dict[str, str]


# -- the Solid-only counterpart -------------------------------------------------------


@dataclass
class BaselineScenarioResult:
    """What the same spec produces on the access-control-only baseline."""

    deployment: BaselineSolidDeployment
    spec: ScenarioSpec
    resource_ids: Dict[str, str] = field(default_factory=dict)
    # One entry per monitor step: consumers whose copy predates the current
    # policy — the only signal the baseline can produce.
    stale_copy_snapshots: List[Dict[str, Any]] = field(default_factory=list)
    violations_detected: int = 0
    facts: Dict[str, object] = field(default_factory=dict)


class BaselineScenarioRunner:
    """Interpret a spec against Solid with plain access control.

    The baseline has no blockchain, no TEEs, and no oracles: policy
    revisions never reach existing copies, retention is not enforced, and
    monitoring rounds have nothing to collect — ``violations_detected``
    stays zero no matter how adversarial the spec is.  Running the same
    spec through both runners makes the paper's core comparison testable.
    """

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec.validate()

    def run(self) -> BaselineScenarioResult:
        spec = self.spec
        deployment = BaselineSolidDeployment()
        result = BaselineScenarioResult(deployment=deployment, spec=spec)
        managers = {}
        for participant in spec.participants:
            if participant.role == "owner":
                managers[participant.name] = deployment.register_owner(participant.name)
            else:
                deployment.register_consumer(participant.name)
        for resource in spec.resources:
            manager = managers[resource.owner]
            policy = resource.build_policy(
                manager.base_url + resource.path,
                manager.owner.iri,
                issued_at=deployment.clock.now(),
            )
            result.resource_ids[resource.key] = deployment.publish_resource(
                resource.owner, resource.path, resource.body(), policy
            )

        for step in spec.timeline:
            if step.kind == "advance":
                deployment.clock.advance(step.seconds or 0.0)
            elif step.kind == "access":
                resource = spec.resource(step.resource)
                deployment.grant_read(resource.owner, step.participant, resource.path)
                deployment.access_resource(
                    step.participant, result.resource_ids[step.resource]
                )
            elif step.kind == "use":
                # Nothing checks purpose or retention outside a TEE.
                consumer = deployment.consumers[step.participant]
                if consumer.holds_copy(result.resource_ids[step.resource]):
                    consumer.use_resource(result.resource_ids[step.resource])
            elif step.kind == "revise_policy":
                resource = spec.resource(step.resource)
                policy = resource.revised_policy(
                    step,
                    result.resource_ids[step.resource],
                    managers[resource.owner].owner.iri,
                    issued_at=deployment.clock.now(),
                )
                deployment.update_policy(resource.owner, resource.path, policy)
            elif step.kind == "monitor":
                resource = spec.resource(step.resource)
                result.stale_copy_snapshots.append(
                    {
                        "resource": step.resource,
                        "staleConsumers": deployment.stale_copies(
                            resource.owner, resource.path
                        ),
                        # No evidence trail exists: nothing can be detected.
                        "violationsDetected": 0,
                    }
                )
            elif step.kind == "check_holds" and step.fact:
                consumer = deployment.consumers[step.participant]
                actual = consumer.holds_copy(result.resource_ids[step.resource])
                result.facts[step.fact] = (not actual) if step.negate else actual
            # index / enforce / churn / check_can_use have no baseline
            # counterpart: there is no DE App to index, no TEE to enforce or
            # take offline, and local use is never policy-checked.  The
            # violation-response cascade (attempt_access /
            # repurchase_certificate / regrant) is likewise meaningless
            # here: nothing is ever detected, so nothing is ever revoked.

        result.facts["violations_detected"] = result.violations_detected
        surviving = sum(
            1
            for consumer in deployment.consumers.values()
            for copy in consumer.local_store.values()
            if not copy.deleted
        )
        result.facts["surviving_copies"] = surviving
        return result
