"""The Alice & Bob motivating scenario (Section II), end to end.

Alice owns internet-browsing data with a one-month retention policy; Bob owns
medical data restricted to medical purposes.  Both trade on the market: Alice
(a healthcare researcher) retrieves Bob's medical dataset, Bob (a web data
analyst) retrieves Alice's browsing dataset.  After two days Alice shortens
her retention to one week and Bob narrows his allowed purpose to academic
pursuits; the paper requires that:

* Alice's browsing data is erased from Bob's device once the *new* expiry
  lapses, enforced automatically by Bob's TEE;
* Bob's purpose change does not cut off Alice, because her application is in
  the medical/academic research domain for a university hospital.

:func:`run_alice_bob_scenario` executes the whole story against a freshly
wired :class:`~repro.core.architecture.UsageControlArchitecture` and returns
a :class:`ScenarioResult` with the assertions-ready facts plus the traces of
every process run along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import DAY, WEEK, MONTH
from repro.policy.templates import purpose_and_retention_policy, purpose_policy, retention_policy
from repro.core.architecture import ArchitectureConfig, UsageControlArchitecture
from repro.core.monitoring import MonitoringCoordinator, MonitoringReport
from repro.core.processes import (
    ProcessTrace,
    market_onboarding,
    pod_initiation,
    policy_modification,
    policy_monitoring,
    resource_access,
    resource_indexing,
    resource_initiation,
)

ALICE_BROWSING_PATH = "/data/browsing-history.csv"
BOB_MEDICAL_PATH = "/data/medical-records.ttl"


@dataclass
class ScenarioResult:
    """Everything the scenario produced, ready for assertions and reporting."""

    architecture: UsageControlArchitecture
    traces: List[ProcessTrace] = field(default_factory=list)
    monitoring_reports: List[MonitoringReport] = field(default_factory=list)
    alice_can_still_use_bobs_data: Optional[bool] = None
    bob_copy_deleted_after_update: Optional[bool] = None
    bob_use_blocked_after_deletion: Optional[bool] = None
    alice_resource_id: Optional[str] = None
    bob_resource_id: Optional[str] = None
    facts: Dict[str, object] = field(default_factory=dict)

    def trace_for(self, process: str) -> List[ProcessTrace]:
        return [trace for trace in self.traces if trace.process == process]


def run_alice_bob_scenario(config: Optional[ArchitectureConfig] = None,
                           monitor: bool = True) -> ScenarioResult:
    """Run the full motivating use case and return its observable outcomes."""
    architecture = UsageControlArchitecture(config=config)
    result = ScenarioResult(architecture=architecture)
    coordinator = MonitoringCoordinator(architecture)

    # -- registration: owners are also consumers in the scenario ------------------
    alice_owner = architecture.register_owner("alice")
    bob_owner = architecture.register_owner("bob")
    alice_consumer = architecture.register_consumer(
        "alice-app", purpose="medical-research", device_id="alice-device"
    )
    bob_consumer = architecture.register_consumer(
        "bob-app", purpose="web-analytics", device_id="bob-device"
    )

    # -- process 1: pod initiation --------------------------------------------------
    result.traces.append(pod_initiation(architecture, alice_owner))
    result.traces.append(pod_initiation(architecture, bob_owner))

    # -- process 2: resource initiation ----------------------------------------------
    now = architecture.clock.now()
    alice_policy = retention_policy(
        target=alice_owner.pod_manager.base_url + ALICE_BROWSING_PATH,
        assigner=alice_owner.webid.iri,
        retention_seconds=MONTH,
        issued_at=now,
    )
    bob_policy = purpose_policy(
        target=bob_owner.pod_manager.base_url + BOB_MEDICAL_PATH,
        assigner=bob_owner.webid.iri,
        allowed_purposes=("medical-research", "medical-treatment"),
        issued_at=now,
    )
    result.traces.append(
        resource_initiation(
            architecture,
            alice_owner,
            ALICE_BROWSING_PATH,
            b"timestamp,url\n2026-01-01T10:00:00Z,https://example.org\n" * 64,
            alice_policy,
            metadata={"kind": "browsing-history"},
        )
    )
    result.traces.append(
        resource_initiation(
            architecture,
            bob_owner,
            BOB_MEDICAL_PATH,
            b"@prefix ex: <https://example.org/> . ex:bob ex:bloodPressure 120 .\n" * 32,
            bob_policy,
            metadata={"kind": "medical-records"},
        )
    )
    alice_resource_id = alice_owner.pod_manager.require_pod().url_for(ALICE_BROWSING_PATH)
    bob_resource_id = bob_owner.pod_manager.require_pod().url_for(BOB_MEDICAL_PATH)
    result.alice_resource_id = alice_resource_id
    result.bob_resource_id = bob_resource_id

    # -- market onboarding ------------------------------------------------------------
    result.traces.append(market_onboarding(architecture, alice_consumer))
    result.traces.append(market_onboarding(architecture, bob_consumer))

    # -- process 3: resource indexing ---------------------------------------------------
    result.traces.append(resource_indexing(architecture, alice_consumer, bob_resource_id))
    result.traces.append(resource_indexing(architecture, bob_consumer, alice_resource_id))

    # -- process 4: resource access -------------------------------------------------------
    result.traces.append(
        resource_access(architecture, alice_consumer, bob_owner, bob_resource_id)
    )
    result.traces.append(
        resource_access(architecture, bob_consumer, alice_owner, alice_resource_id)
    )
    result.facts["bob_holds_alice_copy_initially"] = bob_consumer.holds_copy(alice_resource_id)
    result.facts["alice_holds_bob_copy_initially"] = alice_consumer.holds_copy(bob_resource_id)

    # Both consumers use the retrieved data on their trusted devices.
    alice_consumer.use_resource(bob_resource_id, purpose="medical-research")
    bob_consumer.use_resource(alice_resource_id, purpose="web-analytics")

    # -- two days pass; the owners revise their policies (process 5) ---------------------------
    architecture.advance_time(2 * DAY)
    revised_alice_policy = retention_policy(
        target=alice_resource_id,
        assigner=alice_owner.webid.iri,
        retention_seconds=WEEK,
        issued_at=architecture.clock.now(),
    ).revise()  # bump to version 2 so the update is recognisable downstream
    result.traces.append(
        policy_modification(architecture, alice_owner, ALICE_BROWSING_PATH, revised_alice_policy)
    )
    revised_bob_policy = purpose_and_retention_policy(
        target=bob_resource_id,
        assigner=bob_owner.webid.iri,
        allowed_purposes=("academic-research", "medical-research"),
        retention_seconds=6 * MONTH,
        issued_at=architecture.clock.now(),
    ).revise()
    result.traces.append(
        policy_modification(architecture, bob_owner, BOB_MEDICAL_PATH, revised_bob_policy)
    )

    # Bob's purpose change keeps Alice's medical-research application granted.
    result.alice_can_still_use_bobs_data = alice_consumer.trusted_app.can_use(
        bob_resource_id, purpose="medical-research"
    )

    # -- the new expiry lapses: one week after storage (five more days) -------------------------
    architecture.advance_time(6 * DAY)
    bob_consumer.tee.enforce_policies()
    result.bob_copy_deleted_after_update = not bob_consumer.holds_copy(alice_resource_id)
    result.bob_use_blocked_after_deletion = not bob_consumer.trusted_app.can_use(alice_resource_id)

    # -- process 6: policy monitoring -------------------------------------------------------------
    if monitor:
        monitoring_trace = policy_monitoring(
            architecture, alice_owner, ALICE_BROWSING_PATH, coordinator
        )
        result.traces.append(monitoring_trace)
        result.monitoring_reports = list(coordinator.reports)
        bob_monitoring_trace = policy_monitoring(
            architecture, bob_owner, BOB_MEDICAL_PATH, coordinator
        )
        result.traces.append(bob_monitoring_trace)
        result.monitoring_reports = list(coordinator.reports)

    result.facts["total_gas_used"] = architecture.total_gas_used()
    result.facts["chain_height"] = architecture.node.chain.height
    result.facts["chain_valid"] = architecture.node.chain.verify_chain()
    return result
