"""The Alice & Bob motivating scenario (Section II), end to end.

Alice owns internet-browsing data with a one-month retention policy; Bob owns
medical data restricted to medical purposes.  Both trade on the market: Alice
(a healthcare researcher) retrieves Bob's medical dataset, Bob (a web data
analyst) retrieves Alice's browsing dataset.  After two days Alice shortens
her retention to one week and Bob narrows his allowed purpose to academic
pursuits; the paper requires that:

* Alice's browsing data is erased from Bob's device once the *new* expiry
  lapses, enforced automatically by Bob's TEE;
* Bob's purpose change does not cut off Alice, because her application is in
  the medical/academic research domain for a university hospital.

The story is expressed declaratively as
:func:`repro.core.scenario_library.alice_bob_spec` and executed by the
:class:`~repro.core.runner.ScenarioRunner`; :func:`run_alice_bob_scenario`
is the convenience wrapper that runs it and surfaces the paper's assertion
points as attributes (plus the per-process traces and per-phase gas/block
accounting every scenario run carries).
"""

from __future__ import annotations

from typing import Optional

from repro.core.architecture import ArchitectureConfig
from repro.core.runner import ScenarioResult, ScenarioRunner
from repro.core.scenario_library import alice_bob_spec

ALICE_BROWSING_PATH = "/data/browsing-history.csv"
BOB_MEDICAL_PATH = "/data/medical-records.ttl"

__all__ = ["ScenarioResult", "run_alice_bob_scenario", "ALICE_BROWSING_PATH", "BOB_MEDICAL_PATH"]


def run_alice_bob_scenario(config: Optional[ArchitectureConfig] = None,
                           monitor: bool = True) -> ScenarioResult:
    """Run the full motivating use case and return its observable outcomes."""
    spec = alice_bob_spec(monitor_rounds=monitor)
    result = ScenarioRunner(spec, config=config).run()
    result.alice_resource_id = result.resource_ids[f"alice:{ALICE_BROWSING_PATH}"]
    result.bob_resource_id = result.resource_ids[f"bob:{BOB_MEDICAL_PATH}"]
    result.alice_can_still_use_bobs_data = bool(result.facts["alice_can_still_use_bobs_data"])
    result.bob_copy_deleted_after_update = bool(result.facts["bob_copy_deleted_after_update"])
    result.bob_use_blocked_after_deletion = bool(result.facts["bob_use_blocked_after_deletion"])
    return result
