"""Violation handling.

The paper's architecture "enables users to revoke access if data consumers do
not adhere to the usage policies" (Section I).  Detection happens during
policy monitoring (the DE App records a ``ViolationDetected`` event); this
module implements the *response*: the owner-side component that listens for
violations concerning their resources and executes a revocation playbook —

1. revoke the offending device's access grant in the DE App (so future policy
   updates and monitoring rounds no longer treat it as a legitimate holder);
2. revoke the consumer's WAC authorization on the pod (no further retrievals);
3. ask the market operator to revoke the consumer's fee certificates for the
   resource (a fresh certificate purchase would be required after re-granting).

Every response is recorded in a :class:`ViolationResponse` so examples and
tests can assert exactly what was done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.blockchain.transaction import LogEntry
from repro.core.participants import DataOwner, consumer_for_device


@dataclass
class ViolationResponse:
    """What the responder did about one detected violation."""

    resource_id: str
    device_id: str
    details: str
    grant_revoked: bool = False
    acl_revoked: bool = False
    certificates_revoked: List[str] = field(default_factory=list)
    consumer_webid: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "resourceId": self.resource_id,
            "deviceId": self.device_id,
            "details": self.details,
            "grantRevoked": self.grant_revoked,
            "aclRevoked": self.acl_revoked,
            "certificatesRevoked": list(self.certificates_revoked),
            "consumerWebid": self.consumer_webid,
        }


class ViolationResponder:
    """Owner-side component reacting to on-chain ``ViolationDetected`` events."""

    def __init__(self, architecture, owner: DataOwner, auto_subscribe: bool = True,
                 revoke_acl: bool = True, revoke_certificates: bool = True):
        self.architecture = architecture
        self.owner = owner
        self.revoke_acl = revoke_acl
        self.revoke_certificates = revoke_certificates
        self.responses: List[ViolationResponse] = []
        if auto_subscribe:
            self.subscribe()

    def subscribe(self) -> None:
        """Start listening for violations through the owner's push-out oracle."""
        self.owner.push_out.subscribe("ViolationDetected", self.handle_violation_event)

    # -- event handling -------------------------------------------------------------

    def handle_violation_event(self, log: LogEntry) -> Optional[ViolationResponse]:
        """React to one ``ViolationDetected`` event (ignoring other owners' resources)."""
        resource_id = log.data.get("resource_id", "")
        if not self._owns(resource_id):
            return None
        return self.respond(
            resource_id=resource_id,
            device_id=log.data.get("device_id", ""),
            details=log.data.get("details", ""),
        )

    def _owns(self, resource_id: str) -> bool:
        pod = self.owner.pod_manager.pod
        return pod is not None and resource_id.startswith(pod.base_url)

    # -- the revocation playbook --------------------------------------------------------

    def respond(self, resource_id: str, device_id: str, details: str = "") -> ViolationResponse:
        """Execute the revocation playbook for one violating device."""
        response = ViolationResponse(resource_id=resource_id, device_id=device_id, details=details)

        # 1. Revoke the access grant recorded in the DE App.
        receipt = self.owner.module.call_contract(
            self.architecture.dist_exchange_address,
            "revoke_grant",
            {"resource_id": resource_id, "device_id": device_id},
        )
        response.grant_revoked = bool(receipt.return_value)

        # Identify the consumer behind the offending device (for ACL and
        # certificate revocation); unknown devices only get the grant revoked.
        consumer = self._consumer_for_device(device_id)
        if consumer is not None:
            response.consumer_webid = consumer.webid.iri
            if self.revoke_acl:
                revoked = self.owner.pod_manager.revoke_access(consumer.webid.iri)
                response.acl_revoked = revoked > 0
            if self.revoke_certificates:
                response.certificates_revoked = self._revoke_certificates(consumer, resource_id)

        self.responses.append(response)
        return response

    def _consumer_for_device(self, device_id: str):
        return consumer_for_device(self.architecture, device_id)

    def _revoke_certificates(self, consumer, resource_id: str) -> List[str]:
        """Ask the market operator to revoke the consumer's certificates for the resource."""
        revoked = []
        certificate = consumer.certificates.get(resource_id)
        if certificate:
            self.architecture.operator_module.call_contract(
                self.architecture.market_address,
                "revoke_certificate",
                {"certificate_id": certificate["certificate_id"]},
            )
            revoked.append(certificate["certificate_id"])
        return revoked

    # -- reporting -----------------------------------------------------------------------

    def responses_for(self, resource_id: str) -> List[ViolationResponse]:
        return [response for response in self.responses if response.resource_id == resource_id]

    def summary(self) -> Dict[str, int]:
        """Aggregate counts used by examples and the monitoring report."""
        return {
            "violationsHandled": len(self.responses),
            "grantsRevoked": sum(1 for r in self.responses if r.grant_revoked),
            "aclRevocations": sum(1 for r in self.responses if r.acl_revoked),
            "certificatesRevoked": sum(len(r.certificates_revoked) for r in self.responses),
        }
