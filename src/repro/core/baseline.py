"""Status-quo baseline: Solid with access control only.

The paper's motivation (Section I) is that "Solid currently only supports
basic access control, and thus it is not possible to ensure that data
consumers adhere to usage restrictions specified by data owners."  The
baseline deployment reproduces that status quo: pods, pod managers, and WAC
access control, but no blockchain, no TEEs, and no oracles.  Consumers copy
retrieved data into ordinary (untrusted) local storage, so:

* policy updates performed by the owner never reach existing copies;
* retention obligations are not enforced;
* there is no evidence trail the owner could audit.

The comparison benchmark (E11) uses this class both to demonstrate the
functional gap and to quantify the overhead the usage-control architecture
adds on the resource-access path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import Clock, SimulatedClock
from repro.common.errors import ValidationError
from repro.policy.model import Policy
from repro.sim.network import NetworkModel
from repro.solid.client import SolidClient
from repro.solid.pod import OCTET_STREAM
from repro.solid.pod_manager import PodManager
from repro.solid.wac import AccessMode
from repro.solid.webid import WebID


@dataclass
class UntrustedCopy:
    """A plain local copy held outside any trusted environment."""

    resource_id: str
    content: bytes
    policy_version_at_download: Optional[int]
    downloaded_at: float
    deleted: bool = False


@dataclass
class BaselineConsumer:
    """A consumer in the baseline: a WebID and an ordinary local data store."""

    webid: WebID
    local_store: Dict[str, UntrustedCopy] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.webid.name

    def holds_copy(self, resource_id: str) -> bool:
        copy = self.local_store.get(resource_id)
        return copy is not None and not copy.deleted

    def use_resource(self, resource_id: str) -> bytes:
        """Use a local copy — nothing checks the owner's current policy."""
        copy = self.local_store[resource_id]
        if copy.deleted:
            raise ValidationError(f"{resource_id} was deleted locally")
        return copy.content


class BaselineSolidDeployment:
    """Pods + pod managers + WAC, without the usage-control architecture."""

    def __init__(self, clock: Optional[Clock] = None, network: Optional[NetworkModel] = None):
        self.clock = clock if clock is not None else SimulatedClock(start=1_700_000_000.0)
        self.network = network if network is not None else NetworkModel(seed=11)
        self.solid_client = SolidClient(network=self.network)
        self.owners: Dict[str, PodManager] = {}
        self.consumers: Dict[str, BaselineConsumer] = {}

    # -- participants ---------------------------------------------------------------

    def register_owner(self, name: str) -> PodManager:
        if name in self.owners:
            raise ValidationError(f"an owner named {name} is already registered")
        webid = WebID(name)
        manager = PodManager(webid, clock=self.clock)
        manager.create_pod()
        self.solid_client.register_pod_manager(manager)
        self.owners[name] = manager
        return manager

    def register_consumer(self, name: str) -> BaselineConsumer:
        if name in self.consumers:
            raise ValidationError(f"a consumer named {name} is already registered")
        consumer = BaselineConsumer(WebID(name))
        self.consumers[name] = consumer
        return consumer

    # -- owner-side operations ------------------------------------------------------------

    def publish_resource(self, owner_name: str, path: str, content: bytes, policy: Policy,
                         content_type: str = OCTET_STREAM) -> str:
        """Upload a resource and attach a policy (advisory only in the baseline)."""
        manager = self.owners[owner_name]
        manager.upload_resource(path, content, content_type)
        return manager.publish_resource(path, policy)

    def grant_read(self, owner_name: str, consumer_name: str, path: str) -> None:
        manager = self.owners[owner_name]
        consumer = self.consumers[consumer_name]
        manager.grant_access(consumer.webid.iri, [AccessMode.READ], resource_path=path)

    def update_policy(self, owner_name: str, path: str, new_policy: Policy) -> Policy:
        """The owner revises a policy — but no mechanism reaches existing copies."""
        return self.owners[owner_name].update_policy(path, new_policy)

    # -- consumer-side operations -----------------------------------------------------------

    def access_resource(self, consumer_name: str, resource_url: str) -> UntrustedCopy:
        """Fetch a resource and keep a plain local copy."""
        consumer = self.consumers[consumer_name]
        response = self.solid_client.get(resource_url, requester=consumer.webid.iri)
        if not response.ok or response.receipt is None:
            raise ValidationError(f"baseline access failed with status {response.status}: {response.error}")
        receipt = response.receipt
        copy = UntrustedCopy(
            resource_id=resource_url,
            content=receipt.content,
            policy_version_at_download=receipt.policy.version if receipt.policy else None,
            downloaded_at=self.clock.now(),
        )
        consumer.local_store[resource_url] = copy
        return copy

    # -- the functional gap, made explicit -----------------------------------------------------

    def stale_copies(self, owner_name: str, path: str) -> List[str]:
        """Consumers whose local copy predates the owner's current policy version.

        In the baseline these copies silently keep circulating; the usage
        control architecture is precisely the machinery that closes this gap.
        """
        manager = self.owners[owner_name]
        current = manager.get_policy(path)
        resource_url = manager.require_pod().url_for(path)
        stale = []
        for consumer in self.consumers.values():
            copy = consumer.local_store.get(resource_url)
            if copy is None or copy.deleted:
                continue
            if copy.policy_version_at_download is None or copy.policy_version_at_download < current.version:
                stale.append(consumer.name)
        return stale
