"""The paper's primary contribution: the decentralized usage control architecture.

This package wires the substrates together exactly as Fig. 1 prescribes —
pods and pod managers on the owners' side, TEEs and trusted applications on
the consumers' devices, the DE App and the data market on the blockchain, and
the four oracle patterns in between — and implements the six processes of
Fig. 2 plus the monitoring coordinator, the status-quo baseline, and the
Alice & Bob end-to-end scenario.
"""

from repro.core.architecture import UsageControlArchitecture, ArchitectureConfig
from repro.core.participants import DataOwner, DataConsumer
from repro.core.processes import ProcessTrace
from repro.core.monitoring import MonitoringCoordinator, MonitoringReport, verify_evidence
from repro.core.baseline import BaselineSolidDeployment
from repro.core.spec import (
    Behavior,
    ParticipantSpec,
    ResourceSpec,
    ScenarioSpec,
    Step,
    spec_from_workload,
)
from repro.core.runner import (
    BaselineScenarioRunner,
    ScenarioRunner,
    StepStats,
    ViolationLedger,
    ViolationRecord,
)
from repro.core.scenario import run_alice_bob_scenario, ScenarioResult
from repro.core.scenario_library import SCENARIO_LIBRARY, alice_bob_spec, get_scenario
from repro.core.violations import ViolationResponder, ViolationResponse

__all__ = [
    "ViolationResponder",
    "ViolationResponse",
    "UsageControlArchitecture",
    "ArchitectureConfig",
    "DataOwner",
    "DataConsumer",
    "ProcessTrace",
    "MonitoringCoordinator",
    "MonitoringReport",
    "verify_evidence",
    "BaselineSolidDeployment",
    "Behavior",
    "ParticipantSpec",
    "ResourceSpec",
    "ScenarioSpec",
    "Step",
    "spec_from_workload",
    "BaselineScenarioRunner",
    "ScenarioRunner",
    "StepStats",
    "ViolationLedger",
    "ViolationRecord",
    "run_alice_bob_scenario",
    "ScenarioResult",
    "SCENARIO_LIBRARY",
    "alice_bob_spec",
    "get_scenario",
]
