"""Policy monitoring (Fig. 2.6).

"The policy monitoring process regularly checks usage policy compliance once
data are accessed.  The Pod Manager uses the Push-in Oracle to start the
monitoring (for instance, via a scheduled job).  The Push-in Oracle forwards
the request to the DE App, which in turn communicates with all devices that
have a copy of the resource in their Trusted Execution Environment via the
Pull-in Oracle.  The Pull-in Oracle, then, requests evidence that the usage
policies are being adhered to.  The Push-out Oracle is subsequently required
by the DE App to send the pieces of evidence gathered from the various
trusted applications to the Pod Manager that initiated the policy monitoring
process."

The :class:`MonitoringCoordinator` drives that loop for a deployment: it
opens the round through the owner's pod manager, relays the DE App's evidence
requests to the copy-holding devices through the oracle request hub, records
the answers on-chain, and assembles a :class:`MonitoringReport`.

By default the coordinator runs **batched**: the evidence requests for every
holder are enqueued with one ``create_requests`` transaction, the devices'
fulfillments are confirmed in one block through
``BlockchainInteractionModule.batch()``, and the collected evidence is
recorded with one ``record_usage_evidence_batch`` transaction — so a round
seals a small constant number of blocks instead of O(holders).  The
transaction-per-device flow is kept behind ``batched=False`` (it produces
byte-identical reports and on-chain records, which the equivalence tests
pin).

Evidence claiming compliance is **verified** before it is recorded: the
enclave signature must check out over the body, the measurement must be
trusted by the deployment's attestation verifier, and the evidence must
have been generated after the round opened (:func:`verify_evidence`).  A
faulty or Byzantine oracle component that replays stale evidence or forges
a compliant verdict is therefore recorded as a violation, with the
rejection reason on-chain.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.errors import NotFoundError
from repro.common.serialization import canonical_json, stable_hash
from repro.blockchain.crypto import verify as verify_signature
from repro.core.participants import DataConsumer, DataOwner, consumer_for_device

NO_EVIDENCE = {"compliant": False, "details": "no evidence provided"}

# Evidence fields added on top of the signed body by the enclave.
_EVIDENCE_ENVELOPE = ("evidenceId", "signature", "publicKey")


def verify_evidence(evidence: Dict[str, Any], not_before: Optional[float] = None,
                    trusted_measurements: Optional[Set[str]] = None) -> Tuple[bool, str]:
    """Check that a piece of usage evidence is genuine and fresh.

    The enclave signs the evidence body with its attestation key
    (:meth:`~repro.tee.enclave.TrustedExecutionEnvironment.usage_evidence`);
    a faulty or Byzantine oracle component relaying the evidence can replay
    an old answer or rewrite the body, but it cannot re-sign.  Returns
    ``(ok, reason)`` — *reason* is empty when the evidence checks out.
    """
    signature = evidence.get("signature")
    public_key = evidence.get("publicKey")
    if not signature or not public_key:
        return False, "evidence carries no enclave signature"
    body = {key: value for key, value in evidence.items() if key not in _EVIDENCE_ENVELOPE}
    if evidence.get("evidenceId") != stable_hash(body):
        return False, "evidence digest does not match its body"
    try:
        if not verify_signature(tuple(public_key), canonical_json(body), tuple(signature)):
            return False, "invalid enclave signature"
    except (TypeError, ValueError):
        return False, "malformed enclave signature"
    if trusted_measurements is not None and body.get("measurement") not in trusted_measurements:
        return False, "evidence from an untrusted enclave measurement"
    if not_before is not None:
        generated_at = body.get("generatedAt")
        if not isinstance(generated_at, (int, float)) or generated_at < not_before:
            return False, "stale evidence (generated before the round opened)"
    return True, ""


@dataclass
class MonitoringReport:
    """Outcome of one monitoring round."""

    round_id: int
    resource_id: str
    holders: List[str]
    evidence: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    compliant_devices: List[str] = field(default_factory=list)
    non_compliant_devices: List[str] = field(default_factory=list)
    violations: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def all_compliant(self) -> bool:
        return not self.non_compliant_devices

    def to_dict(self) -> dict:
        return {
            "roundId": self.round_id,
            "resourceId": self.resource_id,
            "holders": list(self.holders),
            "compliantDevices": list(self.compliant_devices),
            "nonCompliantDevices": list(self.non_compliant_devices),
            "violations": list(self.violations),
        }


class MonitoringCoordinator:
    """Drives monitoring rounds across the DE App, oracles, and consumer TEEs."""

    DEFAULT_CHUNK_SIZE = 500

    def __init__(self, architecture, batched: bool = True,
                 chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
                 workers: int = 1):
        # Imported lazily by type to avoid a circular import with architecture.
        self.architecture = architecture
        self.batched = batched
        # Rounds over more than chunk_size holders split their batch
        # transactions (create_requests / record_usage_evidence_batch) into
        # bounded chunks confirmed together in one block, so a 5k-holder
        # round never hashes one 5k-item canonical-JSON payload.  Rounds at
        # or under the chunk size keep the exact single-transaction flow.
        self.chunk_size = chunk_size
        # With workers > 1 a batched round partitions its holder set into
        # contiguous shards and serves each in a forked worker process: the
        # per-device evidence generation and enclave-signature verification
        # (the round's CPU wall at 10k consumers) run in parallel against
        # copy-on-write state, and the parent merges the shard results in
        # holder order before recording them on its own chain.  workers=1 is
        # byte-identical to the in-process flow; sharding falls back to it
        # whenever fork is unavailable or any shard fails.
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.reports: List[MonitoringReport] = []

    # -- single round -------------------------------------------------------------

    def run_round(self, owner: DataOwner, resource_path: str) -> MonitoringReport:
        """Execute one complete monitoring round for *resource_path*."""
        arch = self.architecture
        # Evidence generated before the round opened is a replay by
        # definition; remember the opening time for the freshness check.
        opened_at = arch.clock.now()
        resource_id = owner.request_monitoring(resource_path)
        round_id = self._round_id_for(owner, resource_id)
        round_record = arch.dist_exchange_read("get_monitoring_round", {"round_id": round_id})
        holders: List[str] = list(round_record["holders"])
        report = MonitoringReport(round_id=round_id, resource_id=resource_id, holders=holders)

        if self.batched:
            self._collect_evidence_batched(report, opened_at)
        else:
            self._collect_evidence_sequential(report, opened_at)

        report.violations = arch.dist_exchange_read("get_violations", {"resource_id": resource_id})
        self.reports.append(report)
        return report

    # -- batched flow (constant blocks per round) ---------------------------------------

    def _collect_evidence_batched(self, report: MonitoringReport, opened_at: float) -> None:
        """One block per phase: request fan-out, fulfillments, recording.

        Each phase is a single transaction up to :attr:`chunk_size` holders
        and a handful of bounded, same-block transactions beyond it.
        """
        arch = self.architecture
        if not report.holders:
            return

        # The DE App requests evidence from every copy holder via the pull-in
        # oracle: one (chunked) transaction enqueues the whole round.
        receipts = arch.operator_module.call_contract_chunked(
            arch.oracle_hub_address,
            "create_requests",
            "requests",
            [
                {
                    "kind": "usage_evidence",
                    "payload": {
                        "resource_id": report.resource_id,
                        "device_id": device_id,
                        "round_id": report.round_id,
                    },
                    "target": device_id,
                }
                for device_id in report.holders
            ],
            chunk_size=self.chunk_size,
        )
        returned_ids = [request_id for receipt in receipts for request_id in receipt.return_value]
        request_ids: Dict[str, int] = dict(zip(report.holders, returned_ids))

        # Each device's off-chain pull-in component answers its own request;
        # the fulfillment transactions of every reachable device are sealed
        # in a single block.
        served: List[Tuple[str, int, Optional[DataConsumer]]] = [
            (device_id, request_id, self._consumer_for_device(device_id))
            for device_id, request_id in request_ids.items()
        ]
        outcomes = self._serve_sharded(served, opened_at)
        modules = {id(c.module): c.module for _, _, c in served if c is not None}
        if outcomes is None:
            with arch.operator_module.batch(*modules.values()):
                for _, request_id, consumer in served:
                    if consumer is not None:
                        consumer.pull_in.serve_request(request_id)
            evidence_by_device = {
                device_id: self._screen_evidence(self._fetch_response(request_id), opened_at)
                for device_id, request_id in request_ids.items()
            }
        else:
            # The workers computed the responses (the expensive enclave
            # work); the parent replays only the on-chain fulfillments, in
            # holder order, so the round seals the same fulfillment block —
            # transaction for transaction — as the in-process flow.
            with arch.operator_module.batch(*modules.values()):
                for device_id, request_id, consumer in served:
                    if consumer is not None and outcomes[device_id]["fulfilled"]:
                        consumer.pull_in.fulfill_served(
                            request_id, outcomes[device_id]["response"])
            evidence_by_device = {
                device_id: outcomes[device_id]["evidence"]
                for device_id in request_ids
            }

        # The collected evidence is recorded in the DE App with one (chunked)
        # batch transaction; it emits the same per-device EvidenceRecorded
        # events (delivered to the owner by the push-out oracle) as the
        # transaction-per-device flow.  Report bookkeeping runs here, in
        # holder order, so sharded and in-process rounds yield identical
        # reports.
        evidence_items = []
        for device_id in request_ids:
            evidence = evidence_by_device[device_id]
            self._record_verdict(report, device_id, evidence)
            evidence_items.append({"device_id": device_id, "evidence": evidence})
        arch.operator_module.call_contract_chunked(
            arch.dist_exchange_address,
            "record_usage_evidence_batch",
            "evidence_items",
            evidence_items,
            static_args={"round_id": report.round_id},
            chunk_size=self.chunk_size,
        )

    # -- sequential flow (one transaction per device) ----------------------------------------

    def _collect_evidence_sequential(self, report: MonitoringReport, opened_at: float) -> None:
        arch = self.architecture
        request_ids: Dict[str, int] = {}
        for device_id in report.holders:
            receipt = arch.operator_module.call_contract(
                arch.oracle_hub_address,
                "create_request",
                {
                    "kind": "usage_evidence",
                    "payload": {
                        "resource_id": report.resource_id,
                        "device_id": device_id,
                        "round_id": report.round_id,
                    },
                    "target": device_id,
                },
            )
            request_ids[device_id] = receipt.return_value

        for device_id, request_id in request_ids.items():
            consumer = self._consumer_for_device(device_id)
            if consumer is None:
                continue
            consumer.pull_in.serve_request(request_id)

        for device_id, request_id in request_ids.items():
            evidence = self._classify(report, device_id, self._fetch_response(request_id), opened_at)
            arch.operator_module.call_contract(
                arch.dist_exchange_address,
                "record_usage_evidence",
                {"round_id": report.round_id, "device_id": device_id, "evidence": evidence},
            )

    # -- scheduled monitoring ------------------------------------------------------------

    def schedule_periodic(self, owner: DataOwner, resource_path: str, interval: float):
        """Register a recurring monitoring job on the architecture's scheduler."""
        if self.architecture.scheduler is None:
            raise NotFoundError("the architecture has no scheduler (a real-time clock is in use)")
        return self.architecture.scheduler.schedule_every(
            interval,
            lambda: self.run_round(owner, resource_path),
            label=f"monitoring:{resource_path}",
        )

    # -- helpers -----------------------------------------------------------------------------

    def _fetch_response(self, request_id: int) -> Dict[str, Any]:
        """Return a request's response, or the no-evidence marker when unanswered."""
        record = self.architecture.node.call(
            self.architecture.oracle_hub_address, "get_request", {"request_id": request_id}
        )
        if not record["fulfilled"]:
            return dict(NO_EVIDENCE)
        return record["response"]

    def _screen_evidence(self, evidence: Dict[str, Any], opened_at: float) -> Dict[str, Any]:
        """Verify one device's evidence; returns what to record.

        Evidence claiming compliance must carry a valid, fresh enclave
        signature from a trusted measurement; otherwise it is rejected and
        recorded as non-compliant (so the DE App registers the violation),
        with the rejection reason in ``details``.  Pure with respect to the
        round (no report bookkeeping), so shard workers can run it.
        """
        if evidence.get("compliant", False):
            ok, reason = verify_evidence(
                evidence,
                not_before=opened_at,
                trusted_measurements=self._trusted_measurements(),
            )
            if not ok:
                evidence = dict(evidence)
                evidence["compliant"] = False
                evidence["details"] = f"evidence rejected: {reason}"
        return evidence

    @staticmethod
    def _record_verdict(report: MonitoringReport, device_id: str,
                        evidence: Dict[str, Any]) -> None:
        """Fold one screened evidence record into the round's report."""
        report.evidence[device_id] = evidence
        if evidence.get("compliant", False):
            report.compliant_devices.append(device_id)
        else:
            report.non_compliant_devices.append(device_id)

    def _classify(self, report: MonitoringReport, device_id: str,
                  evidence: Dict[str, Any], opened_at: float) -> Dict[str, Any]:
        """Verify, record, and return one device's evidence (sequential flow)."""
        evidence = self._screen_evidence(evidence, opened_at)
        self._record_verdict(report, device_id, evidence)
        return evidence

    # -- sharded serving (workers > 1) -------------------------------------------------------

    def _serve_sharded(self, served, opened_at: float):
        """Serve a round's holders across forked workers; None = run in-process.

        Each worker inherits the whole deployment copy-on-write, detaches
        every chain store (a child must never write to the parent's durable
        log), serves its contiguous shard of pull-in requests against its own
        forked state, screens the resulting evidence, and streams a
        ``{device_id: {fulfilled, response, evidence}}`` map back through a
        pipe.  The worker's own blocks exist only in its memory; the parent
        replays the fulfillment transactions (and records the screened
        evidence) on the real chain, which is the round's on-chain outcome.
        Any failure (fork unavailable, a worker dying, an unreadable pipe)
        falls back to the in-process path.
        """
        if self.workers <= 1 or len(served) < 2 or not hasattr(os, "fork"):
            return None
        count = min(self.workers, len(served))
        base, extra = divmod(len(served), count)
        shards, start = [], 0
        for index in range(count):
            size = base + (1 if index < extra else 0)
            shards.append(served[start:start + size])
            start += size
        children = []
        try:
            for shard in shards:
                read_fd, write_fd = os.pipe()
                pid = os.fork()
                if pid == 0:
                    status = 1
                    try:
                        os.close(read_fd)
                        self._detach_stores()
                        payload = pickle.dumps(self._run_shard(shard, opened_at))
                        with os.fdopen(write_fd, "wb") as sink:
                            sink.write(len(payload).to_bytes(8, "big"))
                            sink.write(payload)
                            sink.flush()
                        status = 0
                    except BaseException:
                        pass
                    finally:
                        os._exit(status)
                os.close(write_fd)
                children.append((pid, read_fd))
        except OSError:
            for pid, read_fd in children:
                os.close(read_fd)
                os.waitpid(pid, 0)
            return None
        # Drain every pipe before waiting on its child: a shard result
        # larger than the pipe buffer would otherwise deadlock the pair.
        merged: Dict[str, Dict[str, Any]] = {}
        failed = False
        for pid, read_fd in children:
            with os.fdopen(read_fd, "rb") as source:
                data = source.read()
            _, status = os.waitpid(pid, 0)
            if status != 0 or len(data) < 8:
                failed = True
                continue
            size = int.from_bytes(data[:8], "big")
            if len(data) != 8 + size:
                failed = True
                continue
            try:
                merged.update(pickle.loads(data[8:]))
            except Exception:
                failed = True
        if failed or len(merged) != len(served):
            return None
        return merged

    def _run_shard(self, shard, opened_at: float) -> Dict[str, Dict[str, Any]]:
        """Worker body: serve one shard's requests and screen the evidence.

        Returns, per device, whether the request was fulfilled, the raw
        response (for the parent to replay on the real chain), and the
        screened evidence.  The screening verdict transfers: the parent
        submits byte-identical responses, so re-screening there would reach
        the same conclusion.
        """
        arch = self.architecture
        modules = {id(c.module): c.module for _, _, c in shard if c is not None}
        with arch.operator_module.batch(*modules.values()):
            for _, request_id, consumer in shard:
                if consumer is not None:
                    consumer.pull_in.serve_request(request_id)
        outcomes: Dict[str, Dict[str, Any]] = {}
        for device_id, request_id, _ in shard:
            record = arch.node.call(
                arch.oracle_hub_address, "get_request", {"request_id": request_id}
            )
            fulfilled = bool(record["fulfilled"])
            response = record["response"] if fulfilled else dict(NO_EVIDENCE)
            outcomes[device_id] = {
                "fulfilled": fulfilled,
                "response": response,
                "evidence": self._screen_evidence(response, opened_at),
            }
        return outcomes

    def _detach_stores(self) -> None:
        """Disconnect every chain in the deployment from its durable store.

        Called in a freshly forked worker: the child shares file
        descriptions (and offsets) with the parent, so a single child write
        would corrupt the parent's log.  Dropping the references is enough —
        the duplicated descriptors are reclaimed when the worker exits.
        """
        arch = self.architecture
        chains = []
        node = getattr(arch, "node", None)
        if node is not None:
            chains.append(node.chain)
        network = getattr(arch, "validator_network", None)
        if network is not None:
            for validator in network.validators:
                if validator.node is not None:
                    chains.append(validator.node.chain)
        for chain in chains:
            chain.store = None
            chain.snapshot_interval = 0

    def _trusted_measurements(self) -> Set[str]:
        # Fail loudly if the deployment ever loses its attestation verifier:
        # silently skipping the measurement check would weaken verification.
        return self.architecture.attestation_verifier.trusted_measurements

    def _round_id_for(self, owner: DataOwner, resource_id: str) -> int:
        """Round id of the round just opened through the owner's push-in oracle.

        The architecture wiring records the ``start_monitoring`` return value
        on the owner; the historical ``MonitoringRequested`` log scan is kept
        only as a fallback for custom wirings.
        """
        round_id = owner.monitoring_round_ids.get(resource_id)
        if round_id is not None:
            return round_id
        return self._latest_round_id(resource_id)

    def _latest_round_id(self, resource_id: str) -> int:
        logs = self.architecture.node.get_logs(
            address=self.architecture.dist_exchange_address, event="MonitoringRequested"
        )
        matching = [log for log in logs if log.data.get("resource_id") == resource_id]
        if not matching:
            raise NotFoundError(f"no monitoring round was opened for {resource_id}")
        return matching[-1].data["round_id"]

    def _consumer_for_device(self, device_id: str) -> Optional[DataConsumer]:
        return consumer_for_device(self.architecture, device_id)
