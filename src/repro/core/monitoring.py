"""Policy monitoring (Fig. 2.6).

"The policy monitoring process regularly checks usage policy compliance once
data are accessed.  The Pod Manager uses the Push-in Oracle to start the
monitoring (for instance, via a scheduled job).  The Push-in Oracle forwards
the request to the DE App, which in turn communicates with all devices that
have a copy of the resource in their Trusted Execution Environment via the
Pull-in Oracle.  The Pull-in Oracle, then, requests evidence that the usage
policies are being adhered to.  The Push-out Oracle is subsequently required
by the DE App to send the pieces of evidence gathered from the various
trusted applications to the Pod Manager that initiated the policy monitoring
process."

The :class:`MonitoringCoordinator` drives that loop for a deployment: it
opens the round through the owner's pod manager, relays the DE App's evidence
requests to the copy-holding devices through the oracle request hub, records
the answers on-chain, and assembles a :class:`MonitoringReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import NotFoundError
from repro.core.participants import DataConsumer, DataOwner


@dataclass
class MonitoringReport:
    """Outcome of one monitoring round."""

    round_id: int
    resource_id: str
    holders: List[str]
    evidence: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    compliant_devices: List[str] = field(default_factory=list)
    non_compliant_devices: List[str] = field(default_factory=list)
    violations: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def all_compliant(self) -> bool:
        return not self.non_compliant_devices

    def to_dict(self) -> dict:
        return {
            "roundId": self.round_id,
            "resourceId": self.resource_id,
            "holders": list(self.holders),
            "compliantDevices": list(self.compliant_devices),
            "nonCompliantDevices": list(self.non_compliant_devices),
            "violations": list(self.violations),
        }


class MonitoringCoordinator:
    """Drives monitoring rounds across the DE App, oracles, and consumer TEEs."""

    def __init__(self, architecture):
        # Imported lazily by type to avoid a circular import with architecture.
        self.architecture = architecture
        self.reports: List[MonitoringReport] = []

    # -- single round -------------------------------------------------------------

    def run_round(self, owner: DataOwner, resource_path: str) -> MonitoringReport:
        """Execute one complete monitoring round for *resource_path*."""
        arch = self.architecture
        resource_id = owner.request_monitoring(resource_path)
        round_id = self._latest_round_id(resource_id)
        round_record = arch.dist_exchange_read("get_monitoring_round", {"round_id": round_id})
        holders: List[str] = list(round_record["holders"])

        # The DE App requests evidence from every copy holder via the pull-in
        # oracle: one request per device on the oracle hub.
        request_ids: Dict[str, int] = {}
        for device_id in holders:
            receipt = arch.operator_module.call_contract(
                arch.oracle_hub_address,
                "create_request",
                {
                    "kind": "usage_evidence",
                    "payload": {"resource_id": resource_id, "device_id": device_id, "round_id": round_id},
                    "target": device_id,
                },
            )
            request_ids[device_id] = receipt.return_value

        # Each device's off-chain pull-in component answers its own request.
        for device_id, request_id in request_ids.items():
            consumer = self._consumer_for_device(device_id)
            if consumer is None:
                continue
            consumer.pull_in.serve_request(request_id)

        # The collected evidence is recorded in the DE App, which emits
        # EvidenceRecorded events that the push-out oracle delivers to the
        # owner's pod manager.
        report = MonitoringReport(round_id=round_id, resource_id=resource_id, holders=holders)
        for device_id, request_id in request_ids.items():
            record = arch.node.call(arch.oracle_hub_address, "get_request", {"request_id": request_id})
            if not record["fulfilled"]:
                report.non_compliant_devices.append(device_id)
                report.evidence[device_id] = {"compliant": False, "details": "no evidence provided"}
                arch.operator_module.call_contract(
                    arch.dist_exchange_address,
                    "record_usage_evidence",
                    {
                        "round_id": round_id,
                        "device_id": device_id,
                        "evidence": {"compliant": False, "details": "no evidence provided"},
                    },
                )
                continue
            evidence = record["response"]
            report.evidence[device_id] = evidence
            arch.operator_module.call_contract(
                arch.dist_exchange_address,
                "record_usage_evidence",
                {"round_id": round_id, "device_id": device_id, "evidence": evidence},
            )
            if evidence.get("compliant", False):
                report.compliant_devices.append(device_id)
            else:
                report.non_compliant_devices.append(device_id)

        report.violations = arch.dist_exchange_read("get_violations", {"resource_id": resource_id})
        self.reports.append(report)
        return report

    # -- scheduled monitoring ------------------------------------------------------------

    def schedule_periodic(self, owner: DataOwner, resource_path: str, interval: float):
        """Register a recurring monitoring job on the architecture's scheduler."""
        if self.architecture.scheduler is None:
            raise NotFoundError("the architecture has no scheduler (a real-time clock is in use)")
        return self.architecture.scheduler.schedule_every(
            interval,
            lambda: self.run_round(owner, resource_path),
            label=f"monitoring:{resource_path}",
        )

    # -- helpers -----------------------------------------------------------------------------

    def _latest_round_id(self, resource_id: str) -> int:
        logs = self.architecture.node.get_logs(
            address=self.architecture.dist_exchange_address, event="MonitoringRequested"
        )
        matching = [log for log in logs if log.data.get("resource_id") == resource_id]
        if not matching:
            raise NotFoundError(f"no monitoring round was opened for {resource_id}")
        return matching[-1].data["round_id"]

    def _consumer_for_device(self, device_id: str) -> Optional[DataConsumer]:
        for consumer in self.architecture.consumers.values():
            if consumer.device_id == device_id:
                return consumer
        return None
