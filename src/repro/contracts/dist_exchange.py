"""The DistExchange application (DE App).

Section III-B of the paper assigns three responsibilities to the blockchain
application: "(i) recording where data resides, (ii) declaring what the usage
restrictions are, and (iii) monitoring compliance with these policies."  The
contract below implements them plus the bookkeeping the six processes of
Fig. 2 require:

* **Pod initiation** — :meth:`register_pod` records a pod's web reference and
  default policy (pushed in by the pod manager's push-in oracle).
* **Resource initiation** — :meth:`register_resource` indexes a resource's
  location and its usage policy, emitting ``ResourceRegistered``.
* **Resource indexing** — :meth:`get_resource` is the read-only lookup the
  consumer's pull-out oracle performs.
* **Resource access** — :meth:`record_access_grant` notes which consumer now
  holds a copy, so later policy updates and monitoring reach them.
* **Policy modification** — :meth:`update_policy` replaces the policy and
  emits ``PolicyUpdated`` (the push-out oracle notifies consumer TEEs).
* **Policy monitoring** — :meth:`start_monitoring` opens a monitoring round
  (``MonitoringRequested`` is picked up by the pull-in oracle), and
  :meth:`record_usage_evidence` stores the evidence reported back by TEEs;
  :meth:`report_violation` records detected violations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.contracts.base import SmartContract


class DistExchangeApp(SmartContract):
    """On-chain registry and monitor for usage-controlled resources."""

    # -- deployment -----------------------------------------------------------

    def constructor(self, administrator: Optional[str] = None, **_: Any) -> None:
        self.storage["administrator"] = administrator or self.msg_sender
        self.storage["pods"] = {}
        self.storage["resources"] = {}
        self.storage["policies"] = {}
        self.storage["grants"] = {}
        self.storage["monitoring_rounds"] = {}
        self.storage["evidence"] = {}
        self.storage["violations"] = []
        self.storage["next_round_id"] = 1

    # -- pod initiation (Fig. 2.1) ------------------------------------------------

    def register_pod(self, pod_url: str, owner: str, default_policy: Dict[str, Any]) -> str:
        """Record a pod's root location and its default usage policy."""
        self.require(bool(pod_url), "pod_url must be non-empty")
        self.require(bool(owner), "owner must be non-empty")
        pods = self.storage.get("pods", {})
        self.require(pod_url not in pods, f"pod {pod_url} is already registered")
        pods[pod_url] = {
            "owner": owner,
            "registered_by": self.msg_sender,
            "registered_at": self.block_timestamp,
            "default_policy": default_policy,
        }
        self.storage["pods"] = pods
        self.emit("PodRegistered", pod_url=pod_url, owner=owner)
        return pod_url

    def get_pod(self, pod_url: str) -> Dict[str, Any]:
        """Return the recorded metadata of a pod."""
        pods = self.storage.get("pods", {})
        self.require(pod_url in pods, f"pod {pod_url} is not registered")
        return pods[pod_url]

    def list_pods(self) -> List[str]:
        """Return the URLs of every registered pod."""
        return sorted(self.storage.get("pods", {}).keys())

    # -- resource initiation (Fig. 2.2) ----------------------------------------------

    def register_resource(self, resource_id: str, pod_url: str, location: str,
                          owner: str, policy: Dict[str, Any],
                          metadata: Optional[Dict[str, Any]] = None) -> str:
        """Index a resource: its physical location and applicable usage policy."""
        self.require(bool(resource_id), "resource_id must be non-empty")
        pods = self.storage.get("pods", {})
        self.require(pod_url in pods, f"pod {pod_url} is not registered")
        self.require(pods[pod_url]["owner"] == owner, "resource owner must own the pod")
        resources = self.storage.get("resources", {})
        self.require(resource_id not in resources, f"resource {resource_id} is already registered")
        resources[resource_id] = {
            "pod_url": pod_url,
            "location": location,
            "owner": owner,
            "registered_at": self.block_timestamp,
            "metadata": metadata or {},
        }
        self.storage["resources"] = resources
        policies = self.storage.get("policies", {})
        policies[resource_id] = policy
        self.storage["policies"] = policies
        grants = self.storage.get("grants", {})
        grants.setdefault(resource_id, [])
        self.storage["grants"] = grants
        self.emit("ResourceRegistered", resource_id=resource_id, owner=owner, location=location)
        return resource_id

    def list_resources(self) -> List[str]:
        """Return the identifiers of every indexed resource."""
        return sorted(self.storage.get("resources", {}).keys())

    # -- resource indexing (Fig. 2.3) ----------------------------------------------------

    def get_resource(self, resource_id: str) -> Dict[str, Any]:
        """Return the location and usage policy of a resource (pull-out read)."""
        resources = self.storage.get("resources", {})
        self.require(resource_id in resources, f"resource {resource_id} is not registered")
        record = dict(resources[resource_id])
        record["policy"] = self.storage.get("policies", {}).get(resource_id)
        record["resource_id"] = resource_id
        return record

    def get_policy(self, resource_id: str) -> Dict[str, Any]:
        """Return only the current usage policy of a resource."""
        policies = self.storage.get("policies", {})
        self.require(resource_id in policies, f"resource {resource_id} has no policy")
        return policies[resource_id]

    # -- resource access bookkeeping (Fig. 2.4) ---------------------------------------------

    def record_access_grant(self, resource_id: str, consumer: str, device_id: str,
                            purpose: Optional[str] = None) -> Dict[str, Any]:
        """Record that *consumer*'s device now holds a copy of the resource."""
        resources = self.storage.get("resources", {})
        self.require(resource_id in resources, f"resource {resource_id} is not registered")
        grants = self.storage.get("grants", {})
        entries = grants.setdefault(resource_id, [])
        grant = {
            "consumer": consumer,
            "device_id": device_id,
            "purpose": purpose,
            "granted_at": self.block_timestamp,
            "active": True,
        }
        entries.append(grant)
        self.storage["grants"] = grants
        self.emit("AccessGranted", resource_id=resource_id, consumer=consumer, device_id=device_id)
        return grant

    def get_grants(self, resource_id: str) -> List[Dict[str, Any]]:
        """Return every access grant recorded for a resource."""
        return list(self.storage.get("grants", {}).get(resource_id, []))

    def revoke_grant(self, resource_id: str, device_id: str) -> bool:
        """Mark a consumer device's grant as inactive (e.g. after deletion)."""
        grants = self.storage.get("grants", {})
        entries = grants.get(resource_id, [])
        changed = False
        for grant in entries:
            if grant["device_id"] == device_id and grant["active"]:
                grant["active"] = False
                changed = True
        if changed:
            self.storage["grants"] = grants
            self.emit("AccessRevoked", resource_id=resource_id, device_id=device_id)
        return changed

    # -- policy modification (Fig. 2.5) ----------------------------------------------------

    def update_policy(self, resource_id: str, policy: Dict[str, Any], owner: str) -> Dict[str, Any]:
        """Replace the usage policy of a resource and notify copy holders."""
        resources = self.storage.get("resources", {})
        self.require(resource_id in resources, f"resource {resource_id} is not registered")
        self.require(resources[resource_id]["owner"] == owner, "only the owner may update the policy")
        policies = self.storage.get("policies", {})
        previous = policies.get(resource_id)
        policies[resource_id] = policy
        self.storage["policies"] = policies
        holders = [
            grant["device_id"]
            for grant in self.storage.get("grants", {}).get(resource_id, [])
            if grant["active"]
        ]
        self.emit(
            "PolicyUpdated",
            resource_id=resource_id,
            policy=policy,
            previous_version=(previous or {}).get("version"),
            new_version=policy.get("version"),
            holders=holders,
        )
        return policy

    # -- policy monitoring (Fig. 2.6) ---------------------------------------------------------

    def start_monitoring(self, resource_id: str, requested_by: str) -> int:
        """Open a monitoring round for a resource; returns the round identifier."""
        resources = self.storage.get("resources", {})
        self.require(resource_id in resources, f"resource {resource_id} is not registered")
        round_id = self.storage.get("next_round_id", 1)
        self.storage["next_round_id"] = round_id + 1
        holders = [
            grant["device_id"]
            for grant in self.storage.get("grants", {}).get(resource_id, [])
            if grant["active"]
        ]
        rounds = self.storage.get("monitoring_rounds", {})
        rounds[str(round_id)] = {
            "resource_id": resource_id,
            "requested_by": requested_by,
            "requested_at": self.block_timestamp,
            "holders": holders,
            "responses": {},
            "closed": False,
        }
        self.storage["monitoring_rounds"] = rounds
        self.emit(
            "MonitoringRequested",
            round_id=round_id,
            resource_id=resource_id,
            holders=holders,
            requested_by=requested_by,
        )
        return round_id

    def record_usage_evidence(self, round_id: int, device_id: str,
                              evidence: Dict[str, Any]) -> Dict[str, Any]:
        """Store the usage evidence a TEE reported for a monitoring round."""
        rounds = self.storage.get("monitoring_rounds", {})
        key = str(round_id)
        self.require(key in rounds, f"unknown monitoring round {round_id}")
        round_record = rounds[key]
        self.require(not round_record["closed"], f"monitoring round {round_id} is closed")
        round_record["responses"][device_id] = evidence
        all_evidence = self.storage.get("evidence", {})
        all_evidence.setdefault(round_record["resource_id"], []).append(
            {"round_id": round_id, "device_id": device_id, "evidence": evidence}
        )
        self.storage["evidence"] = all_evidence
        outstanding = [
            holder for holder in round_record["holders"] if holder not in round_record["responses"]
        ]
        if not outstanding:
            round_record["closed"] = True
        self.storage["monitoring_rounds"] = rounds
        self.emit(
            "EvidenceRecorded",
            round_id=round_id,
            resource_id=round_record["resource_id"],
            device_id=device_id,
            compliant=bool(evidence.get("compliant", False)),
            round_closed=round_record["closed"],
        )
        if not evidence.get("compliant", True):
            self.report_violation(
                round_record["resource_id"], device_id, evidence.get("details", "non-compliant evidence")
            )
        return round_record

    def get_monitoring_round(self, round_id: int) -> Dict[str, Any]:
        """Return the state of a monitoring round (holders, responses, closed)."""
        rounds = self.storage.get("monitoring_rounds", {})
        key = str(round_id)
        self.require(key in rounds, f"unknown monitoring round {round_id}")
        return rounds[key]

    def get_evidence(self, resource_id: str) -> List[Dict[str, Any]]:
        """Return every piece of evidence recorded for a resource."""
        return list(self.storage.get("evidence", {}).get(resource_id, []))

    # -- violations --------------------------------------------------------------------------

    def report_violation(self, resource_id: str, device_id: str, details: str) -> Dict[str, Any]:
        """Record a detected usage-policy violation."""
        violations = self.storage.get("violations", [])
        violation = {
            "resource_id": resource_id,
            "device_id": device_id,
            "details": details,
            "reported_at": self.block_timestamp,
        }
        violations.append(violation)
        self.storage["violations"] = violations
        self.emit("ViolationDetected", resource_id=resource_id, device_id=device_id, details=details)
        return violation

    def get_violations(self, resource_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Return recorded violations, optionally filtered by resource."""
        violations = self.storage.get("violations", [])
        if resource_id is None:
            return list(violations)
        return [violation for violation in violations if violation["resource_id"] == resource_id]
