"""The DistExchange application (DE App).

Section III-B of the paper assigns three responsibilities to the blockchain
application: "(i) recording where data resides, (ii) declaring what the usage
restrictions are, and (iii) monitoring compliance with these policies."  The
contract below implements them plus the bookkeeping the six processes of
Fig. 2 require:

* **Pod initiation** — :meth:`register_pod` records a pod's web reference and
  default policy (pushed in by the pod manager's push-in oracle).
* **Resource initiation** — :meth:`register_resource` indexes a resource's
  location and its usage policy, emitting ``ResourceRegistered``.
* **Resource indexing** — :meth:`get_resource` is the read-only lookup the
  consumer's pull-out oracle performs.
* **Resource access** — :meth:`record_access_grant` notes which consumer now
  holds a copy, so later policy updates and monitoring reach them.
* **Policy modification** — :meth:`update_policy` replaces the policy and
  emits ``PolicyUpdated`` (the push-out oracle notifies consumer TEEs).
* **Policy monitoring** — :meth:`start_monitoring` opens a monitoring round
  (``MonitoringRequested`` is picked up by the pull-in oracle), and
  :meth:`record_usage_evidence` stores the evidence reported back by TEEs;
  :meth:`report_violation` records detected violations.

Storage layout
--------------

State is keyed by *composite slots*, one slot per entity, so every method
touches O(its own entries) regardless of how many pods, resources, grants,
rounds, or violations the deployment has accumulated:

================================  ==============================================
slot                              contents
================================  ==============================================
``administrator``                 deployer / migration authority
``pod:{pod_url}``                 one pod record
``pod_index``                     mapping ``pod_url -> True`` (updated per entry)
``resource:{resource_id}``        one resource record
``resource_index``                mapping ``resource_id -> True``
``policy:{resource_id}``          the current usage policy
``grants:{resource_id}``          list of access grants for one resource
``round:{round_id}``              round metadata incl. holder/response counters
``round:{round_id}:holders``      mapping ``device_id -> True`` (grant order)
``round:{round_id}:responses``    mapping ``device_id -> evidence``
``evidence:{resource_id}``        append-only evidence list for one resource
``violations``                    append-only global violation list
``violations:{resource_id}``      append-only per-resource violation index
``next_round_id``                 monitoring round counter
================================  ==============================================

The batch entry point :meth:`record_usage_evidence_batch` (and
:meth:`record_access_grants`) lets a monitoring round confirm all of its
evidence in a single transaction; combined with
``BlockchainInteractionModule.batch()`` a round seals a small constant
number of blocks instead of O(holders).

Deployments created before this layout (monolithic ``pods`` / ``grants`` /
``monitoring_rounds`` / ``evidence`` / ``violations`` slots) can be
converted in place with the one-shot :meth:`migrate_storage`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.contracts.base import SmartContract


class DistExchangeApp(SmartContract):
    """On-chain registry and monitor for usage-controlled resources."""

    # -- deployment -----------------------------------------------------------

    def constructor(self, administrator: Optional[str] = None, **_: Any) -> None:
        self.storage["administrator"] = administrator or self.msg_sender
        self.storage["pod_index"] = {}
        self.storage["resource_index"] = {}
        self.storage["violations"] = []
        self.storage["next_round_id"] = 1

    # -- pod initiation (Fig. 2.1) ------------------------------------------------

    def register_pod(self, pod_url: str, owner: str, default_policy: Dict[str, Any]) -> str:
        """Record a pod's root location and its default usage policy."""
        self.require(bool(pod_url), "pod_url must be non-empty")
        self.require(bool(owner), "owner must be non-empty")
        self.require(
            not self.storage.has_entry("pod_index", pod_url),
            f"pod {pod_url} is already registered",
        )
        self.storage[f"pod:{pod_url}"] = {
            "owner": owner,
            "registered_by": self.msg_sender,
            "registered_at": self.block_timestamp,
            "default_policy": default_policy,
        }
        self.storage.set_entry("pod_index", pod_url, True)
        self.emit("PodRegistered", pod_url=pod_url, owner=owner)
        return pod_url

    def get_pod(self, pod_url: str) -> Dict[str, Any]:
        """Return the recorded metadata of a pod."""
        record = self.storage.get(f"pod:{pod_url}")
        self.require(record is not None, f"pod {pod_url} is not registered")
        return record

    def list_pods(self) -> List[str]:
        """Return the URLs of every registered pod."""
        return sorted(self.storage.get("pod_index", {}).keys())

    # -- resource initiation (Fig. 2.2) ----------------------------------------------

    def register_resource(self, resource_id: str, pod_url: str, location: str,
                          owner: str, policy: Dict[str, Any],
                          metadata: Optional[Dict[str, Any]] = None) -> str:
        """Index a resource: its physical location and applicable usage policy."""
        self.require(bool(resource_id), "resource_id must be non-empty")
        pod = self.storage.get(f"pod:{pod_url}")
        self.require(pod is not None, f"pod {pod_url} is not registered")
        self.require(pod["owner"] == owner, "resource owner must own the pod")
        self.require(
            not self.storage.has_entry("resource_index", resource_id),
            f"resource {resource_id} is already registered",
        )
        self.storage[f"resource:{resource_id}"] = {
            "pod_url": pod_url,
            "location": location,
            "owner": owner,
            "registered_at": self.block_timestamp,
            "metadata": metadata or {},
        }
        self.storage[f"policy:{resource_id}"] = policy
        self.storage[f"grants:{resource_id}"] = []
        self.storage.set_entry("resource_index", resource_id, True)
        self.emit("ResourceRegistered", resource_id=resource_id, owner=owner, location=location)
        return resource_id

    def list_resources(self) -> List[str]:
        """Return the identifiers of every indexed resource."""
        return sorted(self.storage.get("resource_index", {}).keys())

    # -- resource indexing (Fig. 2.3) ----------------------------------------------------

    def get_resource(self, resource_id: str) -> Dict[str, Any]:
        """Return the location and usage policy of a resource (pull-out read)."""
        record = self.storage.get(f"resource:{resource_id}")
        self.require(record is not None, f"resource {resource_id} is not registered")
        record["policy"] = self.storage.get(f"policy:{resource_id}")
        record["resource_id"] = resource_id
        return record

    def get_policy(self, resource_id: str) -> Dict[str, Any]:
        """Return only the current usage policy of a resource."""
        policy = self.storage.get(f"policy:{resource_id}")
        self.require(policy is not None, f"resource {resource_id} has no policy")
        return policy

    # -- resource access bookkeeping (Fig. 2.4) ---------------------------------------------

    def record_access_grant(self, resource_id: str, consumer: str, device_id: str,
                            purpose: Optional[str] = None) -> Dict[str, Any]:
        """Record that *consumer*'s device now holds a copy of the resource."""
        self.require(
            self.storage.has_entry("resource_index", resource_id),
            f"resource {resource_id} is not registered",
        )
        return self._append_grant(resource_id, consumer, device_id, purpose)

    def record_access_grants(self, resource_id: str, grants: List[Dict[str, Any]]) -> int:
        """Batch variant of :meth:`record_access_grant`: one transaction, many grants.

        Each item carries ``consumer``, ``device_id``, and optionally
        ``purpose``.  Returns the number of grants recorded.
        """
        self.require(
            self.storage.has_entry("resource_index", resource_id),
            f"resource {resource_id} is not registered",
        )
        for grant in grants:
            self._append_grant(
                resource_id, grant["consumer"], grant["device_id"], grant.get("purpose")
            )
        return len(grants)

    def _append_grant(self, resource_id: str, consumer: str, device_id: str,
                      purpose: Optional[str]) -> Dict[str, Any]:
        grant = {
            "consumer": consumer,
            "device_id": device_id,
            "purpose": purpose,
            "granted_at": self.block_timestamp,
            "active": True,
        }
        self.storage.append(f"grants:{resource_id}", grant)
        self.emit("AccessGranted", resource_id=resource_id, consumer=consumer, device_id=device_id)
        return grant

    def get_grants(self, resource_id: str) -> List[Dict[str, Any]]:
        """Return every access grant recorded for a resource."""
        return self.storage.get(f"grants:{resource_id}", [])

    def revoke_grant(self, resource_id: str, device_id: str) -> bool:
        """Mark a consumer device's grant as inactive (e.g. after deletion)."""
        key = f"grants:{resource_id}"
        entries = self.storage.get(key, [])
        matches = [
            index
            for index, grant in enumerate(entries)
            if grant["device_id"] == device_id and grant["active"]
        ]
        for index in matches:
            self.storage.set_item(key, index, dict(entries[index], active=False))
        if matches:
            self.emit("AccessRevoked", resource_id=resource_id, device_id=device_id)
        return bool(matches)

    def _active_holders(self, resource_id: str) -> List[str]:
        return [
            grant["device_id"]
            for grant in self.storage.get(f"grants:{resource_id}", [])
            if grant["active"]
        ]

    # -- policy modification (Fig. 2.5) ----------------------------------------------------

    def update_policy(self, resource_id: str, policy: Dict[str, Any], owner: str) -> Dict[str, Any]:
        """Replace the usage policy of a resource and notify copy holders."""
        record = self.storage.get(f"resource:{resource_id}")
        self.require(record is not None, f"resource {resource_id} is not registered")
        self.require(record["owner"] == owner, "only the owner may update the policy")
        previous = self.storage.get(f"policy:{resource_id}")
        self.storage[f"policy:{resource_id}"] = policy
        self.emit(
            "PolicyUpdated",
            resource_id=resource_id,
            policy=policy,
            previous_version=(previous or {}).get("version"),
            new_version=policy.get("version"),
            holders=self._active_holders(resource_id),
        )
        return policy

    # -- policy monitoring (Fig. 2.6) ---------------------------------------------------------

    def start_monitoring(self, resource_id: str, requested_by: str) -> int:
        """Open a monitoring round for a resource; returns the round identifier."""
        self.require(
            self.storage.has_entry("resource_index", resource_id),
            f"resource {resource_id} is not registered",
        )
        round_id = self.storage.get("next_round_id", 1)
        self.storage["next_round_id"] = round_id + 1
        # Deduplicate: a device holding several active grants (e.g. after
        # retrieving the same resource twice) is still one holder — it
        # answers once, and holder_count must agree with the holders map or
        # the round could never close.
        holder_map = {device_id: True for device_id in self._active_holders(resource_id)}
        holders = list(holder_map)
        self.storage[f"round:{round_id}"] = {
            "resource_id": resource_id,
            "requested_by": requested_by,
            "requested_at": self.block_timestamp,
            "holder_count": len(holder_map),
            "response_count": 0,
            "closed": False,
        }
        self.storage[f"round:{round_id}:holders"] = holder_map
        self.storage[f"round:{round_id}:responses"] = {}
        self.emit(
            "MonitoringRequested",
            round_id=round_id,
            resource_id=resource_id,
            holders=holders,
            requested_by=requested_by,
        )
        return round_id

    def record_usage_evidence(self, round_id: int, device_id: str,
                              evidence: Dict[str, Any]) -> Dict[str, Any]:
        """Store the usage evidence a TEE reported for a monitoring round."""
        meta = self.storage.get(f"round:{round_id}")
        self.require(meta is not None, f"unknown monitoring round {round_id}")
        self.require(not meta["closed"], f"monitoring round {round_id} is closed")
        return self._record_one_evidence(round_id, meta, device_id, evidence)

    def record_usage_evidence_batch(self, round_id: int,
                                    evidence_items: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Batch variant of :meth:`record_usage_evidence`: one transaction per round.

        Each item carries ``device_id`` and ``evidence``.  Evidence is
        processed in order with the exact per-item semantics of the single
        call (events, violation reports, round closing), so a batched round
        leaves the same on-chain record as one transaction per device.
        Items arriving after the round closes mid-batch are rejected without
        being recorded — the same outcome as the sequential flow, where
        those individual transactions revert with "round is closed" — and
        their device ids are returned under ``rejected``.
        """
        meta = self.storage.get(f"round:{round_id}")
        self.require(meta is not None, f"unknown monitoring round {round_id}")
        self.require(not meta["closed"], f"monitoring round {round_id} is closed")
        recorded = 0
        rejected: List[str] = []
        for item in evidence_items:
            if meta["closed"]:
                rejected.append(item["device_id"])
                continue
            meta = self._record_one_evidence(round_id, meta, item["device_id"], item["evidence"])
            recorded += 1
        return {"round_id": round_id, "recorded": recorded,
                "rejected": rejected, "closed": meta["closed"]}

    def _record_one_evidence(self, round_id: int, meta: Dict[str, Any], device_id: str,
                             evidence: Dict[str, Any]) -> Dict[str, Any]:
        """Record one device's evidence; touches O(1) entries.  Returns the meta."""
        is_new_response = self.storage.set_entry(f"round:{round_id}:responses", device_id, evidence)
        if is_new_response and self.storage.has_entry(f"round:{round_id}:holders", device_id):
            meta["response_count"] += 1
            self.storage.set_entry(f"round:{round_id}", "response_count", meta["response_count"])
        # Checked on every record (not only holder responses) so a round with
        # zero active holders closes on its first piece of evidence, exactly
        # like the outstanding-holders scan this counter replaced.
        if meta["response_count"] >= meta["holder_count"]:
            meta["closed"] = True
            self.storage.set_entry(f"round:{round_id}", "closed", True)
        self.storage.append(
            f"evidence:{meta['resource_id']}",
            {"round_id": round_id, "device_id": device_id, "evidence": evidence},
        )
        self.emit(
            "EvidenceRecorded",
            round_id=round_id,
            resource_id=meta["resource_id"],
            device_id=device_id,
            compliant=bool(evidence.get("compliant", False)),
            round_closed=meta["closed"],
        )
        if not evidence.get("compliant", True):
            self.report_violation(
                meta["resource_id"], device_id, evidence.get("details", "non-compliant evidence")
            )
        return meta

    def get_monitoring_round(self, round_id: int) -> Dict[str, Any]:
        """Return the state of a monitoring round (holders, responses, closed)."""
        meta = self.storage.get(f"round:{round_id}")
        self.require(meta is not None, f"unknown monitoring round {round_id}")
        return {
            "resource_id": meta["resource_id"],
            "requested_by": meta["requested_by"],
            "requested_at": meta["requested_at"],
            "holders": sorted(self.storage.get(f"round:{round_id}:holders", {})),
            "responses": self.storage.get(f"round:{round_id}:responses", {}),
            "closed": meta["closed"],
        }

    def get_evidence(self, resource_id: str) -> List[Dict[str, Any]]:
        """Return every piece of evidence recorded for a resource."""
        return self.storage.get(f"evidence:{resource_id}", [])

    # -- violations --------------------------------------------------------------------------

    def report_violation(self, resource_id: str, device_id: str, details: str) -> Dict[str, Any]:
        """Record a detected usage-policy violation."""
        violation = {
            "resource_id": resource_id,
            "device_id": device_id,
            "details": details,
            "reported_at": self.block_timestamp,
        }
        self.storage.append("violations", violation)
        self.storage.append(f"violations:{resource_id}", violation)
        self.emit("ViolationDetected", resource_id=resource_id, device_id=device_id, details=details)
        return violation

    def get_violations(self, resource_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Return recorded violations, optionally filtered by resource.

        The filtered query is served from the per-resource violations index,
        so it never scans violations concerning other resources.
        """
        if resource_id is None:
            return self.storage.get("violations", [])
        return self.storage.get(f"violations:{resource_id}", [])

    # -- legacy-layout migration ---------------------------------------------------------------

    def migrate_storage(self) -> Dict[str, int]:
        """One-shot conversion of the pre-composite (monolithic-slot) layout.

        Splits the legacy ``pods`` / ``resources`` / ``policies`` /
        ``grants`` / ``monitoring_rounds`` / ``evidence`` slots into the
        per-entity slots documented in the module docstring and builds the
        per-resource violations index.  Only the administrator may run it;
        it is idempotent (a second call finds nothing left to migrate).
        """
        self.require(
            self.msg_sender == self.storage.get("administrator"),
            "only the administrator may migrate storage",
        )
        migrated = {"pods": 0, "resources": 0, "grants": 0, "rounds": 0,
                    "evidence": 0, "violations": 0}
        # The migration loops are intentionally O(legacy collection): this is
        # a one-shot, administrator-only conversion of a bounded legacy
        # layout, not a recurring entrypoint.
        pods = self.storage.get("pods")
        if pods is not None:
            for pod_url, record in sorted(pods.items()):  # chainlint: disable=GAS001
                self.storage[f"pod:{pod_url}"] = record
                self.storage.set_entry("pod_index", pod_url, True)
                migrated["pods"] += 1
            del self.storage["pods"]
        resources = self.storage.get("resources")
        if resources is not None:
            for resource_id, record in sorted(resources.items()):  # chainlint: disable=GAS001
                self.storage[f"resource:{resource_id}"] = record
                self.storage.set_entry("resource_index", resource_id, True)
                migrated["resources"] += 1
            del self.storage["resources"]
        policies = self.storage.get("policies")
        if policies is not None:
            for resource_id, policy in sorted(policies.items()):  # chainlint: disable=GAS001
                self.storage[f"policy:{resource_id}"] = policy
            del self.storage["policies"]
        grants = self.storage.get("grants")
        if grants is not None:
            for resource_id, entries in sorted(grants.items()):  # chainlint: disable=GAS001
                self.storage[f"grants:{resource_id}"] = entries
                migrated["grants"] += len(entries)
            del self.storage["grants"]
        rounds = self.storage.get("monitoring_rounds")
        if rounds is not None:
            for round_key, record in sorted(rounds.items()):  # chainlint: disable=GAS001
                responses = record.get("responses", {})
                holders = record.get("holders", [])
                self.storage[f"round:{round_key}"] = {
                    "resource_id": record["resource_id"],
                    "requested_by": record["requested_by"],
                    "requested_at": record["requested_at"],
                    "holder_count": len(holders),
                    "response_count": sum(1 for holder in holders if holder in responses),
                    "closed": record["closed"],
                }
                self.storage[f"round:{round_key}:holders"] = {h: True for h in holders}
                self.storage[f"round:{round_key}:responses"] = responses
                migrated["rounds"] += 1
            del self.storage["monitoring_rounds"]
        evidence = self.storage.get("evidence")
        if evidence is not None:
            for resource_id, entries in sorted(evidence.items()):  # chainlint: disable=GAS001
                self.storage[f"evidence:{resource_id}"] = entries
                migrated["evidence"] += len(entries)
            del self.storage["evidence"]
        violations = self.storage.get("violations", [])
        # The global list keeps its slot; (re)build the per-resource index.
        by_resource: Dict[str, List[Dict[str, Any]]] = {}
        for violation in violations:
            by_resource.setdefault(violation["resource_id"], []).append(violation)
        for resource_id, entries in sorted(by_resource.items()):
            if self.storage.get(f"violations:{resource_id}") != entries:
                self.storage[f"violations:{resource_id}"] = entries
                migrated["violations"] += len(entries)
        self.emit("StorageMigrated", **migrated)
        return migrated
