"""On-chain half of the pull-in oracle pattern.

In the pull-in pattern the *contract* initiates a data request that an
off-chain provider must answer (Section IV-6 uses it to ask consumer TEEs for
usage evidence).  The hub contract keeps an explicit request queue: contracts
(or the DE App workflow acting through the pod manager) enqueue requests, the
off-chain oracle component watches the ``OracleRequest`` events, obtains the
answer from the real world, and posts it back with :meth:`fulfill_request`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.contracts.base import SmartContract


class OracleRequestHub(SmartContract):
    """Request/response queue connecting on-chain consumers to off-chain providers."""

    def constructor(self, **_: Any) -> None:
        self.storage["next_request_id"] = 1
        self.storage["requests"] = {}
        self.storage["authorized_providers"] = {}

    # -- provider management -----------------------------------------------------

    def authorize_provider(self, provider: str) -> bool:
        """Allow an off-chain provider address to fulfill requests."""
        providers = self.storage.get("authorized_providers", {})
        providers[provider] = True
        self.storage["authorized_providers"] = providers
        self.emit("ProviderAuthorized", provider=provider)
        return True

    def is_authorized(self, provider: str) -> bool:
        return bool(self.storage.get("authorized_providers", {}).get(provider, False))

    # -- request lifecycle ----------------------------------------------------------

    def create_request(self, kind: str, payload: Dict[str, Any],
                       target: Optional[str] = None) -> int:
        """Enqueue an oracle request; emits ``OracleRequest`` for off-chain watchers."""
        self.require(bool(kind), "request kind must be non-empty")
        request_id = self.storage.get("next_request_id", 1)
        self.storage["next_request_id"] = request_id + 1
        requests = self.storage.get("requests", {})
        requests[str(request_id)] = {
            "kind": kind,
            "payload": payload,
            "target": target,
            "requested_by": self.msg_sender,
            "requested_at": self.block_timestamp,
            "fulfilled": False,
            "response": None,
            "fulfilled_by": None,
            "fulfilled_at": None,
        }
        self.storage["requests"] = requests
        self.emit("OracleRequest", request_id=request_id, kind=kind, payload=payload, target=target)
        return request_id

    def fulfill_request(self, request_id: int, response: Dict[str, Any],
                        provider: Optional[str] = None) -> Dict[str, Any]:
        """Record the off-chain answer to a pending request."""
        responder = provider or self.msg_sender
        self.require(self.is_authorized(responder), f"{responder} is not an authorized oracle provider")
        requests = self.storage.get("requests", {})
        key = str(request_id)
        self.require(key in requests, f"unknown oracle request {request_id}")
        record = requests[key]
        self.require(not record["fulfilled"], f"oracle request {request_id} is already fulfilled")
        record["fulfilled"] = True
        record["response"] = response
        record["fulfilled_by"] = responder
        record["fulfilled_at"] = self.block_timestamp
        self.storage["requests"] = requests
        self.emit("OracleResponse", request_id=request_id, response=response, provider=responder)
        return record

    # -- queries ------------------------------------------------------------------------

    def get_request(self, request_id: int) -> Dict[str, Any]:
        """Return the full state of one oracle request."""
        requests = self.storage.get("requests", {})
        key = str(request_id)
        self.require(key in requests, f"unknown oracle request {request_id}")
        return requests[key]

    def pending_requests(self, kind: Optional[str] = None) -> List[int]:
        """Return the identifiers of requests that still await fulfillment."""
        pending = []
        for key, record in self.storage.get("requests", {}).items():
            if record["fulfilled"]:
                continue
            if kind is not None and record["kind"] != kind:
                continue
            pending.append(int(key))
        return sorted(pending)
