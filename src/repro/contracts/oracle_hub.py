"""On-chain half of the pull-in oracle pattern.

In the pull-in pattern the *contract* initiates a data request that an
off-chain provider must answer (Section IV-6 uses it to ask consumer TEEs for
usage evidence).  The hub contract keeps an explicit request queue: contracts
(or the DE App workflow acting through the pod manager) enqueue requests, the
off-chain oracle component watches the ``OracleRequest`` events, obtains the
answer from the real world, and posts it back with :meth:`fulfill_request`.

Storage layout: each request lives in its own ``request:{id}`` slot and the
identifiers of unfulfilled requests are kept in a ``pending_index`` mapping
(``id -> kind``), so enqueueing, fulfilling, and listing pending requests
all touch O(1) / O(pending) entries regardless of how many requests the hub
has ever processed.  :meth:`create_requests` enqueues a whole monitoring
round's worth of requests in a single transaction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.contracts.base import SmartContract


class OracleRequestHub(SmartContract):
    """Request/response queue connecting on-chain consumers to off-chain providers."""

    def constructor(self, **_: Any) -> None:
        self.storage["administrator"] = self.msg_sender
        self.storage["next_request_id"] = 1
        self.storage["pending_index"] = {}
        self.storage["authorized_providers"] = {}

    # -- provider management -----------------------------------------------------

    def authorize_provider(self, provider: str) -> bool:
        """Allow an off-chain provider address to fulfill requests."""
        self.storage.set_entry("authorized_providers", provider, True)
        self.emit("ProviderAuthorized", provider=provider)
        return True

    def is_authorized(self, provider: str) -> bool:
        return bool(self.storage.get_entry("authorized_providers", provider, False))

    # -- request lifecycle ----------------------------------------------------------

    def create_request(self, kind: str, payload: Dict[str, Any],
                       target: Optional[str] = None) -> int:
        """Enqueue an oracle request; emits ``OracleRequest`` for off-chain watchers."""
        self.require(bool(kind), "request kind must be non-empty")
        return self._enqueue(kind, payload, target)

    def create_requests(self, requests: List[Dict[str, Any]]) -> List[int]:
        """Batch variant of :meth:`create_request`: one transaction, many requests.

        Each item carries ``kind``, ``payload``, and optionally ``target``.
        Returns the identifiers in input order; one ``OracleRequest`` event
        is emitted per request, so off-chain watchers see the same stream
        as with individual transactions.
        """
        for request in requests:
            self.require(bool(request.get("kind")), "request kind must be non-empty")
        return [
            self._enqueue(request["kind"], request.get("payload", {}), request.get("target"))
            for request in requests
        ]

    def _enqueue(self, kind: str, payload: Dict[str, Any], target: Optional[str]) -> int:
        request_id = self.storage.get("next_request_id", 1)
        self.storage["next_request_id"] = request_id + 1
        self.storage[f"request:{request_id}"] = {
            "kind": kind,
            "payload": payload,
            "target": target,
            "requested_by": self.msg_sender,
            "requested_at": self.block_timestamp,
            "fulfilled": False,
            "response": None,
            "fulfilled_by": None,
            "fulfilled_at": None,
        }
        self.storage.set_entry("pending_index", str(request_id), kind)
        self.emit("OracleRequest", request_id=request_id, kind=kind, payload=payload, target=target)
        return request_id

    def fulfill_request(self, request_id: int, response: Dict[str, Any],
                        provider: Optional[str] = None) -> Dict[str, Any]:
        """Record the off-chain answer to a pending request."""
        responder = provider or self.msg_sender
        self.require(self.is_authorized(responder), f"{responder} is not an authorized oracle provider")
        record = self.storage.get(f"request:{request_id}")
        self.require(record is not None, f"unknown oracle request {request_id}")
        self.require(not record["fulfilled"], f"oracle request {request_id} is already fulfilled")
        key = f"request:{request_id}"
        record = dict(record, fulfilled=True, response=response,
                      fulfilled_by=responder, fulfilled_at=self.block_timestamp)
        self.storage.set_entry(key, "fulfilled", True)
        self.storage.set_entry(key, "response", response)
        self.storage.set_entry(key, "fulfilled_by", responder)
        self.storage.set_entry(key, "fulfilled_at", record["fulfilled_at"])
        self.storage.delete_entry("pending_index", str(request_id))
        self.emit("OracleResponse", request_id=request_id, response=response, provider=responder)
        return record

    # -- queries ------------------------------------------------------------------------

    def get_request(self, request_id: int) -> Dict[str, Any]:
        """Return the full state of one oracle request."""
        record = self.storage.get(f"request:{request_id}")
        self.require(record is not None, f"unknown oracle request {request_id}")
        return record

    def pending_requests(self, kind: Optional[str] = None) -> List[int]:
        """Return the identifiers of requests that still await fulfillment.

        Served from the ``pending_index`` mapping: the cost is O(pending),
        not O(every request ever created).
        """
        pending = [
            int(request_id)
            for request_id, request_kind in sorted(self.storage.get("pending_index", {}).items())
            if kind is None or request_kind == kind
        ]
        return sorted(pending)

    # -- legacy-layout migration ---------------------------------------------------------

    def migrate_storage(self) -> Dict[str, int]:
        """One-shot conversion of the pre-composite (monolithic ``requests``) layout.

        Administrator-only; hubs deployed before this layout never recorded
        a deployer, so a contract without an ``administrator`` slot accepts
        the migration from any caller (the conversion is content-preserving
        and idempotent) and records the migrating sender as administrator.
        """
        administrator = self.storage.get("administrator")
        self.require(
            administrator is None or self.msg_sender == administrator,
            "only the administrator may migrate storage",
        )
        if administrator is None:
            self.storage["administrator"] = self.msg_sender
        migrated = {"requests": 0}
        requests = self.storage.get("requests")
        if requests is not None:
            # One-shot, administrator-only conversion of the bounded legacy
            # layout — intentionally O(legacy requests).
            for request_id, record in sorted(requests.items()):  # chainlint: disable=GAS001
                self.storage[f"request:{request_id}"] = record
                if not record.get("fulfilled"):
                    self.storage.set_entry("pending_index", str(request_id), record["kind"])
                migrated["requests"] += 1
            del self.storage["requests"]
        self.emit("StorageMigrated", **migrated)
        return migrated
