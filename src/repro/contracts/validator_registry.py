"""The on-chain validator registry: join / leave / slash as state transitions.

The PoA committee is no longer static config.  This contract is the source
of truth for the rotation schedule: validators *join* by escrowing a bond,
*leave* by announcing an exit and withdrawing the bond after a cool-down,
and are *slashed* when anyone submits a serialized
:class:`~repro.blockchain.consensus.EquivocationProof` as an ordinary signed
transaction — the contract re-verifies the proof from its own material,
burns the culprit's bond, and removes it from the active set.  Every
replica derives the Aura schedule from :meth:`active_validators` at each
epoch boundary, so misbehavior settles as a state transition visible in the
replayable chain history rather than a network-layer side effect.

Bond economics fold into the market's balance-conservation invariant:
escrowed deposits sit in the contract account, refunds leave it through
``transfer``, and burned bonds simply stay locked in the contract forever
(``total_burned`` accounts for them) — total supply is conserved.

Storage layout: ``index`` is the append-only join-order address list that
fixes the deterministic rotation order; ``validators`` is an entry-map of
per-validator records manipulated one entry at a time; aggregates
(``activeCount``, ``totalEscrowed``, ``totalBurned``, ``proofCount``) are
maintained as running counters, so every operation touches O(1) entries
except the epoch-boundary read, which is O(registry size) and read-only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.blockchain.consensus import EquivocationProof
from repro.contracts.base import SmartContract

STATUS_ACTIVE = "active"
STATUS_EXITING = "exiting"
STATUS_EXITED = "exited"
STATUS_SLASHED = "slashed"


class ValidatorRegistry(SmartContract):
    """Bonded validator lifecycle: join, leave (cool-down refund), slash."""

    def constructor(self, initial_validators: Optional[List[str]] = None,
                    bond_amount: int = 0, cooldown_blocks: int = 0, **_: Any) -> None:
        genesis = list(initial_validators or [])
        self.require(bool(genesis), "the registry needs at least one genesis validator")
        self.require(len(set(genesis)) == len(genesis), "duplicate genesis validators")
        self.require(int(bond_amount) >= 0, "bond_amount must be non-negative")
        self.require(int(cooldown_blocks) >= 0, "cooldown_blocks must be non-negative")
        # The deployer escrows the genesis bonds so slashing a genesis
        # validator burns real funds, same as any later joiner.
        self.require(
            self.msg_value == int(bond_amount) * len(genesis),
            "deployment must escrow one bond per genesis validator",
        )
        self.storage["operator"] = self.msg_sender
        self.storage["bondAmount"] = int(bond_amount)
        self.storage["cooldownBlocks"] = int(cooldown_blocks)
        self.storage["index"] = []
        self.storage["validators"] = {}
        self.storage["proofs"] = {}
        self.storage["activeCount"] = len(genesis)
        self.storage["totalEscrowed"] = int(bond_amount) * len(genesis)
        self.storage["totalBurned"] = 0
        self.storage["proofCount"] = 0
        for address in genesis:
            self.storage.append("index", address)
            self.storage.set_entry("validators", address, {
                "status": STATUS_ACTIVE,
                "bond": int(bond_amount),
                "joinedBlock": self.block_number,
                "exitBlock": None,
            })
            self.emit("ValidatorJoined", validator=address, bond=int(bond_amount))

    # -- lifecycle transitions ------------------------------------------------

    def join(self) -> Dict[str, Any]:
        """Escrow the bond and enter the active set at the next epoch boundary."""
        candidate = self.msg_sender
        bond = self.storage.get("bondAmount", 0)
        record = self.storage.get_entry("validators", candidate)
        self.require(
            record is None or record.get("status") == STATUS_EXITED,
            f"{candidate} is already registered",
        )
        self.require(self.msg_value == bond, f"joining requires a bond of exactly {bond}")
        if record is None:
            self.storage.append("index", candidate)
        fresh = {
            "status": STATUS_ACTIVE,
            "bond": bond,
            "joinedBlock": self.block_number,
            "exitBlock": None,
        }
        self.storage.set_entry("validators", candidate, fresh)
        self.storage["activeCount"] = self.storage.get("activeCount", 0) + 1
        self.storage["totalEscrowed"] = self.storage.get("totalEscrowed", 0) + bond
        self.emit("ValidatorJoined", validator=candidate, bond=bond)
        return fresh

    def leave(self) -> Dict[str, Any]:
        """Announce an exit: leave the rotation now, withdraw after cool-down."""
        leaver = self.msg_sender
        record = self.storage.get_entry("validators", leaver)
        self.require(
            record is not None and record.get("status") == STATUS_ACTIVE,
            f"{leaver} is not an active validator",
        )
        self.require(
            self.storage.get("activeCount", 0) > 1,
            "the last active validator cannot leave",
        )
        record["status"] = STATUS_EXITING
        record["exitBlock"] = self.block_number
        self.storage.set_entry("validators", leaver, record)
        self.storage["activeCount"] = self.storage.get("activeCount", 0) - 1
        self.emit("ValidatorLeft", validator=leaver, exitBlock=self.block_number)
        return record

    def withdraw(self) -> int:
        """Refund an exiting validator's bond once the cool-down elapsed."""
        claimant = self.msg_sender
        record = self.storage.get_entry("validators", claimant)
        self.require(
            record is not None and record.get("status") == STATUS_EXITING,
            f"{claimant} has no exit in progress",
        )
        cooldown = self.storage.get("cooldownBlocks", 0)
        unlocked_at = record.get("exitBlock", 0) + cooldown
        self.require(
            self.block_number >= unlocked_at,
            f"bond is locked until block {unlocked_at}",
        )
        amount = record.get("bond", 0)
        record["status"] = STATUS_EXITED
        record["bond"] = 0
        self.storage.set_entry("validators", claimant, record)
        self.storage["totalEscrowed"] = self.storage.get("totalEscrowed", 0) - amount
        if amount:
            self.transfer(claimant, amount)
        self.emit("BondWithdrawn", validator=claimant, amount=amount)
        return amount

    def slash(self, proof: Dict[str, Any]) -> Dict[str, Any]:
        """Settle an equivocation: verify the proof, burn the bond, remove the culprit.

        Anyone may submit: the proof is self-authenticating (both sealed
        headers carry genuine proposer signatures), so the contract trusts
        nothing about the submitter and re-checks every claim itself.
        """
        try:
            parsed = EquivocationProof.from_wire(proof)
        except (KeyError, TypeError, ValueError, AttributeError):
            parsed = None
        self.require(parsed is not None, "malformed equivocation proof")
        self.require(parsed.verify(), "equivocation proof fails verification")
        culprit = parsed.proposer
        record = self.storage.get_entry("validators", culprit)
        self.require(record is not None, f"{culprit} is not a registered validator")
        status = record.get("status")
        self.require(
            status in (STATUS_ACTIVE, STATUS_EXITING),
            f"{culprit} holds no slashable bond (status {status})",
        )
        proof_key = f"{parsed.height}:{culprit}"
        self.require(
            not self.storage.has_entry("proofs", proof_key),
            f"equivocation at height {parsed.height} by {culprit} is already settled",
        )
        bond = record.get("bond", 0)
        record["status"] = STATUS_SLASHED
        record["bond"] = 0
        self.storage.set_entry("validators", culprit, record)
        self.storage.set_entry("proofs", proof_key, parsed.to_wire())
        self.storage["proofCount"] = self.storage.get("proofCount", 0) + 1
        # Burned bonds stay locked in the contract account forever; the
        # aggregate keeps supply accounting auditable.
        self.storage["totalEscrowed"] = self.storage.get("totalEscrowed", 0) - bond
        self.storage["totalBurned"] = self.storage.get("totalBurned", 0) + bond
        if status == STATUS_ACTIVE:
            self.storage["activeCount"] = self.storage.get("activeCount", 0) - 1
        self.emit(
            "ValidatorSlashed",
            validator=culprit,
            height=parsed.height,
            bondBurned=bond,
        )
        return {"validator": culprit, "height": parsed.height, "bondBurned": bond}

    # -- reads (epoch-boundary schedule derivation and diagnostics) ------------

    def active_validators(self) -> List[str]:
        """The current active set in deterministic join order.

        Replicas call this read-only at every epoch boundary to derive the
        next rotation; join order is append-only, so every replica sees the
        identical list for identical state.
        """
        active: List[str] = []
        for position in range(self.storage.entry_count("index")):
            address = self.storage.get_item("index", position)
            record = self.storage.get_entry("validators", address)
            if record is not None and record.get("status") == STATUS_ACTIVE:
                active.append(address)
        return active

    def validator_info(self, address: str) -> Optional[Dict[str, Any]]:
        """Full lifecycle record of one validator (None when unknown)."""
        return self.storage.get_entry("validators", address)

    def slashing_proof(self, height: int, proposer: str) -> Optional[Dict[str, Any]]:
        """The settled proof for (height, proposer), wire form, or None."""
        return self.storage.get_entry("proofs", f"{int(height)}:{proposer}")

    def bond_amount(self) -> int:
        return self.storage.get("bondAmount", 0)

    def cooldown_blocks(self) -> int:
        return self.storage.get("cooldownBlocks", 0)

    def active_count(self) -> int:
        return self.storage.get("activeCount", 0)

    def total_escrowed(self) -> int:
        return self.storage.get("totalEscrowed", 0)

    def total_burned(self) -> int:
        return self.storage.get("totalBurned", 0)

    def proof_count(self) -> int:
        return self.storage.get("proofCount", 0)
