"""Smart-contract base class.

The execution model (metered storage, events, message context) lives in the
VM module; contracts import the base class from here so contract code never
depends on VM internals.
"""

from repro.blockchain.vm import SmartContract

__all__ = ["SmartContract"]
