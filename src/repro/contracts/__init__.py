"""Smart contracts deployed by the architecture.

Three contracts make up the on-chain side of the system:

* :class:`~repro.contracts.dist_exchange.DistExchangeApp` — the DE App of the
  paper: it records pod locations, resource metadata, and usage policies,
  tracks which consumers hold copies, orchestrates policy monitoring, and
  stores compliance evidence;
* :class:`~repro.contracts.market.DataMarket` — the decentralized data market
  of the motivating scenario: subscriptions, market-fee certificates, and
  remuneration of data owners;
* :class:`~repro.contracts.oracle_hub.OracleRequestHub` — the on-chain half of
  the pull-in oracle pattern: a request/response queue that off-chain
  providers watch and answer;
* :class:`~repro.contracts.validator_registry.ValidatorRegistry` — the
  validator lifecycle (bonded join, cool-down leave, proof-verified slash)
  from which every replica derives the PoA rotation at epoch boundaries.
"""

from repro.contracts.base import SmartContract
from repro.contracts.dist_exchange import DistExchangeApp
from repro.contracts.market import DataMarket
from repro.contracts.oracle_hub import OracleRequestHub
from repro.contracts.validator_registry import ValidatorRegistry

__all__ = [
    "SmartContract",
    "DistExchangeApp",
    "DataMarket",
    "OracleRequestHub",
    "ValidatorRegistry",
]
