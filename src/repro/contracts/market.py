"""The decentralized data market contract.

The motivating scenario (Section II) describes a market where consumers pay a
fee and obtain "a certificate proving [they have] paid the market fee", which
pod managers verify before serving a resource; Section V-4 sketches a
subscription-based business model that redistributes market profit to data
owners "proportionately to the accesses granted to their data".  This
contract implements that machinery:

* subscriptions paid in the chain's base currency;
* fee certificates issued per (consumer, resource) pair, verifiable by pod
  managers through a read-only call;
* an earnings ledger crediting owners for each certificate bought over their
  resources, with withdrawal of accumulated remuneration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.serialization import stable_hash
from repro.contracts.base import SmartContract


class DataMarket(SmartContract):
    """Subscriptions, market-fee certificates, and owner remuneration."""

    def constructor(self, subscription_fee: int = 100, access_fee: int = 10,
                    owner_share_percent: int = 80, **_: Any) -> None:
        self.require(0 <= owner_share_percent <= 100, "owner_share_percent must be within [0, 100]")
        self.storage["operator"] = self.msg_sender
        self.storage["subscription_fee"] = int(subscription_fee)
        self.storage["access_fee"] = int(access_fee)
        self.storage["owner_share_percent"] = int(owner_share_percent)
        self.storage["subscribers"] = {}
        self.storage["certificates"] = {}
        self.storage["earnings"] = {}
        self.storage["operator_earnings"] = 0
        self.storage["resource_owners"] = {}
        self.storage["access_counts"] = {}

    # -- configuration -------------------------------------------------------

    def get_fees(self) -> Dict[str, int]:
        """Return the current subscription and access fees."""
        return {
            "subscription_fee": self.storage.get("subscription_fee", 0),
            "access_fee": self.storage.get("access_fee", 0),
            "owner_share_percent": self.storage.get("owner_share_percent", 0),
        }

    def set_fees(self, subscription_fee: Optional[int] = None, access_fee: Optional[int] = None) -> Dict[str, int]:
        """Operator-only adjustment of the fee schedule."""
        self.require(self.msg_sender == self.storage.get("operator"), "only the operator may change fees")
        if subscription_fee is not None:
            self.require(subscription_fee >= 0, "subscription_fee must be non-negative")
            self.storage["subscription_fee"] = int(subscription_fee)
        if access_fee is not None:
            self.require(access_fee >= 0, "access_fee must be non-negative")
            self.storage["access_fee"] = int(access_fee)
        return self.get_fees()

    # -- registration of tradable resources ---------------------------------------

    def list_resource(self, resource_id: str, owner: str) -> str:
        """Associate a resource with the owner who should earn from its accesses."""
        self.require(bool(resource_id), "resource_id must be non-empty")
        self.require(bool(owner), "owner must be non-empty")
        owners = self.storage.get("resource_owners", {})
        owners[resource_id] = owner
        self.storage["resource_owners"] = owners
        self.emit("ResourceListed", resource_id=resource_id, owner=owner)
        return resource_id

    # -- subscriptions --------------------------------------------------------------

    def subscribe(self, account: Optional[str] = None) -> Dict[str, Any]:
        """Pay the subscription fee and become a market subscriber."""
        subscriber = account or self.msg_sender
        fee = self.storage.get("subscription_fee", 0)
        self.require(self.msg_value >= fee, f"subscription requires a payment of {fee}")
        subscribers = self.storage.get("subscribers", {})
        subscribers[subscriber] = {
            "since": self.block_timestamp,
            "paid": self.msg_value,
            "active": True,
        }
        self.storage["subscribers"] = subscribers
        self.storage["operator_earnings"] = self.storage.get("operator_earnings", 0) + self.msg_value
        self.emit("Subscribed", account=subscriber, paid=self.msg_value)
        return subscribers[subscriber]

    def is_subscribed(self, account: str) -> bool:
        """Return True when *account* holds an active subscription."""
        record = self.storage.get("subscribers", {}).get(account)
        return bool(record and record.get("active"))

    def cancel_subscription(self, account: Optional[str] = None) -> bool:
        """Deactivate a subscription (no refund)."""
        subscriber = account or self.msg_sender
        subscribers = self.storage.get("subscribers", {})
        record = subscribers.get(subscriber)
        self.require(record is not None, f"{subscriber} is not subscribed")
        record["active"] = False
        self.storage["subscribers"] = subscribers
        self.emit("SubscriptionCancelled", account=subscriber)
        return True

    # -- fee certificates --------------------------------------------------------------

    def purchase_certificate(self, resource_id: str, consumer: Optional[str] = None) -> Dict[str, Any]:
        """Pay the access fee and obtain a certificate for *resource_id*.

        The certificate identifier commits to the consumer, the resource, and
        the purchase time, so pod managers can verify it with a read-only
        call and detect forgeries.
        """
        buyer = consumer or self.msg_sender
        self.require(self.is_subscribed(buyer), f"{buyer} must be subscribed to the market")
        owners = self.storage.get("resource_owners", {})
        self.require(resource_id in owners, f"resource {resource_id} is not listed on the market")
        fee = self.storage.get("access_fee", 0)
        self.require(self.msg_value >= fee, f"access to {resource_id} requires a payment of {fee}")

        certificate_id = stable_hash(
            {
                "consumer": buyer,
                "resource_id": resource_id,
                "issued_at": self.block_timestamp,
                "nonce": len(self.storage.get("certificates", {})),
            }
        )
        certificate = {
            "certificate_id": certificate_id,
            "consumer": buyer,
            "resource_id": resource_id,
            "issued_at": self.block_timestamp,
            "fee_paid": self.msg_value,
            "revoked": False,
        }
        certificates = self.storage.get("certificates", {})
        certificates[certificate_id] = certificate
        self.storage["certificates"] = certificates

        # Split the fee between the resource owner and the market operator.
        owner = owners[resource_id]
        owner_share = self.msg_value * self.storage.get("owner_share_percent", 0) // 100
        earnings = self.storage.get("earnings", {})
        earnings[owner] = earnings.get(owner, 0) + owner_share
        self.storage["earnings"] = earnings
        self.storage["operator_earnings"] = (
            self.storage.get("operator_earnings", 0) + (self.msg_value - owner_share)
        )
        counts = self.storage.get("access_counts", {})
        counts[resource_id] = counts.get(resource_id, 0) + 1
        self.storage["access_counts"] = counts

        self.emit(
            "CertificateIssued",
            certificate_id=certificate_id,
            consumer=buyer,
            resource_id=resource_id,
        )
        return certificate

    def verify_certificate(self, certificate_id: str, consumer: str, resource_id: str) -> bool:
        """Check that a certificate exists, matches, and has not been revoked."""
        certificate = self.storage.get("certificates", {}).get(certificate_id)
        if certificate is None:
            return False
        return (
            certificate["consumer"] == consumer
            and certificate["resource_id"] == resource_id
            and not certificate["revoked"]
        )

    def revoke_certificate(self, certificate_id: str) -> bool:
        """Operator-only revocation of a previously issued certificate."""
        self.require(self.msg_sender == self.storage.get("operator"), "only the operator may revoke certificates")
        certificates = self.storage.get("certificates", {})
        self.require(certificate_id in certificates, f"unknown certificate {certificate_id}")
        certificates[certificate_id]["revoked"] = True
        self.storage["certificates"] = certificates
        self.emit("CertificateRevoked", certificate_id=certificate_id)
        return True

    # -- remuneration --------------------------------------------------------------------

    def earnings_of(self, owner: str) -> int:
        """Accumulated, not-yet-withdrawn earnings of a data owner."""
        return self.storage.get("earnings", {}).get(owner, 0)

    def access_count(self, resource_id: str) -> int:
        """Number of certificates purchased for a resource."""
        return self.storage.get("access_counts", {}).get(resource_id, 0)

    def withdraw_earnings(self, owner: Optional[str] = None) -> int:
        """Transfer an owner's accumulated earnings to their account."""
        beneficiary = owner or self.msg_sender
        self.require(beneficiary == self.msg_sender, "owners may only withdraw their own earnings")
        earnings = self.storage.get("earnings", {})
        amount = earnings.get(beneficiary, 0)
        self.require(amount > 0, "nothing to withdraw")
        earnings[beneficiary] = 0
        self.storage["earnings"] = earnings
        self.transfer(beneficiary, amount)
        self.emit("EarningsWithdrawn", owner=beneficiary, amount=amount)
        return amount

    def market_statistics(self) -> Dict[str, Any]:
        """Aggregate figures used by the affordability benchmark."""
        return {
            "subscribers": len(self.storage.get("subscribers", {})),
            "certificates": len(self.storage.get("certificates", {})),
            "listed_resources": len(self.storage.get("resource_owners", {})),
            "operator_earnings": self.storage.get("operator_earnings", 0),
            "total_owner_earnings": sum(self.storage.get("earnings", {}).values()),
        }
