"""The decentralized data market contract.

The motivating scenario (Section II) describes a market where consumers pay a
fee and obtain "a certificate proving [they have] paid the market fee", which
pod managers verify before serving a resource; Section V-4 sketches a
subscription-based business model that redistributes market profit to data
owners "proportionately to the accesses granted to their data".  This
contract implements that machinery:

* subscriptions paid in the chain's base currency;
* fee certificates issued per (consumer, resource) pair, verifiable by pod
  managers through a read-only call;
* an earnings ledger crediting owners for each certificate bought over their
  resources, with withdrawal of accumulated remuneration.

Storage layout: certificates live in per-entity ``certificate:{id}`` slots;
subscribers, resource owners, earnings, and access counts are mappings
manipulated one entry at a time (``set_entry`` / ``get_entry``), and the
figures :meth:`market_statistics` reports are maintained as running
aggregates — so every market operation touches O(1) entries no matter how
many subscribers or certificates the market has accumulated.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.common.serialization import stable_hash
from repro.contracts.base import SmartContract


class DataMarket(SmartContract):
    """Subscriptions, market-fee certificates, and owner remuneration."""

    def constructor(self, subscription_fee: int = 100, access_fee: int = 10,
                    owner_share_percent: int = 80, **_: Any) -> None:
        self.require(0 <= owner_share_percent <= 100, "owner_share_percent must be within [0, 100]")
        self.storage["operator"] = self.msg_sender
        self.storage["subscription_fee"] = int(subscription_fee)
        self.storage["access_fee"] = int(access_fee)
        self.storage["owner_share_percent"] = int(owner_share_percent)
        self.storage["subscribers"] = {}
        self.storage["certificate_index"] = {}
        self.storage["earnings"] = {}
        self.storage["operator_earnings"] = 0
        self.storage["resource_owners"] = {}
        self.storage["access_counts"] = {}
        # Running aggregates behind market_statistics().
        self.storage["subscriber_count"] = 0
        self.storage["certificate_count"] = 0
        self.storage["listed_count"] = 0
        self.storage["outstanding_owner_earnings"] = 0

    # -- configuration -------------------------------------------------------

    def get_fees(self) -> Dict[str, int]:
        """Return the current subscription and access fees."""
        return {
            "subscription_fee": self.storage.get("subscription_fee", 0),
            "access_fee": self.storage.get("access_fee", 0),
            "owner_share_percent": self.storage.get("owner_share_percent", 0),
        }

    def set_fees(self, subscription_fee: Optional[int] = None, access_fee: Optional[int] = None) -> Dict[str, int]:
        """Operator-only adjustment of the fee schedule."""
        self.require(self.msg_sender == self.storage.get("operator"), "only the operator may change fees")
        if subscription_fee is not None:
            self.require(subscription_fee >= 0, "subscription_fee must be non-negative")
            self.storage["subscription_fee"] = int(subscription_fee)
        if access_fee is not None:
            self.require(access_fee >= 0, "access_fee must be non-negative")
            self.storage["access_fee"] = int(access_fee)
        return self.get_fees()

    # -- registration of tradable resources ---------------------------------------

    def list_resource(self, resource_id: str, owner: str) -> str:
        """Associate a resource with the owner who should earn from its accesses."""
        self.require(bool(resource_id), "resource_id must be non-empty")
        self.require(bool(owner), "owner must be non-empty")
        is_new = self.storage.set_entry("resource_owners", resource_id, owner)
        if is_new:
            self.storage["listed_count"] = self.storage.get("listed_count", 0) + 1
        self.emit("ResourceListed", resource_id=resource_id, owner=owner)
        return resource_id

    # -- subscriptions --------------------------------------------------------------

    def subscribe(self, account: Optional[str] = None) -> Dict[str, Any]:
        """Pay the subscription fee and become a market subscriber."""
        subscriber = account or self.msg_sender
        fee = self.storage.get("subscription_fee", 0)
        self.require(self.msg_value >= fee, f"subscription requires a payment of {fee}")
        record = {
            "since": self.block_timestamp,
            "paid": self.msg_value,
            "active": True,
        }
        is_new = self.storage.set_entry("subscribers", subscriber, record)
        if is_new:
            self.storage["subscriber_count"] = self.storage.get("subscriber_count", 0) + 1
        self.storage["operator_earnings"] = self.storage.get("operator_earnings", 0) + self.msg_value
        self.emit("Subscribed", account=subscriber, paid=self.msg_value)
        return record

    def is_subscribed(self, account: str) -> bool:
        """Return True when *account* holds an active subscription."""
        record = self.storage.get_entry("subscribers", account)
        return bool(record and record.get("active"))

    def cancel_subscription(self, account: Optional[str] = None) -> bool:
        """Deactivate a subscription (no refund)."""
        subscriber = account or self.msg_sender
        record = self.storage.get_entry("subscribers", subscriber)
        self.require(record is not None, f"{subscriber} is not subscribed")
        record["active"] = False
        self.storage.set_entry("subscribers", subscriber, record)
        self.emit("SubscriptionCancelled", account=subscriber)
        return True

    # -- fee certificates --------------------------------------------------------------

    def purchase_certificate(self, resource_id: str, consumer: Optional[str] = None) -> Dict[str, Any]:
        """Pay the access fee and obtain a certificate for *resource_id*.

        The certificate identifier commits to the consumer, the resource, and
        the purchase time, so pod managers can verify it with a read-only
        call and detect forgeries.
        """
        buyer = consumer or self.msg_sender
        self.require(self.is_subscribed(buyer), f"{buyer} must be subscribed to the market")
        owner = self.storage.get_entry("resource_owners", resource_id)
        self.require(owner is not None, f"resource {resource_id} is not listed on the market")
        fee = self.storage.get("access_fee", 0)
        self.require(self.msg_value >= fee, f"access to {resource_id} requires a payment of {fee}")

        issued = self.storage.get("certificate_count", 0)
        certificate_id = stable_hash(
            {
                "consumer": buyer,
                "resource_id": resource_id,
                "issued_at": self.block_timestamp,
                "nonce": issued,
            }
        )
        certificate = {
            "certificate_id": certificate_id,
            "consumer": buyer,
            "resource_id": resource_id,
            "issued_at": self.block_timestamp,
            "fee_paid": self.msg_value,
            "revoked": False,
        }
        self.storage[f"certificate:{certificate_id}"] = certificate
        self.storage.set_entry("certificate_index", certificate_id, True)
        self.storage["certificate_count"] = issued + 1

        # Split the fee between the resource owner and the market operator.
        owner_share = self.msg_value * self.storage.get("owner_share_percent", 0) // 100
        self.storage.set_entry(
            "earnings", owner, self.storage.get_entry("earnings", owner, 0) + owner_share
        )
        self.storage["outstanding_owner_earnings"] = (
            self.storage.get("outstanding_owner_earnings", 0) + owner_share
        )
        self.storage["operator_earnings"] = (
            self.storage.get("operator_earnings", 0) + (self.msg_value - owner_share)
        )
        self.storage.set_entry(
            "access_counts", resource_id, self.storage.get_entry("access_counts", resource_id, 0) + 1
        )

        self.emit(
            "CertificateIssued",
            certificate_id=certificate_id,
            consumer=buyer,
            resource_id=resource_id,
        )
        return certificate

    def verify_certificate(self, certificate_id: str, consumer: str, resource_id: str) -> bool:
        """Check that a certificate exists, matches, and has not been revoked."""
        certificate = self.storage.get(f"certificate:{certificate_id}")
        if certificate is None:
            return False
        return (
            certificate["consumer"] == consumer
            and certificate["resource_id"] == resource_id
            and not certificate["revoked"]
        )

    def revoke_certificate(self, certificate_id: str) -> bool:
        """Operator-only revocation of a previously issued certificate."""
        self.require(self.msg_sender == self.storage.get("operator"), "only the operator may revoke certificates")
        certificate = self.storage.get(f"certificate:{certificate_id}")
        self.require(certificate is not None, f"unknown certificate {certificate_id}")
        self.storage.set_entry(f"certificate:{certificate_id}", "revoked", True)
        self.emit("CertificateRevoked", certificate_id=certificate_id)
        return True

    # -- remuneration --------------------------------------------------------------------

    def earnings_of(self, owner: str) -> int:
        """Accumulated, not-yet-withdrawn earnings of a data owner."""
        return self.storage.get_entry("earnings", owner, 0)

    def access_count(self, resource_id: str) -> int:
        """Number of certificates purchased for a resource."""
        return self.storage.get_entry("access_counts", resource_id, 0)

    def withdraw_earnings(self, owner: Optional[str] = None) -> int:
        """Transfer an owner's accumulated earnings to their account."""
        beneficiary = owner or self.msg_sender
        self.require(beneficiary == self.msg_sender, "owners may only withdraw their own earnings")
        amount = self.storage.get_entry("earnings", beneficiary, 0)
        self.require(amount > 0, "nothing to withdraw")
        self.storage.set_entry("earnings", beneficiary, 0)
        self.storage["outstanding_owner_earnings"] = (
            self.storage.get("outstanding_owner_earnings", 0) - amount
        )
        self.transfer(beneficiary, amount)
        self.emit("EarningsWithdrawn", owner=beneficiary, amount=amount)
        return amount

    def market_statistics(self) -> Dict[str, Any]:
        """Aggregate figures used by the affordability benchmark (all O(1))."""
        return {
            "subscribers": self.storage.get("subscriber_count", 0),
            "certificates": self.storage.get("certificate_count", 0),
            "listed_resources": self.storage.get("listed_count", 0),
            "operator_earnings": self.storage.get("operator_earnings", 0),
            "total_owner_earnings": self.storage.get("outstanding_owner_earnings", 0),
        }

    # -- legacy-layout migration ---------------------------------------------------------

    def migrate_storage(self) -> Dict[str, int]:
        """One-shot conversion of the pre-composite (monolithic ``certificates``) layout.

        Splits every certificate into its ``certificate:{id}`` slot and
        seeds the running aggregates behind :meth:`market_statistics` from
        the legacy mappings (which keep their slot names — the per-entry
        operations work on them unchanged).  Operator-only; idempotent.
        """
        self.require(
            self.msg_sender == self.storage.get("operator"),
            "only the operator may migrate storage",
        )
        migrated = {"certificates": 0}
        certificates = self.storage.get("certificates")
        if certificates is not None:
            # One-shot, operator-only conversion of the bounded legacy
            # layout — intentionally O(legacy certificates).
            for certificate_id, certificate in sorted(certificates.items()):  # chainlint: disable=GAS001
                self.storage[f"certificate:{certificate_id}"] = certificate
                self.storage.set_entry("certificate_index", certificate_id, True)
                migrated["certificates"] += 1
            del self.storage["certificates"]
            # Seed the running aggregates (kept up to date incrementally
            # from here on; the legacy certificate-id nonce was
            # len(certificates), which certificate_count continues).
            self.storage["subscriber_count"] = len(self.storage.get("subscribers", {}))
            self.storage["certificate_count"] = migrated["certificates"]
            self.storage["listed_count"] = len(self.storage.get("resource_owners", {}))
            self.storage["outstanding_owner_earnings"] = sum(
                self.storage.get("earnings", {}).values()
            )
        self.emit("StorageMigrated", **migrated)
        return migrated
