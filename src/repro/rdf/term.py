"""RDF terms: IRIs, literals, and blank nodes.

Terms are immutable value objects; equality and hashing follow RDF 1.1
semantics (literals compare by lexical form, datatype, and language tag).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union

from repro.common.errors import ValidationError
from repro.common.identifiers import short_id


class IRI:
    """An absolute or relative IRI reference."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not isinstance(value, str) or not value:
            raise ValidationError("IRI value must be a non-empty string")
        if any(ch in value for ch in (" ", "<", ">", '"')):
            raise ValidationError(f"IRI contains forbidden characters: {value!r}")
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("IRI", self.value))

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """Return the N3/Turtle representation ``<iri>``."""
        return f"<{self.value}>"


class Literal:
    """An RDF literal with optional datatype IRI or language tag."""

    __slots__ = ("value", "datatype", "language")

    def __init__(self, value: Union[str, int, float, bool], datatype: Optional[IRI] = None,
                 language: Optional[str] = None):
        if datatype is not None and language is not None:
            raise ValidationError("a literal cannot carry both a datatype and a language tag")
        # Native Python values are converted to their canonical lexical form
        # and tagged with the matching XSD datatype.
        if isinstance(value, bool):
            self.value = "true" if value else "false"
            datatype = datatype or IRI("http://www.w3.org/2001/XMLSchema#boolean")
        elif isinstance(value, int):
            self.value = str(value)
            datatype = datatype or IRI("http://www.w3.org/2001/XMLSchema#integer")
        elif isinstance(value, float):
            self.value = repr(value)
            datatype = datatype or IRI("http://www.w3.org/2001/XMLSchema#double")
        elif isinstance(value, str):
            self.value = value
        else:
            raise ValidationError(f"unsupported literal value type: {type(value).__name__}")
        self.datatype = datatype
        self.language = language

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert back to a native Python value based on the datatype."""
        if self.datatype is None:
            return self.value
        dt = self.datatype.value
        if dt.endswith("#integer") or dt.endswith("#int") or dt.endswith("#long"):
            return int(self.value)
        if dt.endswith("#double") or dt.endswith("#decimal") or dt.endswith("#float"):
            return float(self.value)
        if dt.endswith("#boolean"):
            return self.value == "true"
        return self.value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.value == self.value
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.value, self.datatype, self.language))

    def __repr__(self) -> str:
        return f"Literal({self.value!r}, datatype={self.datatype!r}, language={self.language!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """Return the N3/Turtle representation of the literal."""
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        rendered = f'"{escaped}"'
        if self.language:
            return f"{rendered}@{self.language}"
        if self.datatype:
            return f"{rendered}^^{self.datatype.n3()}"
        return rendered


class BlankNode:
    """An RDF blank node with a local identifier."""

    __slots__ = ("identifier",)

    def __init__(self, identifier: Optional[str] = None):
        self.identifier = identifier if identifier else f"b{short_id()}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and other.identifier == self.identifier

    def __hash__(self) -> int:
        return hash(("BlankNode", self.identifier))

    def __repr__(self) -> str:
        return f"BlankNode({self.identifier!r})"

    def n3(self) -> str:
        """Return the N3/Turtle representation ``_:id``."""
        return f"_:{self.identifier}"


Term = Union[IRI, Literal, BlankNode]


class Triple(NamedTuple):
    """A subject/predicate/object statement."""

    subject: Union[IRI, BlankNode]
    predicate: IRI
    object: Term

    def n3(self) -> str:
        """Return the statement in N-Triples-like syntax (without final dot)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()}"


def ensure_subject(term: Term) -> Union[IRI, BlankNode]:
    """Validate that *term* may appear in the subject position."""
    if isinstance(term, (IRI, BlankNode)):
        return term
    raise ValidationError("triple subjects must be IRIs or blank nodes")


def ensure_predicate(term: Term) -> IRI:
    """Validate that *term* may appear in the predicate position."""
    if isinstance(term, IRI):
        return term
    raise ValidationError("triple predicates must be IRIs")
