"""Minimal RDF / Linked Data core.

Solid is built on Linked Data: pod resources, WebID profiles, access-control
documents, and usage policies are all RDF graphs.  The reproduction cannot
rely on ``rdflib`` (not available offline here), so this package implements
the small subset of RDF the architecture needs:

* terms (:class:`IRI`, :class:`Literal`, :class:`BlankNode`),
* an indexed triple store (:class:`Graph`) with pattern matching,
* well-known namespaces (:mod:`repro.rdf.namespace`),
* a Turtle-like serializer/parser (:mod:`repro.rdf.turtle`),
* a tiny basic-graph-pattern query engine (:mod:`repro.rdf.query`).
"""

from repro.rdf.term import IRI, Literal, BlankNode, Term, Triple
from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace, RDF, RDFS, XSD, FOAF, LDP, ACL, ODRL, SOLID, DCTERMS
from repro.rdf.turtle import serialize_turtle, parse_turtle
from repro.rdf.query import TriplePattern, Variable, query

__all__ = [
    "IRI",
    "Literal",
    "BlankNode",
    "Term",
    "Triple",
    "Graph",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "FOAF",
    "LDP",
    "ACL",
    "ODRL",
    "SOLID",
    "DCTERMS",
    "serialize_turtle",
    "parse_turtle",
    "TriplePattern",
    "Variable",
    "query",
]
