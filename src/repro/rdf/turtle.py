"""Turtle-like serialization.

Pods exchange RDF documents; a compact text serialization makes resources
inspectable in examples and lets the pod server store documents as text.  The
dialect supported here is a deliberately small Turtle subset:

* ``@prefix`` declarations,
* one statement per ``.``-terminated clause, with ``;`` predicate lists,
* IRIs in angle brackets or ``prefix:local`` form,
* plain, language-tagged, and datatyped string literals, integers, decimals,
  and booleans,
* blank node labels (``_:b1``).

That subset round-trips every graph the reproduction produces.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.rdf.graph import Graph
from repro.rdf.namespace import WELL_KNOWN_PREFIXES, Namespace, XSD
from repro.rdf.term import BlankNode, IRI, Literal, Term


def serialize_turtle(graph: Graph, prefixes: Optional[Dict[str, Namespace]] = None) -> str:
    """Serialize *graph* into the Turtle subset described above."""
    prefixes = dict(WELL_KNOWN_PREFIXES if prefixes is None else prefixes)
    used: Dict[str, Namespace] = {}

    def shorten(term: Term) -> str:
        if isinstance(term, IRI):
            for prefix, namespace in prefixes.items():
                if term in namespace and _is_local_name(namespace.local_name(term)):
                    used[prefix] = namespace
                    return f"{prefix}:{namespace.local_name(term)}"
            return term.n3()
        return term.n3()

    body_lines: List[str] = []
    by_subject: Dict[Term, List[Tuple[str, str]]] = {}
    subject_order: List[Term] = []
    for triple in graph:
        if triple.subject not in by_subject:
            by_subject[triple.subject] = []
            subject_order.append(triple.subject)
        by_subject[triple.subject].append((shorten(triple.predicate), shorten(triple.object)))

    for subject in sorted(subject_order, key=lambda term: term.n3()):
        rendered_subject = shorten(subject)
        pairs = sorted(by_subject[subject])
        clauses = [f"    {predicate} {obj}" for predicate, obj in pairs]
        body_lines.append(rendered_subject + "\n" + " ;\n".join(clauses) + " .")

    header_lines = [
        f"@prefix {prefix}: <{namespace.prefix}> ."
        for prefix, namespace in sorted(used.items())
    ]
    sections = []
    if header_lines:
        sections.append("\n".join(header_lines))
    if body_lines:
        sections.append("\n\n".join(body_lines))
    return "\n\n".join(sections) + ("\n" if sections else "")


def _is_local_name(name: str) -> bool:
    """Only abbreviate IRIs whose local part is a simple identifier-like token."""
    return bool(re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.-]*", name))


# -- parsing ----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<iri><[^>]*>)
  | (?P<string>"(?:[^"\\]|\\.)*"(?:@[A-Za-z-]+|\^\^<[^>]*>|\^\^[A-Za-z_][\w.-]*:[\w.-]+)?)
  | (?P<bnode>_:[A-Za-z0-9_]+)
  | (?P<prefixed>[A-Za-z_][\w.-]*:[\w.-]*)
  | (?P<keyword>@prefix|@base|\ba\b)
  | (?P<number>[-+]?\d+(?:\.\d+)?)
  | (?P<boolean>\btrue\b|\bfalse\b)
  | (?P<punct>[.;,])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    # Strip comments (a '#' outside of an IRI or string starts a comment).
    cleaned_lines = []
    for line in text.splitlines():
        cleaned_lines.append(_strip_comment(line))
    cleaned = "\n".join(cleaned_lines)
    for match in _TOKEN_RE.finditer(cleaned):
        tokens.append(match.group(0))
    return tokens


def _strip_comment(line: str) -> str:
    in_iri = False
    in_string = False
    result = []
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and not in_iri:
            in_string = not in_string
        elif ch == "<" and not in_string:
            in_iri = True
        elif ch == ">" and not in_string:
            in_iri = False
        elif ch == "#" and not in_string and not in_iri:
            break
        result.append(ch)
        i += 1
    return "".join(result)


def parse_turtle(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse the Turtle subset back into a :class:`Graph`."""
    graph = graph if graph is not None else Graph()
    prefixes: Dict[str, str] = {}
    tokens = _tokenize(text)
    i = 0

    def resolve(token: str) -> Term:
        if token.startswith("<") and token.endswith(">"):
            return IRI(token[1:-1])
        if token.startswith("_:"):
            return BlankNode(token[2:])
        if token == "a":
            return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        if token.startswith('"'):
            return _parse_literal(token, prefixes)
        if token in ("true", "false"):
            return Literal(token == "true")
        if re.fullmatch(r"[-+]?\d+", token):
            return Literal(int(token))
        if re.fullmatch(r"[-+]?\d+\.\d+", token):
            return Literal(float(token))
        if ":" in token:
            prefix, _, local = token.partition(":")
            if prefix not in prefixes:
                raise ValidationError(f"unknown prefix {prefix!r} in Turtle document")
            return IRI(prefixes[prefix] + local)
        raise ValidationError(f"cannot interpret Turtle token {token!r}")

    while i < len(tokens):
        token = tokens[i]
        if token == "@prefix":
            prefix_token = tokens[i + 1]
            iri_token = tokens[i + 2]
            if not prefix_token.endswith(":") and ":" in prefix_token:
                prefix_token = prefix_token.split(":")[0] + ":"
            prefixes[prefix_token.rstrip(":")] = iri_token[1:-1]
            # Skip trailing '.'
            i += 3
            if i < len(tokens) and tokens[i] == ".":
                i += 1
            continue
        # Statement: subject predicate object (; predicate object)* .
        subject = resolve(token)
        i += 1
        while True:
            predicate = resolve(tokens[i])
            obj = resolve(tokens[i + 1])
            if not isinstance(predicate, IRI):
                raise ValidationError("predicates must be IRIs")
            graph.add(subject, predicate, obj)  # type: ignore[arg-type]
            i += 2
            if i >= len(tokens):
                break
            if tokens[i] == ";":
                i += 1
                # Allow a dangling ';' before the final '.'
                if tokens[i] == ".":
                    i += 1
                    break
                continue
            if tokens[i] == ".":
                i += 1
                break
            raise ValidationError(f"unexpected token {tokens[i]!r} in Turtle statement")
    return graph


def _parse_literal(token: str, prefixes: Dict[str, str]) -> Literal:
    match = re.match(r'^"((?:[^"\\]|\\.)*)"', token)
    if match is None:
        raise ValidationError(f"malformed literal token {token!r}")
    raw = match.group(1)
    value = raw.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    rest = token[match.end():]
    if rest.startswith("@"):
        return Literal(value, language=rest[1:])
    if rest.startswith("^^<"):
        return Literal(value, datatype=IRI(rest[3:-1]))
    if rest.startswith("^^"):
        prefix, _, local = rest[2:].partition(":")
        if prefix not in prefixes:
            # The XSD prefix is so common it is resolved even if undeclared.
            if prefix == "xsd":
                return Literal(value, datatype=XSD.term(local))
            raise ValidationError(f"unknown prefix {prefix!r} in literal datatype")
        return Literal(value, datatype=IRI(prefixes[prefix] + local))
    return Literal(value)
