"""Basic graph pattern matching.

A miniature SPARQL-like engine supporting conjunctive triple patterns with
variables.  The Solid substrate uses it to evaluate WAC authorizations and
the policy engine uses it to pull policy structures out of RDF documents.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.rdf.graph import Graph
from repro.rdf.term import BlankNode, IRI, Literal, Term


class Variable:
    """A named variable usable in any position of a triple pattern."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Variable, IRI, Literal, BlankNode, None]
Binding = Dict[str, Term]


class TriplePattern:
    """One triple pattern; ``None`` or a :class:`Variable` acts as a wildcard."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: PatternTerm, predicate: PatternTerm, obj: PatternTerm):
        self.subject = subject
        self.predicate = predicate
        self.object = obj

    def terms(self) -> Sequence[PatternTerm]:
        return (self.subject, self.predicate, self.object)

    def __repr__(self) -> str:
        return f"TriplePattern({self.subject!r}, {self.predicate!r}, {self.object!r})"


def _resolve(term: PatternTerm, binding: Binding) -> Optional[Term]:
    """Return the concrete term for a pattern position, if determined."""
    if term is None:
        return None
    if isinstance(term, Variable):
        return binding.get(term.name)
    return term


def _match_pattern(graph: Graph, pattern: TriplePattern, binding: Binding) -> Iterator[Binding]:
    subject = _resolve(pattern.subject, binding)
    predicate = _resolve(pattern.predicate, binding)
    obj = _resolve(pattern.object, binding)
    for triple in graph.triples(subject, predicate, obj):  # type: ignore[arg-type]
        extended = dict(binding)
        consistent = True
        for position, value in zip(pattern.terms(), triple):
            if isinstance(position, Variable):
                bound = extended.get(position.name)
                if bound is None:
                    extended[position.name] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def query(graph: Graph, patterns: Iterable[TriplePattern]) -> List[Binding]:
    """Evaluate a conjunction of triple patterns and return variable bindings.

    The result is a list of dictionaries mapping variable names to terms; an
    empty pattern list yields a single empty binding (the neutral element).
    """
    bindings: List[Binding] = [{}]
    for pattern in patterns:
        next_bindings: List[Binding] = []
        for binding in bindings:
            next_bindings.extend(_match_pattern(graph, pattern, binding))
        bindings = next_bindings
        if not bindings:
            break
    return bindings


def ask(graph: Graph, patterns: Iterable[TriplePattern]) -> bool:
    """Return True when the conjunction of patterns has at least one solution."""
    return bool(query(graph, patterns))
