"""Well-known RDF namespaces used across the Solid and policy layers."""

from __future__ import annotations

from repro.rdf.term import IRI


class Namespace:
    """Factory of IRIs sharing a common prefix.

    Example::

        EX = Namespace("https://example.org/")
        EX.alice          # IRI("https://example.org/alice")
        EX["data set"]    # item access for names that are not identifiers
    """

    def __init__(self, prefix: str):
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self.prefix = prefix

    def term(self, name: str) -> IRI:
        return IRI(f"{self.prefix}{name}")

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.prefix)

    def local_name(self, iri: IRI) -> str:
        """Return the part of *iri* after this namespace's prefix."""
        if iri not in self:
            raise ValueError(f"{iri} is not in namespace {self.prefix}")
        return iri.value[len(self.prefix):]

    def __repr__(self) -> str:
        return f"Namespace({self.prefix!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")

# Linked Data Platform vocabulary: Solid pods organize resources in LDP
# containers.
LDP = Namespace("http://www.w3.org/ns/ldp#")

# Web Access Control vocabulary: Solid's access-control lists.
ACL = Namespace("http://www.w3.org/ns/auth/acl#")

# ODRL vocabulary: the usage-policy model borrows its permission /
# prohibition / duty structure from ODRL 2.2.
ODRL = Namespace("http://www.w3.org/ns/odrl/2/")

# Solid terms (pods, storage, oidcIssuer, ...).
SOLID = Namespace("http://www.w3.org/ns/solid/terms#")

# Namespace of this reproduction for architecture-specific terms
# (usage evidence, attestation quotes, market certificates).
REPRO = Namespace("https://w3id.org/repro/usage-control#")

WELL_KNOWN_PREFIXES = {
    "rdf": RDF,
    "rdfs": RDFS,
    "xsd": XSD,
    "foaf": FOAF,
    "dcterms": DCTERMS,
    "ldp": LDP,
    "acl": ACL,
    "odrl": ODRL,
    "solid": SOLID,
    "repro": REPRO,
}
