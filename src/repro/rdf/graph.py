"""Indexed triple store.

The graph keeps three hash indexes (by subject, predicate, and object) so the
pattern matching used by the pod manager's ACL checks and the policy engine
stays fast even when pods hold thousands of triples.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set, Union

from repro.common.errors import ValidationError
from repro.rdf.term import BlankNode, IRI, Literal, Term, Triple, ensure_predicate, ensure_subject

SubjectTerm = Union[IRI, BlankNode]


class Graph:
    """A mutable set of RDF triples with subject/predicate/object indexes."""

    def __init__(self, identifier: Optional[IRI] = None):
        self.identifier = identifier
        self._triples: Set[Triple] = set()
        self._by_subject: Dict[SubjectTerm, Set[Triple]] = defaultdict(set)
        self._by_predicate: Dict[IRI, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Term, Set[Triple]] = defaultdict(set)

    # -- mutation ---------------------------------------------------------

    def add(self, subject: SubjectTerm, predicate: IRI, obj: Term) -> Triple:
        """Add one triple; adding an existing triple is a no-op."""
        triple = Triple(ensure_subject(subject), ensure_predicate(predicate), self._ensure_object(obj))
        if triple not in self._triples:
            self._triples.add(triple)
            self._by_subject[triple.subject].add(triple)
            self._by_predicate[triple.predicate].add(triple)
            self._by_object[triple.object].add(triple)
        return triple

    def add_triple(self, triple: Triple) -> Triple:
        """Add an already-constructed :class:`Triple`."""
        return self.add(triple.subject, triple.predicate, triple.object)

    def remove(self, subject: Optional[SubjectTerm] = None, predicate: Optional[IRI] = None,
               obj: Optional[Term] = None) -> int:
        """Remove every triple matching the (possibly wildcard) pattern.

        Returns the number of triples removed.
        """
        to_remove = list(self.triples(subject, predicate, obj))
        for triple in to_remove:
            self._triples.discard(triple)
            self._by_subject[triple.subject].discard(triple)
            self._by_predicate[triple.predicate].discard(triple)
            self._by_object[triple.object].discard(triple)
        return len(to_remove)

    def set_value(self, subject: SubjectTerm, predicate: IRI, obj: Term) -> Triple:
        """Replace any existing (subject, predicate, *) triples with one value."""
        self.remove(subject, predicate, None)
        return self.add(subject, predicate, obj)

    def update(self, triples: Iterable[Triple]) -> None:
        """Add every triple from an iterable."""
        for triple in triples:
            self.add_triple(triple)

    def clear(self) -> None:
        """Remove every triple."""
        self._triples.clear()
        self._by_subject.clear()
        self._by_predicate.clear()
        self._by_object.clear()

    # -- queries ----------------------------------------------------------

    def triples(self, subject: Optional[SubjectTerm] = None, predicate: Optional[IRI] = None,
                obj: Optional[Term] = None) -> Iterator[Triple]:
        """Iterate over triples matching the pattern; ``None`` is a wildcard."""
        candidates: Iterable[Triple]
        if subject is not None:
            candidates = self._by_subject.get(subject, set())
        elif predicate is not None:
            candidates = self._by_predicate.get(predicate, set())
        elif obj is not None:
            candidates = self._by_object.get(obj, set())
        else:
            candidates = self._triples
        for triple in list(candidates):
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def value(self, subject: SubjectTerm, predicate: IRI, default: Optional[Term] = None) -> Optional[Term]:
        """Return one object for (subject, predicate) or *default* if absent."""
        for triple in self.triples(subject, predicate, None):
            return triple.object
        return default

    def objects(self, subject: SubjectTerm, predicate: IRI) -> Iterator[Term]:
        """Iterate over every object of (subject, predicate, *)."""
        for triple in self.triples(subject, predicate, None):
            yield triple.object

    def subjects(self, predicate: Optional[IRI] = None, obj: Optional[Term] = None) -> Iterator[SubjectTerm]:
        """Iterate over distinct subjects matching (*, predicate, obj)."""
        seen: Set[SubjectTerm] = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def has(self, subject: Optional[SubjectTerm] = None, predicate: Optional[IRI] = None,
            obj: Optional[Term] = None) -> bool:
        """Return True if at least one triple matches the pattern."""
        for _ in self.triples(subject, predicate, obj):
            return True
        return False

    # -- set-like protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __eq__(self, other: object) -> bool:
        # Graph equality here is naive set equality; blank-node isomorphism is
        # out of scope because the architecture never compares graphs that
        # way.
        return isinstance(other, Graph) and other._triples == self._triples

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and unhashable")

    def copy(self) -> "Graph":
        """Return a shallow copy containing the same triples."""
        clone = Graph(self.identifier)
        clone.update(self._triples)
        return clone

    def __ior__(self, other: "Graph") -> "Graph":
        self.update(other)
        return self

    def __or__(self, other: "Graph") -> "Graph":
        merged = self.copy()
        merged.update(other)
        return merged

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _ensure_object(obj: Term) -> Term:
        if isinstance(obj, (IRI, BlankNode, Literal)):
            return obj
        raise ValidationError("triple objects must be IRIs, blank nodes, or literals")
