"""Ready-made policy templates.

The motivating scenario uses two archetypal policies: a retention policy
("delete one month after storage") and a purpose policy ("use only for
medical purposes").  These constructors build them, so the examples, tests,
and benchmarks never assemble constraint trees by hand.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.policy.model import (
    Action,
    Constraint,
    Duty,
    LeftOperand,
    Operator,
    Permission,
    Policy,
    Prohibition,
)


def retention_policy(target: str, assigner: str, retention_seconds: float,
                     assignee: Optional[str] = None, issued_at: Optional[float] = None) -> Policy:
    """Policy allowing use but requiring deletion after *retention_seconds*.

    This is Alice's policy in the paper: internet-browsing data must be
    deleted one month (later one week) after storage.
    """
    if retention_seconds <= 0:
        raise ValueError("retention_seconds must be positive")
    delete_duty = Duty(
        action=Action.DELETE,
        constraints=(
            Constraint(LeftOperand.ELAPSED_TIME, Operator.GTEQ, float(retention_seconds)),
        ),
    )
    permission = Permission(action=Action.USE, assignee=assignee, duties=(delete_duty,))
    read_permission = Permission(action=Action.READ, assignee=assignee)
    return Policy(
        target=target,
        assigner=assigner,
        permissions=(permission, read_permission),
        issued_at=issued_at,
    )


def purpose_policy(target: str, assigner: str, allowed_purposes: Sequence[str],
                   assignee: Optional[str] = None, issued_at: Optional[float] = None) -> Policy:
    """Policy restricting use to the given purposes.

    This is Bob's policy in the paper: medical data to be used only for
    medical purposes (later changed to academic pursuits).
    """
    if not allowed_purposes:
        raise ValueError("allowed_purposes must be non-empty")
    purpose_constraint = Constraint(LeftOperand.PURPOSE, Operator.IS_ANY_OF, tuple(allowed_purposes))
    use_permission = Permission(action=Action.USE, assignee=assignee, constraints=(purpose_constraint,))
    read_permission = Permission(action=Action.READ, assignee=assignee, constraints=(purpose_constraint,))
    no_distribution = Prohibition(action=Action.DISTRIBUTE, assignee=assignee)
    return Policy(
        target=target,
        assigner=assigner,
        permissions=(use_permission, read_permission),
        prohibitions=(no_distribution,),
        issued_at=issued_at,
    )


def purpose_and_retention_policy(target: str, assigner: str, allowed_purposes: Sequence[str],
                                 retention_seconds: float, assignee: Optional[str] = None,
                                 issued_at: Optional[float] = None) -> Policy:
    """Policy combining a purpose restriction with a retention duty."""
    if retention_seconds <= 0:
        raise ValueError("retention_seconds must be positive")
    if not allowed_purposes:
        raise ValueError("allowed_purposes must be non-empty")
    purpose_constraint = Constraint(LeftOperand.PURPOSE, Operator.IS_ANY_OF, tuple(allowed_purposes))
    delete_duty = Duty(
        action=Action.DELETE,
        constraints=(
            Constraint(LeftOperand.ELAPSED_TIME, Operator.GTEQ, float(retention_seconds)),
        ),
    )
    use_permission = Permission(
        action=Action.USE, assignee=assignee, constraints=(purpose_constraint,), duties=(delete_duty,)
    )
    read_permission = Permission(action=Action.READ, assignee=assignee, constraints=(purpose_constraint,))
    return Policy(
        target=target,
        assigner=assigner,
        permissions=(use_permission, read_permission),
        issued_at=issued_at,
    )


def open_policy(target: str, assigner: str, issued_at: Optional[float] = None) -> Policy:
    """Unconstrained read/use policy (the pod's permissive default)."""
    return Policy(
        target=target,
        assigner=assigner,
        permissions=(
            Permission(action=Action.READ),
            Permission(action=Action.USE),
        ),
        issued_at=issued_at,
    )


def max_access_policy(target: str, assigner: str, max_accesses: int,
                      assignee: Optional[str] = None, issued_at: Optional[float] = None) -> Policy:
    """Policy allowing at most *max_accesses* uses of the stored copy."""
    if max_accesses <= 0:
        raise ValueError("max_accesses must be positive")
    count_constraint = Constraint(LeftOperand.COUNT, Operator.LT, int(max_accesses))
    use_permission = Permission(action=Action.USE, assignee=assignee, constraints=(count_constraint,))
    read_permission = Permission(action=Action.READ, assignee=assignee)
    delete_duty = Duty(
        action=Action.DELETE,
        constraints=(Constraint(LeftOperand.COUNT, Operator.GTEQ, int(max_accesses)),),
    )
    return Policy(
        target=target,
        assigner=assigner,
        permissions=(use_permission, read_permission),
        obligations=(delete_duty,),
        issued_at=issued_at,
    )


def default_pod_policy(pod_url: str, owner: str, subscribers: Iterable[str] = (),
                       issued_at: Optional[float] = None) -> Policy:
    """The default policy installed at pod initiation (Fig. 2.1).

    The paper's example default is "only subscribed users have access to the
    data"; with no subscriber list the policy grants nothing beyond the
    owner.
    """
    subscribers = tuple(subscribers)
    permissions = [Permission(action=Action.READ, assignee=owner), Permission(action=Action.USE, assignee=owner)]
    if subscribers:
        constraint = Constraint(LeftOperand.RECIPIENT, Operator.IS_ANY_OF, subscribers)
        permissions.append(Permission(action=Action.READ, constraints=(constraint,)))
        permissions.append(Permission(action=Action.USE, constraints=(constraint,)))
    return Policy(
        target=pod_url,
        assigner=owner,
        permissions=tuple(permissions),
        issued_at=issued_at,
    )
