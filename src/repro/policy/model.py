"""Usage-policy data model (ODRL-inspired).

A :class:`Policy` targets one asset (a resource IRI) and bundles rules:

* :class:`Permission` — an action the assignee may perform, optionally
  guarded by constraints and conditioned on duties;
* :class:`Prohibition` — an action the assignee must not perform;
* :class:`Duty` — an obligation the consumer's environment must discharge
  (e.g. delete the stored copy after a retention period).

Constraints compare a *left operand* drawn from the usage context (purpose,
elapsed time, access count, recipient, location) with a right operand using a
comparison :class:`Operator`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.common.identifiers import new_uuid


class Action(str, enum.Enum):
    """Actions a policy can regulate, mirroring the ODRL core actions the
    architecture needs."""

    USE = "use"
    READ = "read"
    WRITE = "write"
    MODIFY = "modify"
    DISTRIBUTE = "distribute"
    DELETE = "delete"
    ARCHIVE = "archive"
    AGGREGATE = "aggregate"
    ANONYMIZE = "anonymize"
    NOTIFY = "notify"


class Operator(str, enum.Enum):
    """Comparison operators usable in constraints."""

    EQ = "eq"
    NEQ = "neq"
    LT = "lt"
    LTEQ = "lteq"
    GT = "gt"
    GTEQ = "gteq"
    IS_ANY_OF = "isAnyOf"
    IS_NONE_OF = "isNoneOf"


class LeftOperand(str, enum.Enum):
    """Context attributes a constraint can reference."""

    PURPOSE = "purpose"
    ELAPSED_TIME = "elapsedTime"
    DATETIME = "dateTime"
    COUNT = "count"
    RECIPIENT = "recipient"
    RECIPIENT_CLASS = "recipientClass"
    SPATIAL = "spatial"
    DEVICE_TRUST = "deviceTrust"


@dataclass(frozen=True)
class Constraint:
    """A single comparison between a context attribute and a reference value."""

    left_operand: LeftOperand
    operator: Operator
    right_operand: Any

    def __post_init__(self):
        if self.operator in (Operator.IS_ANY_OF, Operator.IS_NONE_OF):
            if not isinstance(self.right_operand, (list, tuple, set, frozenset)):
                raise ValidationError(
                    f"operator {self.operator.value} requires a collection right operand"
                )
        if self.operator in (Operator.LT, Operator.LTEQ, Operator.GT, Operator.GTEQ):
            if isinstance(self.right_operand, (list, tuple, set, frozenset, dict)):
                raise ValidationError(
                    f"operator {self.operator.value} requires a scalar right operand"
                )

    def evaluate(self, actual: Any) -> bool:
        """Evaluate the constraint against the *actual* context value.

        A missing context value (``None``) never satisfies a constraint,
        except for ``IS_NONE_OF`` where the absence of a value trivially
        avoids the forbidden set.
        """
        if actual is None:
            return self.operator == Operator.IS_NONE_OF
        if self.operator == Operator.EQ:
            return actual == self.right_operand
        if self.operator == Operator.NEQ:
            return actual != self.right_operand
        if self.operator == Operator.LT:
            return actual < self.right_operand
        if self.operator == Operator.LTEQ:
            return actual <= self.right_operand
        if self.operator == Operator.GT:
            return actual > self.right_operand
        if self.operator == Operator.GTEQ:
            return actual >= self.right_operand
        if self.operator == Operator.IS_ANY_OF:
            return actual in self.right_operand
        if self.operator == Operator.IS_NONE_OF:
            return actual not in self.right_operand
        raise ValidationError(f"unsupported operator {self.operator}")

    def to_dict(self) -> dict:
        right = self.right_operand
        if isinstance(right, (set, frozenset, tuple)):
            right = sorted(right)
        return {
            "leftOperand": self.left_operand.value,
            "operator": self.operator.value,
            "rightOperand": right,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Constraint":
        return cls(
            left_operand=LeftOperand(data["leftOperand"]),
            operator=Operator(data["operator"]),
            right_operand=data["rightOperand"],
        )


@dataclass(frozen=True)
class Duty:
    """An obligation the consumer environment must discharge.

    The most important duty in the paper is the retention duty: delete the
    stored copy once ``ELAPSED_TIME`` exceeds the retention period.  Duties
    carry their own constraints describing *when* they become due.
    """

    action: Action
    constraints: tuple = ()
    uid: str = field(default_factory=new_uuid)

    def __post_init__(self):
        object.__setattr__(self, "constraints", tuple(self.constraints))

    def to_dict(self) -> dict:
        return {
            "uid": self.uid,
            "action": self.action.value,
            "constraints": [c.to_dict() for c in self.constraints],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Duty":
        return cls(
            action=Action(data["action"]),
            constraints=tuple(Constraint.from_dict(c) for c in data.get("constraints", [])),
            uid=data.get("uid", new_uuid()),
        )


@dataclass(frozen=True)
class Rule:
    """Common structure of permissions and prohibitions."""

    action: Action
    assignee: Optional[str] = None  # WebID / address; None = any assignee
    constraints: tuple = ()
    uid: str = field(default_factory=new_uuid)

    def __post_init__(self):
        object.__setattr__(self, "constraints", tuple(self.constraints))

    def applies_to(self, assignee: Optional[str]) -> bool:
        """Return True when the rule targets *assignee* (or targets anyone)."""
        return self.assignee is None or self.assignee == assignee

    def constraints_satisfied(self, context_values: dict) -> bool:
        """Return True when every constraint holds for the context values."""
        return all(
            constraint.evaluate(context_values.get(constraint.left_operand))
            for constraint in self.constraints
        )

    def _base_dict(self) -> dict:
        return {
            "uid": self.uid,
            "action": self.action.value,
            "assignee": self.assignee,
            "constraints": [c.to_dict() for c in self.constraints],
        }


@dataclass(frozen=True)
class Permission(Rule):
    """A permitted action, optionally conditioned on duties."""

    duties: tuple = ()

    def __post_init__(self):
        super().__post_init__()
        object.__setattr__(self, "duties", tuple(self.duties))

    def to_dict(self) -> dict:
        data = self._base_dict()
        data["duties"] = [d.to_dict() for d in self.duties]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Permission":
        return cls(
            action=Action(data["action"]),
            assignee=data.get("assignee"),
            constraints=tuple(Constraint.from_dict(c) for c in data.get("constraints", [])),
            duties=tuple(Duty.from_dict(d) for d in data.get("duties", [])),
            uid=data.get("uid", new_uuid()),
        )


@dataclass(frozen=True)
class Prohibition(Rule):
    """A prohibited action."""

    def to_dict(self) -> dict:
        return self._base_dict()

    @classmethod
    def from_dict(cls, data: dict) -> "Prohibition":
        return cls(
            action=Action(data["action"]),
            assignee=data.get("assignee"),
            constraints=tuple(Constraint.from_dict(c) for c in data.get("constraints", [])),
            uid=data.get("uid", new_uuid()),
        )


@dataclass(frozen=True)
class Policy:
    """A usage policy over one target asset.

    Policies are immutable value objects; "modifying" a policy (process 5 of
    the paper) produces a new :class:`Policy` with a bumped ``version`` via
    :meth:`revise`.
    """

    target: str
    assigner: str
    permissions: tuple = ()
    prohibitions: tuple = ()
    obligations: tuple = ()  # policy-level duties applying regardless of action
    uid: str = field(default_factory=new_uuid)
    version: int = 1
    issued_at: Optional[float] = None

    def __post_init__(self):
        if not self.target:
            raise ValidationError("policy target must be non-empty")
        if not self.assigner:
            raise ValidationError("policy assigner must be non-empty")
        if self.version < 1:
            raise ValidationError("policy version must be >= 1")
        object.__setattr__(self, "permissions", tuple(self.permissions))
        object.__setattr__(self, "prohibitions", tuple(self.prohibitions))
        object.__setattr__(self, "obligations", tuple(self.obligations))

    # -- queries ------------------------------------------------------------

    def permissions_for(self, action: Action, assignee: Optional[str] = None) -> List[Permission]:
        """Return the permissions covering *action* for *assignee*."""
        return [
            p for p in self.permissions
            if p.action == action and p.applies_to(assignee)
        ]

    def prohibitions_for(self, action: Action, assignee: Optional[str] = None) -> List[Prohibition]:
        """Return the prohibitions covering *action* for *assignee*."""
        return [
            p for p in self.prohibitions
            if p.action == action and p.applies_to(assignee)
        ]

    def all_duties(self) -> List[Duty]:
        """Return policy-level obligations plus duties attached to permissions."""
        duties = list(self.obligations)
        for permission in self.permissions:
            duties.extend(permission.duties)
        return duties

    def retention_seconds(self) -> Optional[float]:
        """Return the tightest retention period demanded by any delete duty."""
        periods = []
        for duty in self.all_duties():
            if duty.action != Action.DELETE:
                continue
            for constraint in duty.constraints:
                if constraint.left_operand == LeftOperand.ELAPSED_TIME and constraint.operator in (
                    Operator.GT, Operator.GTEQ,
                ):
                    periods.append(float(constraint.right_operand))
        return min(periods) if periods else None

    def allowed_purposes(self) -> Optional[List[str]]:
        """Return the union of purposes allowed by USE/READ permissions.

        ``None`` means the policy does not constrain the purpose at all.
        """
        purposes: List[str] = []
        constrained = False
        for permission in self.permissions:
            if permission.action not in (Action.USE, Action.READ):
                continue
            for constraint in permission.constraints:
                if constraint.left_operand == LeftOperand.PURPOSE:
                    constrained = True
                    if constraint.operator == Operator.EQ:
                        purposes.append(constraint.right_operand)
                    elif constraint.operator == Operator.IS_ANY_OF:
                        purposes.extend(constraint.right_operand)
        if not constrained:
            return None
        # Preserve order while removing duplicates.
        seen = []
        for purpose in purposes:
            if purpose not in seen:
                seen.append(purpose)
        return seen

    # -- revision -----------------------------------------------------------

    def revise(self, *, permissions: Optional[Sequence[Permission]] = None,
               prohibitions: Optional[Sequence[Prohibition]] = None,
               obligations: Optional[Sequence[Duty]] = None,
               issued_at: Optional[float] = None) -> "Policy":
        """Return a new version of this policy with the given parts replaced."""
        return replace(
            self,
            permissions=tuple(permissions) if permissions is not None else self.permissions,
            prohibitions=tuple(prohibitions) if prohibitions is not None else self.prohibitions,
            obligations=tuple(obligations) if obligations is not None else self.obligations,
            version=self.version + 1,
            issued_at=issued_at if issued_at is not None else self.issued_at,
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "uid": self.uid,
            "target": self.target,
            "assigner": self.assigner,
            "version": self.version,
            "issuedAt": self.issued_at,
            "permissions": [p.to_dict() for p in self.permissions],
            "prohibitions": [p.to_dict() for p in self.prohibitions],
            "obligations": [d.to_dict() for d in self.obligations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Policy":
        return cls(
            target=data["target"],
            assigner=data["assigner"],
            permissions=tuple(Permission.from_dict(p) for p in data.get("permissions", [])),
            prohibitions=tuple(Prohibition.from_dict(p) for p in data.get("prohibitions", [])),
            obligations=tuple(Duty.from_dict(d) for d in data.get("obligations", [])),
            uid=data.get("uid", new_uuid()),
            version=data.get("version", 1),
            issued_at=data.get("issuedAt"),
        )
