"""Policy serialization.

Policies cross every boundary of the architecture: the pod manager pushes
them on-chain through the push-in oracle, the DE App stores them in contract
storage, and the TEE keeps a local copy alongside the resource.  Two
serializations are provided:

* plain dictionaries (the form carried in transactions and contract storage),
* RDF graphs using the ODRL vocabulary (the form stored in Solid pods).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.common.errors import ValidationError
from repro.rdf.graph import Graph
from repro.rdf.namespace import ODRL, RDF, Namespace
from repro.rdf.term import BlankNode, IRI, Literal
from repro.policy.model import (
    Action,
    Constraint,
    Duty,
    LeftOperand,
    Operator,
    Permission,
    Policy,
    Prohibition,
)

# Namespace used for constraint left operands / custom terms in RDF form.
REPRO_POLICY = Namespace("https://w3id.org/repro/usage-control/policy#")


def policy_to_dict(policy: Policy) -> dict:
    """Serialize a policy to a plain dictionary (canonical contract form)."""
    return policy.to_dict()


def policy_from_dict(data: dict) -> Policy:
    """Reconstruct a policy from its dictionary form."""
    if not isinstance(data, dict):
        raise ValidationError("policy data must be a dictionary")
    return Policy.from_dict(data)


def policy_to_json(policy: Policy) -> str:
    """Serialize a policy to a JSON string."""
    return json.dumps(policy.to_dict(), sort_keys=True)


def policy_from_json(text: str) -> Policy:
    """Parse a policy from its JSON string form."""
    return policy_from_dict(json.loads(text))


# -- RDF form ----------------------------------------------------------------


def _rule_to_graph(graph: Graph, policy_node: IRI, rule, relation: IRI) -> None:
    rule_node = BlankNode(rule.uid.replace("-", ""))
    graph.add(policy_node, relation, rule_node)
    graph.add(rule_node, ODRL.action, REPRO_POLICY.term(rule.action.value))
    graph.add(rule_node, REPRO_POLICY.uid, Literal(rule.uid))
    if rule.assignee:
        graph.add(rule_node, ODRL.assignee, IRI(rule.assignee))
    for constraint in rule.constraints:
        _constraint_to_graph(graph, rule_node, constraint)
    for duty in getattr(rule, "duties", ()):  # only permissions carry duties
        duty_node = BlankNode(duty.uid.replace("-", ""))
        graph.add(rule_node, ODRL.duty, duty_node)
        graph.add(duty_node, ODRL.action, REPRO_POLICY.term(duty.action.value))
        graph.add(duty_node, REPRO_POLICY.uid, Literal(duty.uid))
        for constraint in duty.constraints:
            _constraint_to_graph(graph, duty_node, constraint)


def _constraint_to_graph(graph: Graph, parent: BlankNode, constraint: Constraint) -> None:
    node = BlankNode()
    graph.add(parent, ODRL.constraint, node)
    graph.add(node, ODRL.leftOperand, REPRO_POLICY.term(constraint.left_operand.value))
    graph.add(node, ODRL.operator, ODRL.term(constraint.operator.value))
    right = constraint.right_operand
    if isinstance(right, (list, tuple, set, frozenset)):
        for item in right:
            graph.add(node, ODRL.rightOperand, Literal(item))
    else:
        graph.add(node, ODRL.rightOperand, Literal(right))


def policy_to_graph(policy: Policy, graph: Optional[Graph] = None) -> Graph:
    """Serialize a policy to RDF using the ODRL vocabulary."""
    graph = graph if graph is not None else Graph()
    policy_node = REPRO_POLICY.term(f"policy-{policy.uid}")
    graph.add(policy_node, RDF.type, ODRL.Policy)
    graph.add(policy_node, ODRL.target, IRI(policy.target))
    graph.add(policy_node, ODRL.assigner, IRI(policy.assigner))
    graph.add(policy_node, REPRO_POLICY.version, Literal(policy.version))
    graph.add(policy_node, REPRO_POLICY.uid, Literal(policy.uid))
    if policy.issued_at is not None:
        graph.add(policy_node, REPRO_POLICY.issuedAt, Literal(float(policy.issued_at)))
    for permission in policy.permissions:
        _rule_to_graph(graph, policy_node, permission, ODRL.permission)
    for prohibition in policy.prohibitions:
        _rule_to_graph(graph, policy_node, prohibition, ODRL.prohibition)
    for duty in policy.obligations:
        duty_node = BlankNode(duty.uid.replace("-", ""))
        graph.add(policy_node, ODRL.obligation, duty_node)
        graph.add(duty_node, ODRL.action, REPRO_POLICY.term(duty.action.value))
        graph.add(duty_node, REPRO_POLICY.uid, Literal(duty.uid))
        for constraint in duty.constraints:
            _constraint_to_graph(graph, duty_node, constraint)
    return graph


def _constraints_from_graph(graph: Graph, node) -> tuple:
    constraints = []
    for constraint_node in graph.objects(node, ODRL.constraint):
        left_iri = graph.value(constraint_node, ODRL.leftOperand)
        operator_iri = graph.value(constraint_node, ODRL.operator)
        rights = [obj for obj in graph.objects(constraint_node, ODRL.rightOperand)]
        if left_iri is None or operator_iri is None or not rights:
            raise ValidationError("malformed constraint in policy graph")
        left = LeftOperand(REPRO_POLICY.local_name(left_iri))
        operator = Operator(ODRL.local_name(operator_iri))
        values = [r.to_python() if isinstance(r, Literal) else str(r) for r in rights]
        right = tuple(values) if operator in (Operator.IS_ANY_OF, Operator.IS_NONE_OF) else values[0]
        constraints.append(Constraint(left, operator, right))
    return tuple(constraints)


def _duty_from_graph(graph: Graph, node) -> Duty:
    action_iri = graph.value(node, ODRL.action)
    uid_literal = graph.value(node, REPRO_POLICY.uid)
    if action_iri is None:
        raise ValidationError("malformed duty in policy graph")
    return Duty(
        action=Action(REPRO_POLICY.local_name(action_iri)),
        constraints=_constraints_from_graph(graph, node),
        uid=str(uid_literal) if uid_literal is not None else None or "",
    )


def policy_from_graph(graph: Graph) -> Policy:
    """Reconstruct a policy from its RDF form (inverse of :func:`policy_to_graph`)."""
    policy_nodes = list(graph.subjects(RDF.type, ODRL.Policy))
    if not policy_nodes:
        raise ValidationError("graph contains no odrl:Policy")
    policy_node = policy_nodes[0]
    target = graph.value(policy_node, ODRL.target)
    assigner = graph.value(policy_node, ODRL.assigner)
    version = graph.value(policy_node, REPRO_POLICY.version)
    uid = graph.value(policy_node, REPRO_POLICY.uid)
    issued = graph.value(policy_node, REPRO_POLICY.issuedAt)
    if target is None or assigner is None:
        raise ValidationError("policy graph misses target or assigner")

    permissions = []
    for node in graph.objects(policy_node, ODRL.permission):
        action_iri = graph.value(node, ODRL.action)
        assignee_iri = graph.value(node, ODRL.assignee)
        duties = tuple(_duty_from_graph(graph, duty_node) for duty_node in graph.objects(node, ODRL.duty))
        rule_uid = graph.value(node, REPRO_POLICY.uid)
        permissions.append(
            Permission(
                action=Action(REPRO_POLICY.local_name(action_iri)),
                assignee=str(assignee_iri) if assignee_iri is not None else None,
                constraints=_constraints_from_graph(graph, node),
                duties=duties,
                uid=str(rule_uid) if rule_uid is not None else None or "",
            )
        )

    prohibitions = []
    for node in graph.objects(policy_node, ODRL.prohibition):
        action_iri = graph.value(node, ODRL.action)
        assignee_iri = graph.value(node, ODRL.assignee)
        rule_uid = graph.value(node, REPRO_POLICY.uid)
        prohibitions.append(
            Prohibition(
                action=Action(REPRO_POLICY.local_name(action_iri)),
                assignee=str(assignee_iri) if assignee_iri is not None else None,
                constraints=_constraints_from_graph(graph, node),
                uid=str(rule_uid) if rule_uid is not None else None or "",
            )
        )

    obligations = tuple(
        _duty_from_graph(graph, node) for node in graph.objects(policy_node, ODRL.obligation)
    )

    return Policy(
        target=str(target),
        assigner=str(assigner),
        permissions=tuple(permissions),
        prohibitions=tuple(prohibitions),
        obligations=obligations,
        uid=str(uid) if uid is not None else Policy.__dataclass_fields__["uid"].default_factory(),  # type: ignore[misc]
        version=int(version.to_python()) if isinstance(version, Literal) else 1,
        issued_at=float(issued.to_python()) if isinstance(issued, Literal) else None,
    )
