"""Policy evaluation engine.

The engine answers two questions that the TEE and the DE App repeatedly ask:

* *May this usage happen?* — :meth:`PolicyEngine.decide` combines the
  permissions and prohibitions applicable to an action into an allow/deny
  :class:`Decision` (deny-overrides, deny-by-default).
* *Which obligations are due?* — :meth:`PolicyEngine.due_obligations`
  inspects the duties of a policy against a usage context and reports which
  must be discharged now (e.g. the retention deletion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.policy.model import Action, Duty, LeftOperand, Policy


@dataclass
class UsageContext:
    """The facts about a (prospective or ongoing) usage of a resource.

    ``elapsed_since_storage`` is the number of seconds since the consumer's
    TEE stored its local copy; ``access_count`` counts the reads performed so
    far; the remaining attributes mirror the constraint left operands.
    """

    assignee: Optional[str] = None
    purpose: Optional[str] = None
    recipient_class: Optional[str] = None
    location: Optional[str] = None
    device_trust: Optional[str] = None
    now: Optional[float] = None
    elapsed_since_storage: Optional[float] = None
    access_count: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def values(self) -> Dict[LeftOperand, object]:
        """Map constraint left operands onto this context's values."""
        return {
            LeftOperand.PURPOSE: self.purpose,
            LeftOperand.ELAPSED_TIME: self.elapsed_since_storage,
            LeftOperand.DATETIME: self.now,
            LeftOperand.COUNT: self.access_count,
            LeftOperand.RECIPIENT: self.assignee,
            LeftOperand.RECIPIENT_CLASS: self.recipient_class,
            LeftOperand.SPATIAL: self.location,
            LeftOperand.DEVICE_TRUST: self.device_trust,
        }


class Effect(str, enum.Enum):
    """Outcome of a policy decision."""

    ALLOW = "allow"
    DENY = "deny"


@dataclass
class Decision:
    """The result of evaluating one action against one policy."""

    effect: Effect
    action: Action
    policy_uid: str
    policy_version: int
    reasons: List[str] = field(default_factory=list)
    obligations: List[Duty] = field(default_factory=list)

    @property
    def allowed(self) -> bool:
        return self.effect == Effect.ALLOW

    def to_dict(self) -> dict:
        return {
            "effect": self.effect.value,
            "action": self.action.value,
            "policyUid": self.policy_uid,
            "policyVersion": self.policy_version,
            "reasons": list(self.reasons),
            "obligations": [duty.to_dict() for duty in self.obligations],
        }


class ObligationStatus(str, enum.Enum):
    """Lifecycle state of a duty for a particular stored copy."""

    NOT_DUE = "not-due"
    DUE = "due"
    FULFILLED = "fulfilled"
    VIOLATED = "violated"


class PolicyEngine:
    """Stateless evaluator for usage policies."""

    def decide(self, policy: Policy, action: Action, context: UsageContext) -> Decision:
        """Decide whether *action* is permitted under *policy* in *context*.

        The combination algorithm is deny-overrides with a default deny:

        1. any applicable prohibition whose constraints hold denies;
        2. otherwise, any applicable permission whose constraints hold allows
           (and its duties are attached to the decision);
        3. otherwise the action is denied ("no applicable permission").
        """
        values = context.values()
        reasons: List[str] = []

        for prohibition in policy.prohibitions_for(action, context.assignee):
            if prohibition.constraints_satisfied(values):
                reasons.append(f"prohibition {prohibition.uid} applies")
                return Decision(Effect.DENY, action, policy.uid, policy.version, reasons)

        granted_obligations: List[Duty] = []
        for permission in policy.permissions_for(action, context.assignee):
            if permission.constraints_satisfied(values):
                reasons.append(f"permission {permission.uid} grants {action.value}")
                granted_obligations.extend(permission.duties)
                granted_obligations.extend(policy.obligations)
                return Decision(
                    Effect.ALLOW, action, policy.uid, policy.version, reasons, granted_obligations
                )
            reasons.append(f"permission {permission.uid} constraints not satisfied")

        if not policy.permissions_for(action, context.assignee):
            reasons.append(f"no permission covers action {action.value}")
        return Decision(Effect.DENY, action, policy.uid, policy.version, reasons)

    def due_obligations(self, policy: Policy, context: UsageContext) -> List[Duty]:
        """Return the duties whose triggering constraints currently hold.

        A duty with no constraints is considered immediately due (e.g. an
        unconditional notification duty).
        """
        values = context.values()
        due: List[Duty] = []
        for duty in policy.all_duties():
            if all(constraint.evaluate(values.get(constraint.left_operand)) for constraint in duty.constraints):
                due.append(duty)
        return due

    def obligation_status(self, policy: Policy, duty: Duty, context: UsageContext,
                          fulfilled: bool) -> ObligationStatus:
        """Classify the state of *duty* for a stored copy.

        *fulfilled* reports whether the consumer environment already executed
        the duty's action (e.g. deleted the copy).
        """
        values = context.values()
        is_due = all(constraint.evaluate(values.get(constraint.left_operand)) for constraint in duty.constraints)
        if fulfilled:
            return ObligationStatus.FULFILLED
        if not is_due:
            return ObligationStatus.NOT_DUE
        return ObligationStatus.DUE

    def is_compliant(self, policy: Policy, context: UsageContext,
                     fulfilled_duties: Optional[List[str]] = None) -> bool:
        """Return True when no due duty remains undischarged in *context*."""
        fulfilled = set(fulfilled_duties or [])
        for duty in self.due_obligations(policy, context):
            if duty.uid not in fulfilled:
                return False
        return True
