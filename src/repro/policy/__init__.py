"""Usage-policy language.

The paper leaves the concrete policy language open ("Future work includes the
integration of a policy language that can be used to specify usage policies
at different levels of granularity") but its scenario requires at least:

* **temporal obligations** — "Alice's dataset ... must be deleted one month
  after their storage", later shortened to one week;
* **purpose constraints** — "Bob's dataset contains medical data to be used
  only for medical purposes", later changed to academic pursuits;
* owner-driven **policy updates** after resources have been shared.

This package implements an ODRL-inspired model covering those needs plus the
obvious generalizations: permissions, prohibitions, and duties built from a
small algebra of constraints (purpose, temporal, count, recipient-class,
spatial), an evaluation engine producing :class:`~repro.policy.evaluation.Decision`
objects, conflict detection between policy versions, and serialization to
dictionaries and RDF.
"""

from repro.policy.model import (
    Action,
    Constraint,
    Duty,
    Operator,
    Permission,
    Policy,
    Prohibition,
    Rule,
)
from repro.policy.evaluation import (
    Decision,
    PolicyEngine,
    UsageContext,
    ObligationStatus,
)
from repro.policy.conflict import detect_conflicts, PolicyConflict, merge_policies
from repro.policy.templates import (
    retention_policy,
    purpose_policy,
    purpose_and_retention_policy,
    open_policy,
    max_access_policy,
)
from repro.policy.serialization import policy_to_dict, policy_from_dict, policy_to_graph, policy_from_graph

__all__ = [
    "Action",
    "Constraint",
    "Duty",
    "Operator",
    "Permission",
    "Policy",
    "Prohibition",
    "Rule",
    "Decision",
    "PolicyEngine",
    "UsageContext",
    "ObligationStatus",
    "detect_conflicts",
    "PolicyConflict",
    "merge_policies",
    "retention_policy",
    "purpose_policy",
    "purpose_and_retention_policy",
    "open_policy",
    "max_access_policy",
    "policy_to_dict",
    "policy_from_dict",
    "policy_to_graph",
    "policy_from_graph",
]
