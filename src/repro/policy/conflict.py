"""Policy conflict detection and merging.

When a usage policy is revised (process 5 of the paper) or when a
resource-specific policy is layered on top of a pod-level default, the
architecture needs to understand how the rule sets relate: does the revision
tighten or loosen the terms, and do any permission/prohibition pairs clash?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.policy.model import Action, Permission, Policy, Prohibition


@dataclass(frozen=True)
class PolicyConflict:
    """A permission and a prohibition that cover the same action and assignee."""

    action: Action
    assignee: Optional[str]
    permission_uid: str
    prohibition_uid: str
    description: str

    def to_dict(self) -> dict:
        return {
            "action": self.action.value,
            "assignee": self.assignee,
            "permissionUid": self.permission_uid,
            "prohibitionUid": self.prohibition_uid,
            "description": self.description,
        }


def _overlapping_assignee(permission: Permission, prohibition: Prohibition) -> Optional[str]:
    """Return the assignee on which the two rules overlap, if any.

    A rule with ``assignee=None`` applies to everyone, so it overlaps with
    any other rule on the same action.
    """
    if permission.assignee is None and prohibition.assignee is None:
        return None
    if permission.assignee is None:
        return prohibition.assignee
    if prohibition.assignee is None:
        return permission.assignee
    if permission.assignee == prohibition.assignee:
        return permission.assignee
    return "__no_overlap__"


def detect_conflicts(policy: Policy) -> List[PolicyConflict]:
    """Return every permission/prohibition pair that regulates the same action.

    Constraint-level disjointness is not analysed: a pair is reported even if
    their constraints can never hold simultaneously, because deny-overrides
    makes the prohibition win and the owner likely wants to know.
    """
    conflicts: List[PolicyConflict] = []
    for permission in policy.permissions:
        for prohibition in policy.prohibitions:
            if permission.action != prohibition.action:
                continue
            overlap = _overlapping_assignee(permission, prohibition)
            if overlap == "__no_overlap__":
                continue
            conflicts.append(
                PolicyConflict(
                    action=permission.action,
                    assignee=overlap,
                    permission_uid=permission.uid,
                    prohibition_uid=prohibition.uid,
                    description=(
                        f"action {permission.action.value} is both permitted "
                        f"({permission.uid}) and prohibited ({prohibition.uid}); "
                        "deny-overrides applies"
                    ),
                )
            )
    return conflicts


def detect_cross_conflicts(base: Policy, overlay: Policy) -> List[PolicyConflict]:
    """Detect conflicts between two policies covering the same target."""
    combined = Policy(
        target=base.target,
        assigner=base.assigner,
        permissions=base.permissions + overlay.permissions,
        prohibitions=base.prohibitions + overlay.prohibitions,
        obligations=base.obligations + overlay.obligations,
    )
    return detect_conflicts(combined)


def merge_policies(base: Policy, overlay: Policy) -> Policy:
    """Layer a resource-specific *overlay* over a pod-level *base* policy.

    The merged policy keeps the overlay's identity (uid/assigner/target) and
    the union of the rule sets; its version is one past the larger of the two
    inputs, so revisions of either input are never mistaken for the merge.
    """
    if base.target != overlay.target:
        # A pod-level default targets the pod URL while the overlay targets a
        # resource inside it; the merged policy governs the resource.
        target = overlay.target
    else:
        target = base.target
    merged = Policy(
        target=target,
        assigner=overlay.assigner,
        permissions=overlay.permissions + base.permissions,
        prohibitions=overlay.prohibitions + base.prohibitions,
        obligations=overlay.obligations + base.obligations,
        uid=overlay.uid,
        version=max(base.version, overlay.version) + 1,
        issued_at=overlay.issued_at,
    )
    return merged


def is_tightening(old: Policy, new: Policy) -> bool:
    """Heuristically report whether *new* is at least as restrictive as *old*.

    The check covers the two dimensions used in the paper's scenario:
    retention periods (shorter or equal is tighter) and allowed purposes
    (subset is tighter).  Rules that neither policy expresses are ignored.
    """
    old_retention = old.retention_seconds()
    new_retention = new.retention_seconds()
    if old_retention is not None:
        if new_retention is None or new_retention > old_retention:
            return False
    old_purposes = old.allowed_purposes()
    new_purposes = new.allowed_purposes()
    if old_purposes is not None:
        if new_purposes is None:
            return False
        if not set(new_purposes).issubset(set(old_purposes)):
            return False
    if len(new.prohibitions) < len(old.prohibitions):
        return False
    return True
