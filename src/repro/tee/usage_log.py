"""Hash-chained usage log.

"The Trusted Execution Environment logs resource usage, too.  This feature
facilitates policy monitoring whereby the Blockchain regularly interacts with
the Trusted Execution Environment in order to ensure that usage policies are
being adhered to." (Section III-C)

Every event is chained to its predecessor by hash, so a device cannot
silently rewrite its usage history between monitoring rounds; evidence
reports include the chain head, and verification replays the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.errors import IntegrityError
from repro.common.serialization import stable_hash

GENESIS_DIGEST = "0" * 64


@dataclass
class UsageEvent:
    """One entry of the usage log."""

    sequence: int
    timestamp: float
    kind: str                      # "store", "access", "delete", "policy_update", ...
    resource_id: str
    details: Dict[str, Any] = field(default_factory=dict)
    previous_digest: str = GENESIS_DIGEST
    digest: str = ""

    def compute_digest(self) -> str:
        return stable_hash(
            {
                "sequence": self.sequence,
                "timestamp": self.timestamp,
                "kind": self.kind,
                "resourceId": self.resource_id,
                "details": self.details,
                "previousDigest": self.previous_digest,
            }
        )

    def to_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "resourceId": self.resource_id,
            "details": self.details,
            "previousDigest": self.previous_digest,
            "digest": self.digest,
        }


class UsageLog:
    """Append-only, hash-chained record of every usage-relevant event."""

    def __init__(self, device_id: str, clock: Optional[Clock] = None):
        self.device_id = device_id
        self.clock = clock if clock is not None else SystemClock()
        self._events: List[UsageEvent] = []

    def record(self, kind: str, resource_id: str, **details: Any) -> UsageEvent:
        """Append an event, chaining it to the current head."""
        previous_digest = self._events[-1].digest if self._events else GENESIS_DIGEST
        event = UsageEvent(
            sequence=len(self._events),
            timestamp=self.clock.now(),
            kind=kind,
            resource_id=resource_id,
            details=dict(details),
            previous_digest=previous_digest,
        )
        event.digest = event.compute_digest()
        self._events.append(event)
        return event

    # -- queries -----------------------------------------------------------------

    def events(self, resource_id: Optional[str] = None, kind: Optional[str] = None) -> List[UsageEvent]:
        """Return events, optionally filtered by resource and/or kind."""
        selected = []
        for event in self._events:
            if resource_id is not None and event.resource_id != resource_id:
                continue
            if kind is not None and event.kind != kind:
                continue
            selected.append(event)
        return selected

    def __iter__(self) -> Iterator[UsageEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def head_digest(self) -> str:
        """Digest of the latest event (the value committed in evidence reports)."""
        return self._events[-1].digest if self._events else GENESIS_DIGEST

    def verify_chain(self) -> bool:
        """Recompute every digest and link; raises on the first inconsistency."""
        previous = GENESIS_DIGEST
        for index, event in enumerate(self._events):
            if event.sequence != index:
                raise IntegrityError(f"usage log sequence broken at index {index}")
            if event.previous_digest != previous:
                raise IntegrityError(f"usage log chain broken at sequence {index}")
            if event.digest != event.compute_digest():
                raise IntegrityError(f"usage log digest mismatch at sequence {index}")
            previous = event.digest
        return True

    def access_count(self, resource_id: str) -> int:
        """Number of recorded accesses to *resource_id*."""
        return len(self.events(resource_id=resource_id, kind="access"))

    def summary_for(self, resource_id: str) -> Dict[str, Any]:
        """Aggregate view of one resource's usage, used in evidence reports."""
        events = self.events(resource_id=resource_id)
        kinds: Dict[str, int] = {}
        for event in events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return {
            "resourceId": resource_id,
            "deviceId": self.device_id,
            "events": len(events),
            "byKind": kinds,
            "firstEventAt": events[0].timestamp if events else None,
            "lastEventAt": events[-1].timestamp if events else None,
            "headDigest": self.head_digest,
        }
