"""Trusted Data Storage.

"A copy of the requested data is stored locally and managed by the Trusted
Execution Environment through the Trusted Data Storage.  Local access to the
Trusted Data Storage is controlled by the Trusted Execution Environment
according to the Usage Policy." (Section III-C)

Each stored copy is *sealed*: the content is kept together with an integrity
MAC derived from the enclave's sealing key, so tampering with the stored
bytes outside the enclave is detected on the next read.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.errors import IntegrityError, NotFoundError, ValidationError
from repro.policy.model import Policy


@dataclass
class StoredCopy:
    """One resource copy held inside the trusted data storage."""

    resource_id: str
    content: bytes
    mac: str
    policy: Policy
    owner: str
    stored_at: float
    access_count: int = 0
    last_access_at: Optional[float] = None
    deleted: bool = False
    deleted_at: Optional[float] = None
    deletion_reason: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return 0 if self.deleted else len(self.content)

    def age(self, now: float) -> float:
        """Seconds elapsed since the copy was stored."""
        return max(0.0, now - self.stored_at)


class TrustedDataStorage:
    """Sealed storage for resource copies and their usage policies."""

    def __init__(self, sealing_key: bytes, clock: Optional[Clock] = None):
        if not sealing_key:
            raise ValidationError("sealing key must be non-empty")
        self._sealing_key = sealing_key
        self.clock = clock if clock is not None else SystemClock()
        self._copies: Dict[str, StoredCopy] = {}

    # -- sealing ------------------------------------------------------------------

    def _seal(self, resource_id: str, content: bytes) -> str:
        return hmac.new(self._sealing_key, resource_id.encode("utf-8") + content, hashlib.sha256).hexdigest()

    def _check_seal(self, copy: StoredCopy) -> None:
        expected = self._seal(copy.resource_id, copy.content)
        if not hmac.compare_digest(expected, copy.mac):
            raise IntegrityError(
                f"sealed copy of {copy.resource_id} failed its integrity check; "
                "the trusted data storage has been tampered with"
            )

    # -- storage operations ----------------------------------------------------------

    def store(self, resource_id: str, content: bytes, policy: Policy, owner: str,
              metadata: Optional[Dict[str, object]] = None) -> StoredCopy:
        """Seal and store a copy of a retrieved resource with its policy."""
        if not resource_id:
            raise ValidationError("resource_id must be non-empty")
        if not isinstance(content, (bytes, bytearray)):
            raise ValidationError("stored content must be bytes")
        copy = StoredCopy(
            resource_id=resource_id,
            content=bytes(content),
            mac=self._seal(resource_id, bytes(content)),
            policy=policy,
            owner=owner,
            stored_at=self.clock.now(),
            metadata=dict(metadata or {}),
        )
        self._copies[resource_id] = copy
        return copy

    def get(self, resource_id: str) -> StoredCopy:
        """Return the stored copy (even if logically deleted) after a seal check."""
        if resource_id not in self._copies:
            raise NotFoundError(f"no stored copy of {resource_id}")
        copy = self._copies[resource_id]
        if not copy.deleted:
            self._check_seal(copy)
        return copy

    def has(self, resource_id: str) -> bool:
        """Return True when a live (non-deleted) copy of the resource exists."""
        copy = self._copies.get(resource_id)
        return copy is not None and not copy.deleted

    def read(self, resource_id: str) -> bytes:
        """Return the content of a live copy, bumping its access counter."""
        copy = self.get(resource_id)
        if copy.deleted:
            raise NotFoundError(f"the copy of {resource_id} has been deleted")
        copy.access_count += 1
        copy.last_access_at = self.clock.now()
        return copy.content

    def update_policy(self, resource_id: str, policy: Policy) -> StoredCopy:
        """Replace the policy attached to a stored copy (Fig. 2.5 propagation)."""
        copy = self.get(resource_id)
        copy.policy = policy
        return copy

    def delete(self, resource_id: str, reason: str = "owner request") -> StoredCopy:
        """Erase the content of a stored copy (the enforcement of a delete duty).

        The record itself is retained with ``deleted=True`` so the usage log
        and compliance evidence can prove *when* and *why* the copy was
        erased.
        """
        copy = self.get(resource_id)
        if copy.deleted:
            return copy
        copy.content = b""
        copy.mac = self._seal(resource_id, b"")
        copy.deleted = True
        copy.deleted_at = self.clock.now()
        copy.deletion_reason = reason
        return copy

    # -- enumeration -------------------------------------------------------------------

    def copies(self, include_deleted: bool = False) -> Iterator[StoredCopy]:
        for copy in list(self._copies.values()):
            if copy.deleted and not include_deleted:
                continue
            yield copy

    def resource_ids(self, include_deleted: bool = False) -> List[str]:
        return [copy.resource_id for copy in self.copies(include_deleted=include_deleted)]

    def total_size(self) -> int:
        """Bytes currently held by live copies."""
        return sum(copy.size for copy in self.copies())

    def __len__(self) -> int:
        return sum(1 for _ in self.copies())
