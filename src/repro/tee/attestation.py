"""Remote attestation.

Before relying on a consumer device's policy enforcement, the architecture
must know the device really runs a genuine trusted application inside a TEE.
Attestation quotes bind an enclave *measurement* (a hash of the trusted
application code), the device identity, and caller-chosen report data under a
signature from the enclave's attestation key.  A verifier accepts a quote
only when the measurement appears in its registry of trusted measurements and
the signature checks out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.common.errors import AttestationError
from repro.common.serialization import canonical_json
from repro.blockchain.crypto import KeyPair, verify


@dataclass(frozen=True)
class AttestationQuote:
    """A signed statement about the software running inside an enclave."""

    device_id: str
    measurement: str
    report_data: str
    timestamp: float
    public_key: Tuple[int, int]
    signature: Tuple[int, int]

    def signed_payload(self) -> bytes:
        return canonical_json(
            {
                "deviceId": self.device_id,
                "measurement": self.measurement,
                "reportData": self.report_data,
                "timestamp": self.timestamp,
            }
        )

    def to_dict(self) -> dict:
        return {
            "deviceId": self.device_id,
            "measurement": self.measurement,
            "reportData": self.report_data,
            "timestamp": self.timestamp,
            "publicKey": list(self.public_key),
            "signature": list(self.signature),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttestationQuote":
        return cls(
            device_id=data["deviceId"],
            measurement=data["measurement"],
            report_data=data["reportData"],
            timestamp=data["timestamp"],
            public_key=tuple(data["publicKey"]),  # type: ignore[arg-type]
            signature=tuple(data["signature"]),  # type: ignore[arg-type]
        )


def produce_quote(device_id: str, measurement: str, report_data: str, timestamp: float,
                  attestation_key: KeyPair) -> AttestationQuote:
    """Create a quote signed with the enclave's attestation key."""
    payload = canonical_json(
        {
            "deviceId": device_id,
            "measurement": measurement,
            "reportData": report_data,
            "timestamp": timestamp,
        }
    )
    return AttestationQuote(
        device_id=device_id,
        measurement=measurement,
        report_data=report_data,
        timestamp=timestamp,
        public_key=attestation_key.public_key,
        signature=attestation_key.sign(payload),
    )


class AttestationVerifier:
    """Registry of trusted measurements plus quote verification."""

    def __init__(self, trusted_measurements: Optional[Set[str]] = None, max_quote_age: float = 3600.0):
        self.trusted_measurements: Set[str] = set(trusted_measurements or set())
        self.max_quote_age = max_quote_age
        self.verified_devices: Dict[str, str] = {}

    def trust_measurement(self, measurement: str) -> None:
        """Add an enclave measurement to the trusted set."""
        self.trusted_measurements.add(measurement)

    def verify(self, quote: AttestationQuote, now: Optional[float] = None) -> bool:
        """Verify signature, measurement trust, and (optionally) freshness.

        Raises :class:`AttestationError` describing the first failed check;
        returns True when the quote is accepted.
        """
        if not verify(quote.public_key, quote.signed_payload(), quote.signature):
            raise AttestationError(f"attestation quote for device {quote.device_id} has a bad signature")
        if quote.measurement not in self.trusted_measurements:
            raise AttestationError(
                f"measurement {quote.measurement[:16]}... of device {quote.device_id} is not trusted"
            )
        if now is not None and now - quote.timestamp > self.max_quote_age:
            raise AttestationError(f"attestation quote for device {quote.device_id} is stale")
        self.verified_devices[quote.device_id] = quote.measurement
        return True

    def is_device_verified(self, device_id: str) -> bool:
        return device_id in self.verified_devices
