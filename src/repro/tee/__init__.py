"""Trusted Execution Environment (TEE) substrate.

"A Trusted Execution Environment is composed of hardware and software that
ensures the protection of sensitive data by providing isolated execution,
application integrity, and data confidentiality" (Section III-C).  Real SGX /
TrustZone hardware is unavailable here, so the package simulates the
behaviourally relevant properties:

* :mod:`repro.tee.enclave` — the enclave with its measurement, sealing key,
  and the guarantee that stored copies are reachable only through policy
  enforcement;
* :mod:`repro.tee.attestation` — remote attestation quotes and their
  verification against a registry of trusted measurements;
* :mod:`repro.tee.storage` — the Trusted Data Storage holding sealed copies
  of retrieved resources together with their usage policies;
* :mod:`repro.tee.usage_log` — a hash-chained usage log from which the
  enclave derives signed compliance evidence;
* :mod:`repro.tee.enforcement` — the enforcement engine applying usage
  policies to every local access and executing obligations (deletion after
  expiry, purpose gating);
* :mod:`repro.tee.trusted_app` — the Trusted Application, i.e. the Solid
  client running inside the enclave on the consumer's device.
"""

from repro.tee.enclave import TrustedExecutionEnvironment
from repro.tee.attestation import AttestationQuote, AttestationVerifier
from repro.tee.storage import TrustedDataStorage, StoredCopy
from repro.tee.usage_log import UsageLog, UsageEvent
from repro.tee.enforcement import EnforcementEngine, EnforcementOutcome
from repro.tee.trusted_app import TrustedApplication

__all__ = [
    "TrustedExecutionEnvironment",
    "AttestationQuote",
    "AttestationVerifier",
    "TrustedDataStorage",
    "StoredCopy",
    "UsageLog",
    "UsageEvent",
    "EnforcementEngine",
    "EnforcementOutcome",
    "TrustedApplication",
]
