"""The Trusted Execution Environment hosted on a consumer device.

The enclave ties the TEE building blocks together: it derives its
*measurement* from the trusted-application code identity, owns the sealing
key protecting the trusted data storage, holds the attestation and
transaction keys, and exposes the operations the rest of the architecture
calls — storing retrieved copies, enforcing policies, producing attestation
quotes, and assembling signed usage evidence for monitoring rounds.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ValidationError
from repro.common.serialization import canonical_json, stable_hash
from repro.blockchain.crypto import KeyPair
from repro.policy.model import Policy
from repro.tee.attestation import AttestationQuote, produce_quote
from repro.tee.enforcement import EnforcementEngine, EnforcementOutcome
from repro.tee.storage import StoredCopy, TrustedDataStorage
from repro.tee.usage_log import UsageLog

# Identity of the reference trusted application shipped with the
# architecture; devices running this exact code share the measurement.
REFERENCE_TRUSTED_APP_CODE = b"repro-usage-control-trusted-application-v1"


def measurement_of(code: bytes) -> str:
    """Compute the enclave measurement (hash of the trusted application code)."""
    return hashlib.sha256(code).hexdigest()


class TrustedExecutionEnvironment:
    """An isolated execution and storage environment on a consumer device."""

    def __init__(self, device_id: str, owner_identity: str,
                 clock: Optional[Clock] = None,
                 trusted_app_code: bytes = REFERENCE_TRUSTED_APP_CODE,
                 default_purpose: Optional[str] = None):
        if not device_id:
            raise ValidationError("device_id must be non-empty")
        self.device_id = device_id
        self.owner_identity = owner_identity
        self.clock = clock if clock is not None else SystemClock()
        self.measurement = measurement_of(trusted_app_code)
        # Keys never leave the enclave: one for attestation/evidence signing,
        # one sealing key for the trusted data storage.
        self.attestation_key = KeyPair.from_name(f"tee-attestation-{device_id}")
        sealing_key = hashlib.sha256(f"tee-sealing-{device_id}".encode("utf-8")).digest()
        self.storage = TrustedDataStorage(sealing_key, clock=self.clock)
        self.usage_log = UsageLog(device_id, clock=self.clock)
        self.enforcement = EnforcementEngine(
            self.storage,
            self.usage_log,
            consumer_identity=owner_identity,
            clock=self.clock,
            default_purpose=default_purpose,
        )

    # -- storing retrieved resources ------------------------------------------------

    def store_resource(self, resource_id: str, content: bytes, policy: Policy, owner: str,
                       metadata: Optional[Dict[str, Any]] = None) -> StoredCopy:
        """Seal a retrieved resource (and its policy) into the trusted storage."""
        copy = self.storage.store(resource_id, content, policy, owner, metadata)
        # A freshly sealed copy starts a new duty lifecycle: duties fulfilled
        # against an earlier (possibly deleted) copy of the same resource do
        # not discharge the new copy's obligations — otherwise a re-accessed
        # resource would never be erased when its retention lapses again.
        self.enforcement.fulfilled_duties[resource_id] = []
        self.usage_log.record(
            "store",
            resource_id,
            owner=owner,
            policyVersion=policy.version,
            size=len(content),
        )
        return copy

    # -- attestation -------------------------------------------------------------------

    def attest(self, report_data: str = "") -> AttestationQuote:
        """Produce an attestation quote binding the measurement and report data."""
        return produce_quote(
            device_id=self.device_id,
            measurement=self.measurement,
            report_data=report_data,
            timestamp=self.clock.now(),
            attestation_key=self.attestation_key,
        )

    # -- evidence for policy monitoring (Fig. 2.6) -----------------------------------------

    def usage_evidence(self, resource_id: str) -> Dict[str, Any]:
        """Assemble signed evidence of how the stored copy has been used.

        The evidence bundles the enforcement engine's compliance verdict, the
        usage-log summary (with its tamper-evident head digest), and an
        enclave signature over the whole payload, so the DE App and the data
        owner can check both integrity and origin.
        """
        try:
            compliance = self.enforcement.compliance_state(resource_id)
        except Exception:
            # The device never stored the resource: report that explicitly
            # rather than failing the whole monitoring round.
            compliance = {
                "resourceId": resource_id,
                "compliant": True,
                "deleted": False,
                "pendingDuties": [],
                "accessCount": 0,
                "policyVersion": None,
                "elapsedSinceStorage": None,
                "stored": False,
            }
        body = {
            "deviceId": self.device_id,
            "resourceId": resource_id,
            "generatedAt": self.clock.now(),
            "measurement": self.measurement,
            "compliance": compliance,
            "usageSummary": self.usage_log.summary_for(resource_id),
            "compliant": bool(compliance.get("compliant", False)),
        }
        signature = self.attestation_key.sign(canonical_json(body))
        return {
            **body,
            "evidenceId": stable_hash(body),
            "signature": list(signature),
            "publicKey": list(self.attestation_key.public_key),
        }

    # -- periodic housekeeping ----------------------------------------------------------------

    def enforce_policies(self) -> EnforcementOutcome:
        """Run an enforcement pass over every stored copy (scheduled job)."""
        return self.enforcement.enforce_obligations()

    def apply_policy_update(self, resource_id: str, policy: Policy) -> EnforcementOutcome:
        """Apply a policy update pushed from the DE App."""
        return self.enforcement.apply_policy_update(resource_id, policy)

    # -- introspection -----------------------------------------------------------------------

    def holds_copy(self, resource_id: str) -> bool:
        return self.storage.has(resource_id)

    def status(self) -> Dict[str, Any]:
        """Summary of the enclave state, used by examples and diagnostics."""
        return {
            "deviceId": self.device_id,
            "measurement": self.measurement,
            "storedCopies": len(self.storage),
            "totalBytes": self.storage.total_size(),
            "usageEvents": len(self.usage_log),
        }
