"""Usage-policy enforcement inside the TEE.

The enforcement engine is what makes the architecture's promise concrete:
after a consumer has retrieved a copy of a resource, every local use goes
through :meth:`EnforcementEngine.authorize_use`, obligations are executed by
:meth:`enforce_obligations` (e.g. "the Trusted Execution Environment
automatically deletes the resource from the Trusted Data Storage after one
week has passed, as per the policy"), and policy updates pushed from the
DE App are applied by :meth:`apply_policy_update`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import Clock, SystemClock
from repro.common.errors import PolicyViolationError
from repro.policy.evaluation import Decision, PolicyEngine, UsageContext
from repro.policy.model import Action, Duty, Policy
from repro.tee.storage import StoredCopy, TrustedDataStorage
from repro.tee.usage_log import UsageLog


@dataclass
class EnforcementOutcome:
    """What happened during one enforcement pass over the stored copies."""

    checked: int = 0
    deletions: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    executed_duties: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "checked": self.checked,
            "deletions": list(self.deletions),
            "violations": list(self.violations),
            "executedDuties": list(self.executed_duties),
        }


class EnforcementEngine:
    """Applies usage policies to the copies held in a trusted data storage."""

    def __init__(self, storage: TrustedDataStorage, usage_log: UsageLog,
                 consumer_identity: str, clock: Optional[Clock] = None,
                 default_purpose: Optional[str] = None):
        self.storage = storage
        self.usage_log = usage_log
        self.consumer_identity = consumer_identity
        self.clock = clock if clock is not None else SystemClock()
        self.default_purpose = default_purpose
        self.engine = PolicyEngine()
        self.fulfilled_duties: Dict[str, List[str]] = {}

    # -- context construction ----------------------------------------------------

    def context_for(self, copy: StoredCopy, purpose: Optional[str] = None) -> UsageContext:
        """Build the usage context the policy engine evaluates for *copy*."""
        now = self.clock.now()
        return UsageContext(
            assignee=self.consumer_identity,
            purpose=purpose or self.default_purpose,
            now=now,
            elapsed_since_storage=copy.age(now),
            access_count=copy.access_count,
        )

    # -- usage authorization --------------------------------------------------------

    def authorize_use(self, resource_id: str, purpose: Optional[str] = None,
                      action: Action = Action.USE) -> Decision:
        """Decide whether the trusted application may use the stored copy now.

        A denied decision is also recorded in the usage log, because refused
        attempts are part of the evidence the owner may inspect.
        """
        copy = self.storage.get(resource_id)
        if copy.deleted:
            raise PolicyViolationError(
                f"the copy of {resource_id} has been deleted and can no longer be used",
                policy_uid=copy.policy.uid,
            )
        context = self.context_for(copy, purpose)
        decision = self.engine.decide(copy.policy, action, context)
        self.usage_log.record(
            "access" if decision.allowed else "denied_access",
            resource_id,
            action=action.value,
            purpose=context.purpose,
            allowed=decision.allowed,
            policyVersion=copy.policy.version,
        )
        if decision.allowed:
            copy.access_count += 1
            copy.last_access_at = self.clock.now()
        return decision

    def use(self, resource_id: str, purpose: Optional[str] = None) -> bytes:
        """Authorize and perform a use, returning the content.

        Raises :class:`PolicyViolationError` when the policy denies the use.
        """
        decision = self.authorize_use(resource_id, purpose)
        if not decision.allowed:
            raise PolicyViolationError(
                f"usage of {resource_id} denied: {'; '.join(decision.reasons)}",
                policy_uid=decision.policy_uid,
            )
        copy = self.storage.get(resource_id)
        # Obligations triggered by this very use (e.g. max-access deletion)
        # are enforced right after the content is returned to the caller.
        content = copy.content
        self.enforce_obligations(resource_id)
        return content

    # -- obligations -------------------------------------------------------------------

    def enforce_obligations(self, resource_id: Optional[str] = None) -> EnforcementOutcome:
        """Execute every due duty on one copy (or on all copies).

        Currently the duty vocabulary of the reproduction includes deletion
        (executed by erasing the sealed copy) and notification (recorded in
        the usage log); unknown duty actions are logged and reported but not
        executed.
        """
        outcome = EnforcementOutcome()
        copies = (
            [self.storage.get(resource_id)]
            if resource_id is not None
            else list(self.storage.copies(include_deleted=False))
        )
        for copy in copies:
            if copy.deleted:
                continue
            outcome.checked += 1
            context = self.context_for(copy)
            fulfilled = self.fulfilled_duties.setdefault(copy.resource_id, [])
            for duty in self.engine.due_obligations(copy.policy, context):
                if duty.uid in fulfilled:
                    continue
                self._execute_duty(copy, duty, outcome)
                fulfilled.append(duty.uid)
        return outcome

    def _execute_duty(self, copy: StoredCopy, duty: Duty, outcome: EnforcementOutcome) -> None:
        if duty.action == Action.DELETE:
            self.storage.delete(copy.resource_id, reason=f"duty {duty.uid} (retention expired)")
            self.usage_log.record(
                "delete",
                copy.resource_id,
                dutyUid=duty.uid,
                policyVersion=copy.policy.version,
                reason="retention expired",
            )
            outcome.deletions.append(copy.resource_id)
        elif duty.action == Action.NOTIFY:
            self.usage_log.record("notify", copy.resource_id, dutyUid=duty.uid)
        else:
            self.usage_log.record(
                "unsupported_duty", copy.resource_id, dutyUid=duty.uid, action=duty.action.value
            )
        outcome.executed_duties.append(duty.uid)

    # -- policy updates (Fig. 2.5) ----------------------------------------------------------

    def apply_policy_update(self, resource_id: str, new_policy: Policy) -> EnforcementOutcome:
        """Install an updated policy and immediately execute any newly due duty.

        This is Bob's side of the scenario: when Alice shortens the retention
        of her browsing data from one month to one week, Bob's TEE applies
        the change and erases the copy if the new expiry has already lapsed.
        """
        if not self.storage.has(resource_id) and resource_id not in self.storage.resource_ids(include_deleted=True):
            # The device never stored (or already erased and pruned) the copy;
            # nothing to enforce.
            return EnforcementOutcome()
        copy = self.storage.get(resource_id)
        previous_version = copy.policy.version
        self.storage.update_policy(resource_id, new_policy)
        # Duties of the previous policy version no longer bind the copy.
        self.fulfilled_duties[resource_id] = []
        self.usage_log.record(
            "policy_update",
            resource_id,
            previousVersion=previous_version,
            newVersion=new_policy.version,
        )
        if copy.deleted:
            return EnforcementOutcome(checked=1)
        return self.enforce_obligations(resource_id)

    # -- compliance ------------------------------------------------------------------------

    def compliance_state(self, resource_id: str) -> Dict[str, object]:
        """Evaluate whether the copy currently complies with its policy."""
        copy = self.storage.get(resource_id)
        context = self.context_for(copy)
        fulfilled = list(self.fulfilled_duties.get(resource_id, []))
        if copy.deleted:
            compliant = True
            pending = []
        else:
            pending = [
                duty.uid
                for duty in self.engine.due_obligations(copy.policy, context)
                if duty.uid not in fulfilled
            ]
            compliant = not pending
        return {
            "resourceId": resource_id,
            "compliant": compliant,
            "deleted": copy.deleted,
            "pendingDuties": pending,
            "accessCount": copy.access_count,
            "policyVersion": copy.policy.version,
            "elapsedSinceStorage": copy.age(self.clock.now()),
        }
