"""Workload generation for benchmarks and scalability sweeps.

The paper's motivating scenario involves two participants; the benchmark
harness scales that scenario up to populations of data owners, consumers,
resources, and policies.  The generator produces deterministic synthetic
populations from a seed so every benchmark run sweeps identical workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

# Purposes mirror those of the motivating scenario (medical research,
# academic research, web analytics) plus a few generic market purposes.
DEFAULT_PURPOSES: Sequence[str] = (
    "medical-research",
    "academic-research",
    "web-analytics",
    "marketing",
    "service-improvement",
    "public-interest",
)

DEFAULT_RESOURCE_KINDS: Sequence[str] = (
    "medical-records",
    "browsing-history",
    "fitness-tracking",
    "purchase-history",
    "location-traces",
    "social-graph",
)


@dataclass
class SyntheticParticipant:
    """A synthetic data owner or consumer."""

    name: str
    role: str  # "owner" or "consumer"
    purposes: List[str] = field(default_factory=list)

    def __post_init__(self):
        if self.role not in ("owner", "consumer"):
            raise ValueError("role must be 'owner' or 'consumer'")


@dataclass
class SyntheticResource:
    """A synthetic dataset to be traded on the market."""

    name: str
    owner: str
    kind: str
    size_bytes: int
    allowed_purposes: List[str]
    retention_seconds: Optional[float]
    content: bytes = b""

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if not self.content:
            # Deterministic filler content proportional to the declared size,
            # capped so large sweeps stay memory-friendly.
            payload = f"{self.owner}/{self.name}:{self.kind}".encode("utf-8")
            repeat = max(1, min(self.size_bytes, 4096) // max(1, len(payload)))
            self.content = payload * repeat


@dataclass
class WorkloadConfig:
    """Parameters of a synthetic population."""

    num_owners: int = 2
    num_consumers: int = 2
    resources_per_owner: int = 1
    reads_per_consumer: int = 1
    resource_size_bytes: int = 4096
    retention_seconds: Optional[float] = 7 * 24 * 3600.0
    purposes: Sequence[str] = DEFAULT_PURPOSES
    resource_kinds: Sequence[str] = DEFAULT_RESOURCE_KINDS
    seed: int = 7

    def __post_init__(self):
        if self.num_owners < 0 or self.num_consumers < 0:
            raise ValueError("population sizes must be non-negative")
        if self.resources_per_owner < 0 or self.reads_per_consumer < 0:
            raise ValueError("per-participant counts must be non-negative")
        if self.resource_size_bytes < 0:
            raise ValueError("resource_size_bytes must be non-negative")

    def scaled(self, num_consumers: Optional[int] = None,
               num_owners: Optional[int] = None,
               seed: Optional[int] = None) -> "WorkloadConfig":
        """A copy of this config at a different population size (same shape).

        Population sweeps (the scalability and population benchmarks) vary
        only the head counts; everything else — per-participant rates,
        resource sizes, purpose vocabulary — stays fixed so the sweep
        measures scale, not a changed workload.
        """
        from dataclasses import replace

        overrides = {}
        if num_consumers is not None:
            overrides["num_consumers"] = num_consumers
        if num_owners is not None:
            overrides["num_owners"] = num_owners
        if seed is not None:
            overrides["seed"] = seed
        return replace(self, **overrides)


class WorkloadGenerator:
    """Deterministic generator of participants, resources, and access plans.

    All randomness flows through one :class:`random.Random` instance — by
    default seeded from ``config.seed``, or injected via *rng* so a larger
    harness (e.g. the scenario runner) can thread a single seeded stream
    through every random choice and reproduce a whole run from one seed.
    """

    def __init__(self, config: Optional[WorkloadConfig] = None,
                 rng: Optional[random.Random] = None):
        self.config = config if config is not None else WorkloadConfig()
        self._rng = rng if rng is not None else random.Random(self.config.seed)

    def owners(self) -> List[SyntheticParticipant]:
        """Return the synthetic data owners."""
        return [
            SyntheticParticipant(
                name=f"owner-{index:04d}",
                role="owner",
                purposes=list(self.config.purposes),
            )
            for index in range(self.config.num_owners)
        ]

    def consumers(self) -> List[SyntheticParticipant]:
        """Return the synthetic data consumers, each with a declared purpose."""
        consumers = []
        for index in range(self.config.num_consumers):
            purpose = self._rng.choice(list(self.config.purposes))
            consumers.append(
                SyntheticParticipant(
                    name=f"consumer-{index:04d}",
                    role="consumer",
                    purposes=[purpose],
                )
            )
        return consumers

    def resources(self, owners: Optional[Sequence[SyntheticParticipant]] = None) -> List[SyntheticResource]:
        """Return the synthetic resources each owner publishes to the market."""
        owners = list(owners) if owners is not None else self.owners()
        resources: List[SyntheticResource] = []
        for owner in owners:
            for index in range(self.config.resources_per_owner):
                kind = self._rng.choice(list(self.config.resource_kinds))
                allowed = self._rng.sample(
                    list(self.config.purposes),
                    k=min(2, len(self.config.purposes)),
                )
                resources.append(
                    SyntheticResource(
                        name=f"{owner.name}-resource-{index:03d}",
                        owner=owner.name,
                        kind=kind,
                        size_bytes=self.config.resource_size_bytes,
                        allowed_purposes=allowed,
                        retention_seconds=self.config.retention_seconds,
                    )
                )
        return resources

    def access_plan(self, consumers: Optional[Sequence[SyntheticParticipant]] = None,
                    resources: Optional[Sequence[SyntheticResource]] = None) -> List[tuple]:
        """Return (consumer, resource) pairs describing who reads what.

        Each consumer performs ``reads_per_consumer`` reads over distinct
        resources when possible; with fewer resources than reads, resources
        repeat.
        """
        consumers = list(consumers) if consumers is not None else self.consumers()
        resources = list(resources) if resources is not None else self.resources()
        plan: List[tuple] = []
        if not resources:
            return plan
        for consumer in consumers:
            if self.config.reads_per_consumer <= len(resources):
                chosen = self._rng.sample(resources, k=self.config.reads_per_consumer)
            else:
                chosen = [self._rng.choice(resources) for _ in range(self.config.reads_per_consumer)]
            for resource in chosen:
                plan.append((consumer, resource))
        return plan
