"""Simulation substrate.

The paper's future-work instantiation calls for evaluating the architecture
from the perspectives of performance, scalability, and robustness.  This
package provides the measurement machinery used by the benchmark harness:

* :class:`~repro.sim.metrics.MetricsRegistry` — counters, gauges, and latency
  histograms collected during scenario runs;
* :class:`~repro.sim.scheduler.EventScheduler` — a discrete-event scheduler
  driving the simulated clock (monitoring jobs, block production, expiries);
* :class:`~repro.sim.network.NetworkModel` — a configurable latency model for
  the pod-manager / oracle / blockchain hops;
* :mod:`repro.sim.workload` — workload generators producing the populations
  of owners, consumers, resources, and policies used by the sweeps.
"""

from repro.sim.metrics import MetricsRegistry, Counter, Gauge, LatencyHistogram, Timer
from repro.sim.scheduler import EventScheduler, ScheduledEvent
from repro.sim.network import NetworkModel, LinkSpec
from repro.sim.workload import (
    WorkloadConfig,
    WorkloadGenerator,
    SyntheticResource,
    SyntheticParticipant,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "Timer",
    "EventScheduler",
    "ScheduledEvent",
    "NetworkModel",
    "LinkSpec",
    "WorkloadConfig",
    "WorkloadGenerator",
    "SyntheticResource",
    "SyntheticParticipant",
]
